"""F6 — Figure 6: the flowchart for the Relaxation module (Jacobi).

Reproduces the exact printed flowchart: a parallel I/J nest for eq.1, an
iterative K loop around a parallel I/J nest for eq.3, and a parallel I/J
nest for eq.2. Benchmarks the end-to-end scheduling pipeline.
"""

from repro.core.paper import jacobi_analyzed
from repro.graph.build import build_dependency_graph
from repro.schedule.scheduler import schedule_module

FIGURE_6 = """\
DOALL I (
    DOALL J (
        eq.1
    )
)
DO K (
    DOALL I (
        DOALL J (
            eq.3
        )
    )
)
DOALL I (
    DOALL J (
        eq.2
    )
)"""


def test_fig6_flowchart(benchmark, artifact):
    analyzed = jacobi_analyzed()

    flow = benchmark(lambda: schedule_module(analyzed))

    assert flow.pretty() == FIGURE_6
    artifact("fig6_flowchart.txt", flow.pretty())


def test_fig6_schedule_from_source(benchmark):
    """Front end + graph + scheduler, end to end from source text."""
    from repro.core.paper import RELAXATION_JACOBI_SOURCE
    from repro.ps.parser import parse_module
    from repro.ps.semantics import analyze_module

    def pipeline():
        analyzed = analyze_module(parse_module(RELAXATION_JACOBI_SOURCE))
        return schedule_module(analyzed, build_dependency_graph(analyzed))

    flow = pipeline()
    benchmark(pipeline)
    assert flow.pretty() == FIGURE_6


def test_fig6_window_two(benchmark):
    """Section 3.4 alongside Figure 6: A's first dimension is virtual with
    a window of two."""
    analyzed = jacobi_analyzed()
    flow = benchmark(lambda: schedule_module(analyzed))
    assert flow.window_of("A") == {0: 2}
