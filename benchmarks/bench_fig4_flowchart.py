"""F4 — Figure 4: the flowchart descriptor.

Reproduces: the two descriptor species (dependency-graph node vs subrange
type), the iterative/parallel flag, and the recursive nesting structure.
Benchmarks flowchart assembly and traversal.
"""

from repro.core.paper import jacobi_analyzed
from repro.schedule.flowchart import Flowchart, LoopDescriptor
from repro.schedule.scheduler import schedule_module


def test_fig4_descriptor_structure(benchmark, artifact):
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)

    def traverse():
        rows = []
        for d in flow.walk():
            if isinstance(d, LoopDescriptor):
                rows.append(
                    ("subrange type", d.index,
                     "parallel" if d.parallel else "iterative",
                     len(d.body))
                )
            else:
                rows.append(("graph node", d.node.id, "-", 0))
        return rows

    rows = benchmark(traverse)

    lines = ["Figure 4 - Flowchart descriptors (reproduced for Figure 6)",
             f"{'descriptor type':<16} {'item':<8} {'loop kind':<10} {'nested'}"]
    for kind, item, loop_kind, nested in rows:
        lines.append(f"{kind:<16} {item:<8} {loop_kind:<10} {nested}")
    artifact("fig4_flowchart_descriptors.txt", "\n".join(lines))

    loop_rows = [r for r in rows if r[0] == "subrange type"]
    node_rows = [r for r in rows if r[0] == "graph node"]
    assert len(loop_rows) == 7  # 2 + 3 + 2 loops in Figure 6
    assert len(node_rows) == 3  # eq.1, eq.3, eq.2
    # "A subrange type descriptor also contains a list of descriptors which
    # are contained within the scope of the loop" — every loop nests >= 1.
    assert all(r[3] >= 1 for r in loop_rows)


def test_fig4_shape_fingerprint(benchmark):
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)
    shape = benchmark(flow.shape)
    assert shape[0][0] == "DOALL"
    assert shape[1][0] == "DO"
