"""F7 — Figure 7: the flowchart with the revised eq.3 (Gauss-Seidel).

Reproduces: deleting the K-1 edges leaves two recursive edges, "so that both
the I and the J loop must be iterative". The printed Figure 7 is scrambled
in the scanned source; the nest order K, I, J is forced by algorithm step 3
(I and J still carry 'I + 1' / 'J + 1' subscripts until the K-1 edges are
deleted), and the window analysis "gives the same result as in the previous
version" (window 2).
"""

from repro.core.paper import gauss_seidel_analyzed
from repro.schedule.scheduler import schedule_module

FIGURE_7 = """\
DOALL I (
    DOALL J (
        eq.1
    )
)
DO K (
    DO I (
        DO J (
            eq.3
        )
    )
)
DOALL I (
    DOALL J (
        eq.2
    )
)"""


def test_fig7_flowchart(benchmark, artifact):
    analyzed = gauss_seidel_analyzed()

    flow = benchmark(lambda: schedule_module(analyzed))

    assert flow.pretty() == FIGURE_7
    artifact("fig7_flowchart.txt", flow.pretty())


def test_fig7_all_recurrence_loops_iterative(benchmark):
    analyzed = gauss_seidel_analyzed()
    flow = benchmark(lambda: schedule_module(analyzed))
    kinds = flow.loop_kinds()
    assert ("DO", "K") in kinds
    assert ("DO", "I") in kinds
    assert ("DO", "J") in kinds


def test_fig7_window_still_two(benchmark):
    analyzed = gauss_seidel_analyzed()
    flow = benchmark(lambda: schedule_module(analyzed))
    assert flow.window_of("A") == {0: 2}
