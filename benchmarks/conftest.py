"""Shared helpers for the benchmark/reproduction harness.

Every bench regenerates one paper artifact (figure, table, or derivation),
asserts its structure, writes the regenerated text to ``benchmarks/out/``
(so the reproduction is inspectable without re-running), and benchmarks the
implementing code path with pytest-benchmark.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="session", autouse=True)
def _isolated_native_cache(tmp_path_factory):
    """Keep the native tier's compiled artifacts out of the user's real
    ``~/.cache`` during benchmark runs (same isolation as tests/)."""
    import os

    path = tmp_path_factory.mktemp("native-cache")
    old = os.environ.get("REPRO_NATIVE_CACHE")
    os.environ["REPRO_NATIVE_CACHE"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_NATIVE_CACHE", None)
    else:
        os.environ["REPRO_NATIVE_CACHE"] = old


@pytest.fixture()
def artifact():
    """Writer for regenerated paper artifacts: artifact(name, text)."""

    def write(name: str, text: str) -> pathlib.Path:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / name
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return write
