"""Shared helpers for the benchmark/reproduction harness.

Every bench regenerates one paper artifact (figure, table, or derivation),
asserts its structure, writes the regenerated text to ``benchmarks/out/``
(so the reproduction is inspectable without re-running), and benchmarks the
implementing code path with pytest-benchmark.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


@pytest.fixture()
def artifact():
    """Writer for regenerated paper artifacts: artifact(name, text)."""

    def write(name: str, text: str) -> pathlib.Path:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / name
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return write
