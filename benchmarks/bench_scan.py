"""B-scan — breaking the sequential-recurrence bottleneck with blocked
scans.

A first-order recurrence schedules as a ``DO`` loop; the serial
reference plan walks it one element at a time through scalar kernels.
The ``scan`` strategy solves it Blelloch-style in three phases (parallel
per-block sweeps around a p-step serial carry pass) on the thread pool,
with the sweeps running in compiled C behind a released GIL. This bench
measures that mechanism on the integer linear-recurrence workload
(loop-varying coefficients, bit-exact under two's-complement wraparound)
and writes ``BENCH_scan.json``.

Acceptance gates (CI-enforced):

* forced ``scan`` on the threaded backend at 4 workers is >= 1.5x faster
  than the serial backend's default plan at the largest benchmarked trip
  (measured ~100x+ on the baseline box — the phases run compiled C where
  the serial plan walks Python elements; the gate stays conservative for
  slow CI runners);
* the *unforced* threaded plan picks scan on its own at the largest trip
  — the pricing must recognise the win, not just obey ``--strategy``;
* every timed execution agrees **bit-exactly** with its reference, and
  all three bit-exact scan workloads (int sum, running max, int linrec)
  agree across serial/vectorized/threaded/free-threading.

On a machine without a C compiler the module skips (the sweeps would
fall back to the NumPy bundle; the mechanism still works but the serial
baseline shifts, and the native lane is the one the gate pins).
"""

import json
import time

import numpy as np
import pytest

from repro.core.recurrences import (
    RECURRENCE_WORKLOADS,
    ilinrec_analyzed,
    ilinrec_args,
)
from repro.plan.planner import build_plan
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.kernels import KernelCache, native_supported
from repro.schedule.scheduler import schedule_module

pytestmark = pytest.mark.skipif(
    not native_supported(),
    reason="native tier unavailable: no C compiler / cffi on this machine",
)

#: recurrence lengths; the gate applies at the largest
TRIPS = [50_000, 500_000]

#: wall-clock advantage the gate demands at the largest trip
SCAN_GATE_SPEEDUP = 1.5
GATE_WORKERS = 4

_PAYLOAD = {"rows": [], "gates": {}}


def _time(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_scan_speedup_gate(artifact):
    analyzed = ilinrec_analyzed()
    flow = schedule_module(analyzed)

    # Bit-exactness of the full stack vs the tree-walking evaluator at a
    # size the evaluator can afford; the large rows then cross-check the
    # two fast paths against each other.
    small = ilinrec_args(n=512)
    ref = execute_module(
        analyzed, small, flowchart=flow,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )
    res = execute_module(
        analyzed, small, flowchart=flow,
        options=ExecutionOptions(
            backend="threaded", workers=GATE_WORKERS, strategy="scan"
        ),
    )
    assert np.array_equal(res["S"], ref["S"]), (
        "scan diverged from the evaluator at n=512"
    )

    for n in TRIPS:
        args = ilinrec_args(n=n)
        cache_serial = KernelCache(analyzed, flow)
        cache_scan = KernelCache(analyzed, flow)
        o_serial = ExecutionOptions(backend="serial")
        o_scan = ExecutionOptions(
            backend="threaded", workers=GATE_WORKERS, strategy="scan"
        )

        def run_serial(args=args, options=o_serial, cache=cache_serial):
            return execute_module(
                analyzed, args, flowchart=flow, options=options,
                kernel_cache=cache,
            )

        def run_scan(args=args, options=o_scan, cache=cache_scan):
            return execute_module(
                analyzed, args, flowchart=flow, options=options,
                kernel_cache=cache,
            )

        run_serial(), run_scan()  # warm caches/pools outside the timed region
        t_serial, out_serial = _time(run_serial)
        t_scan, out_scan = _time(run_scan)
        assert np.array_equal(out_scan["S"], out_serial["S"]), (
            f"scan diverged from the serial plan at n={n}"
        )

        # The pricing must choose the blocked scan unforced at bench sizes.
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="threaded", workers=GATE_WORKERS),
            {"n": n}, cpu_count=GATE_WORKERS,
        )
        auto_scans = any(s == "scan" for _, s in plan.strategies())

        _PAYLOAD["rows"].append({
            "workload": "ilinrec",
            "trip": n,
            "workers": GATE_WORKERS,
            "serial_seconds": t_serial,
            "scan_seconds": t_scan,
            "speedup": t_serial / t_scan,
            "auto_scans": auto_scans,
        })

    largest = max(TRIPS)
    row = next(r for r in _PAYLOAD["rows"] if r["trip"] == largest)
    assert row["speedup"] >= SCAN_GATE_SPEEDUP, (
        f"scan only {row['speedup']:.2f}x over the serial plan on "
        f"ilinrec at n={largest} (gate: {SCAN_GATE_SPEEDUP}x)"
    )
    assert row["auto_scans"], (
        f"unforced threaded plan at n={largest} did not choose scan"
    )
    _PAYLOAD["gates"][f"ilinrec_scan_vs_serial_n{largest}"] = {
        "speedup": row["speedup"],
        "required": SCAN_GATE_SPEEDUP,
        "passed": True,
    }

    # Cross-backend agreement for every bit-exact scan workload: the
    # blocked execution must not be a threaded-only truth.
    for name, analyzed_fn, args_fn, out in RECURRENCE_WORKLOADS:
        if name not in ("isum", "runmax", "ilinrec"):
            continue
        a2 = analyzed_fn()
        f2 = schedule_module(a2)
        args2 = args_fn(n=20_000)
        base = None
        for backend in ("serial", "vectorized", "threaded", "free-threading"):
            r2 = execute_module(
                a2, args2, flowchart=f2,
                options=ExecutionOptions(
                    backend=backend, workers=GATE_WORKERS, strategy="scan"
                ),
            )
            arr = np.asarray(r2[out])
            if base is None:
                base = arr
            else:
                assert np.array_equal(arr, base), (
                    f"{name} diverged on backend {backend}"
                )
    _PAYLOAD["gates"]["cross_backend_bit_exact"] = {"passed": True}

    artifact("BENCH_scan.json", json.dumps(_PAYLOAD, indent=2))
