"""C1 — The code generator's artifact: annotated C with window allocation.

Regenerates the C text for both module variants and the transformed module:
iterative/concurrent annotations, window-2 and window-3 allocation, modular
window indexing. Benchmarks C and Python generation.
"""

from repro.codegen.cgen import generate_c
from repro.codegen.pygen import generate_python
from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform


def test_c1_jacobi_c(benchmark, artifact):
    analyzed = jacobi_analyzed()

    c_src = benchmark(lambda: generate_c(analyzed))

    assert c_src.count("/* concurrent for */") == 6
    assert c_src.count("/* iterative for */") == 1
    assert "window of 2 */" in c_src
    assert "% 2" in c_src
    artifact("codegen_jacobi.c", c_src)


def test_c1_gauss_seidel_c(benchmark, artifact):
    analyzed = gauss_seidel_analyzed()

    c_src = benchmark(lambda: generate_c(analyzed))

    assert c_src.count("/* iterative for */") == 3
    assert c_src.count("/* concurrent for */") == 4  # eq.1 and eq.2 nests
    assert "window of 2 */" in c_src
    artifact("codegen_gauss_seidel.c", c_src)


def test_c1_transformed_c(benchmark, artifact):
    res = hyperplane_transform(gauss_seidel_analyzed())

    c_src = benchmark(lambda: generate_c(res.transformed))

    assert c_src.count("/* iterative for */") == 1  # only the time loop
    assert "Ap" in c_src
    artifact("codegen_transformed.c", c_src)


def test_c1_python_generation(benchmark, artifact):
    analyzed = jacobi_analyzed()

    py_src = benchmark(lambda: generate_python(analyzed))

    assert "# DOALL (concurrent)" in py_src
    assert "# DO (iterative)" in py_src
    assert "window allocation" in py_src
    artifact("codegen_jacobi.py.txt", py_src)
