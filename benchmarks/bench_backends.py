"""B-backends — the execution-backend matrix: real parallel DOALL execution.

The paper's claim is that hyperplane-scheduled DOALL loops expose loop-level
parallelism a code generator can exploit on real hardware. This bench runs
the two paper workloads — Jacobi relaxation (the Figure-6 schedule) and the
hyperplane-transformed Gauss-Seidel relaxation (the section-4 wavefronts) —
across every execution backend and a range of worker counts, checks that all
backends agree numerically, and writes the measured-vs-predicted trajectory
to ``BENCH_backends.json``.

Acceptance gate: a chunked backend (threaded or process) must beat the
serial reference backend wall-clock on the Jacobi workload at >= 4 workers.
"""

import json
import time

import numpy as np

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.machine.report import measure_backend_speedups
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module

WORKER_COUNTS = [1, 2, 4]


def _time(fn, repeats=2):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _jacobi_workload():
    analyzed = jacobi_analyzed()
    m, maxk = 32, 8
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    return "jacobi", analyzed, schedule_module(analyzed), args


def _hyperplane_gs_workload():
    res = hyperplane_transform(gauss_seidel_analyzed())
    analyzed = res.transformed
    m, maxk = 16, 6
    rng = np.random.default_rng(1)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    return "hyperplane_gauss_seidel", analyzed, schedule_module(analyzed), args


def _matrix_for(name, analyzed, flowchart, args):
    """Wall-clock times for every backend/worker combination, with a
    numeric parity check against the serial reference result."""
    rows = []
    t_serial, ref = _time(
        lambda: execute_module(
            analyzed, args, flowchart=flowchart,
            options=ExecutionOptions(backend="serial"),
        ),
        repeats=1,
    )
    rows.append({"workload": name, "backend": "serial", "workers": 1,
                 "seconds": t_serial, "speedup": 1.0})
    combos = [
        ("vectorized", [1]),
        *((b, WORKER_COUNTS) for b in ("threaded", "process")),
    ]
    for backend, worker_counts in combos:
        for w in worker_counts:
            t, out = _time(
                lambda backend=backend, w=w: execute_module(
                    analyzed, args, flowchart=flowchart,
                    options=ExecutionOptions(backend=backend, workers=w),
                )
            )
            np.testing.assert_allclose(
                out["newA"], ref["newA"], rtol=1e-12, atol=1e-12
            )
            rows.append({"workload": name, "backend": backend, "workers": w,
                         "seconds": t, "speedup": t_serial / t})
    return rows


def test_backend_matrix(artifact):
    """The full matrix on both workloads + the acceptance gate."""
    payload = {"worker_counts": WORKER_COUNTS, "rows": [], "reports": []}
    for name, analyzed, flowchart, args in (
        _jacobi_workload(),
        _hyperplane_gs_workload(),
    ):
        payload["rows"].extend(_matrix_for(name, analyzed, flowchart, args))
        # Predicted (cost model) vs measured, through the machine report.
        report = measure_backend_speedups(
            analyzed, flowchart, args, "threaded", WORKER_COUNTS, workload=name
        )
        payload["reports"].append(report.to_dict())

    by_key = {
        (r["workload"], r["backend"], r["workers"]): r for r in payload["rows"]
    }
    serial = by_key[("jacobi", "serial", 1)]["seconds"]
    threaded4 = by_key[("jacobi", "threaded", 4)]["seconds"]
    process4 = by_key[("jacobi", "process", 4)]["seconds"]
    # The acceptance gate: real parallel execution beats the serial
    # reference on the paper's main workload at 4 workers.
    assert min(threaded4, process4) < serial, (
        f"no chunked backend beat serial: serial={serial:.4f}s "
        f"threaded@4={threaded4:.4f}s process@4={process4:.4f}s"
    )
    payload["gate"] = {
        "jacobi_serial_seconds": serial,
        "jacobi_threaded4_seconds": threaded4,
        "jacobi_process4_seconds": process4,
        "passed": True,
    }
    artifact("BENCH_backends.json", json.dumps(payload, indent=2))


def test_backend_threaded_wallclock(benchmark):
    """pytest-benchmark series for the threaded backend at 4 workers."""
    analyzed = jacobi_analyzed()
    m, maxk = 32, 8
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    out = benchmark(
        lambda: execute_module(
            analyzed, args,
            options=ExecutionOptions(backend="threaded", workers=4),
        )
    )
    assert out["newA"].shape == (m + 2, m + 2)


def test_backend_process_wallclock(benchmark):
    """pytest-benchmark series for the process backend at 4 workers."""
    analyzed = jacobi_analyzed()
    m, maxk = 16, 6
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    out = benchmark(
        lambda: execute_module(
            analyzed, args,
            options=ExecutionOptions(backend="process", workers=4),
        )
    )
    assert out["newA"].shape == (m + 2, m + 2)
