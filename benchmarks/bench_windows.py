"""W1 — Sections 3.4 + 4: virtual dimensions and window sizes.

Reproduces the three window results: Jacobi A -> window 2, Gauss-Seidel A ->
window 2 ("the virtual dimension analysis gives the same result"), and the
transformed A' -> window 3 (references K'-1 and K'-2), plus the storage
comparison 3 x maxK x M' versus 2 x M' x M'. Benchmarks the analysis.
"""

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.graph.build import build_dependency_graph
from repro.graph.scc import condensation_order
from repro.hyperplane.pipeline import hyperplane_transform
from repro.schedule.scheduler import schedule_module
from repro.schedule.virtual import virtual_dimension_report


def test_w1_window_sizes(benchmark, artifact):
    jac = jacobi_analyzed()
    gs = gauss_seidel_analyzed()

    def analyze_windows():
        return (
            schedule_module(jac).window_of("A"),
            schedule_module(gs).window_of("A"),
            hyperplane_transform(gs).recurrence_window,
        )

    jac_win, gs_win, transformed_win = benchmark(analyze_windows)

    assert jac_win == {0: 2}
    assert gs_win == {0: 2}
    assert transformed_win == 3

    res = hyperplane_transform(gs)
    m, maxk = 64, 100
    comp = res.storage_comparison({"M": m, "maxK": maxk})
    assert comp["untransformed_window"] == 2 * (m + 2) ** 2
    assert comp["transformed_window"] == 3 * maxk * (m + 2)
    assert comp["full"] == maxk * (m + 2) ** 2

    lines = [
        "Windows (reproduced; sections 3.4 and 4)",
        f"{'variant':<28} {'array':<6} {'virtual dim':<12} {'window'}",
        f"{'Jacobi (Eq. 1)':<28} {'A':<6} {'0 (K)':<12} {jac_win[0]}",
        f"{'Gauss-Seidel (Eq. 2)':<28} {'A':<6} {'0 (K)':<12} {gs_win[0]}",
        f"{'transformed (section 4)':<28} {'Ap':<6} {'0 (Kp)':<12} {transformed_win}",
        "",
        f"storage for M={m}, maxK={maxk} (elements):",
        f"  full 3-d array          : {comp['full']}",
        f"  untransformed, window 2 : {comp['untransformed_window']}  (2 x M'^2)",
        f"  transformed, window 3   : {comp['transformed_window']}  (3 x maxK x M')",
    ]
    artifact("windows.txt", "\n".join(lines))


def test_w1_virtual_dimension_report(benchmark):
    """The section-3.4 rule evaluated for every dimension of every local
    array in its component: only dimension 0 qualifies ('the other two ...
    have edges with subscript expression I + constant')."""
    analyzed = jacobi_analyzed()
    graph = build_dependency_graph(analyzed)
    comps = condensation_order(graph.full_view())

    report = benchmark(lambda: virtual_dimension_report(graph, comps))
    assert [(v.node_id, v.dim, v.window) for v in report] == [("A", 0, 2)]
