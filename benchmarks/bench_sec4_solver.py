"""S4b — Section 4: the least-integer solution and the time equation.

Reproduces: "we get a = 2 and b = c = 1, and arrive at the time equation
2K + I + J", and the hyperplane sweep "As t is increased from 0 to t_max
= K_max + I_max + J_max [with the coefficients], we find a sequence of such
hyperplanes which cover every point in the array." Benchmarks the solver.
"""

from repro.analysis.wavefront import wavefront_profile
from repro.core.paper import gauss_seidel_analyzed
from repro.graph.build import build_dependency_graph
from repro.hyperplane.dependences import extract_dependences, find_recursive_components
from repro.hyperplane.solver import solve_time_vector

VECTORS = [(1, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, -1), (1, -1, 0)]


def test_sec4_least_integers(benchmark, artifact):
    pi = benchmark(lambda: solve_time_vector(VECTORS))
    assert pi == (2, 1, 1)

    # Least: no L1-norm-3 vector satisfies the system.
    for a in range(0, 4):
        for b in range(0, 4):
            for c in range(0, 4):
                if a + b + c < 4:
                    ok = all(
                        a * v[0] + b * v[1] + c * v[2] >= 1 for v in VECTORS
                    )
                    assert not ok, (a, b, c)

    m, maxk = 8, 10
    prof = wavefront_profile(pi, [(1, maxk), (0, m + 1), (0, m + 1)])
    assert prof.covers_box_exactly()

    lines = [
        "Section 4 - least-integer time vector (reproduced)",
        f"solution: a = {pi[0]}, b = {pi[1]}, c = {pi[2]}",
        "time equation: t(A[K,I,J]) = 2K + I + J",
        f"hyperplane sweep for M={m}, maxK={maxk}: "
        f"t = {prof.t_min} .. {prof.t_max} ({prof.n_hyperplanes} planes)",
        f"covers every array point exactly once: {prof.covers_box_exactly()}",
    ]
    artifact("sec4_solver.txt", "\n".join(lines))


def test_sec4_solution_from_module(benchmark):
    """End to end: module text -> dependence vectors -> (2,1,1)."""
    analyzed = gauss_seidel_analyzed()

    def derive():
        graph = build_dependency_graph(analyzed)
        (component,) = find_recursive_components(graph)
        deps = extract_dependences(graph, component)
        return solve_time_vector(deps.vectors)

    assert benchmark(derive) == (2, 1, 1)
