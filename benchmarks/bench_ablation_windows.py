"""A2 — Ablation: window allocation on vs off (section 3.4).

Quantifies the memory-reuse design choice across problem sizes: elements
allocated for the recurrence array with windows on and off, for both module
variants and the transformed program, with a runtime check that windowed
execution is exact. Benchmarks windowed execution.
"""

import numpy as np

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.values import array_bounds
from repro.runtime.wavefront import execute_transformed_windowed
from repro.schedule.scheduler import schedule_module


def _alloc(analyzed, flow, bounds, use_windows):
    sym = analyzed.symbol("A")
    ab = array_bounds(sym.type, bounds)
    full = int(np.prod([hi - lo + 1 for lo, hi in ab]))
    if not use_windows:
        return full
    out = full
    for d, w in flow.window_of("A").items():
        extent = ab[d][1] - ab[d][0] + 1
        out = out // extent * w
    return out


def test_a2_allocation_table(benchmark, artifact):
    jac = jacobi_analyzed()
    jac_flow = schedule_module(jac)

    def build_table():
        rows = []
        for m, maxk in [(16, 20), (32, 50), (64, 100), (128, 200)]:
            bounds = {"M": m, "maxK": maxk}
            full = _alloc(jac, jac_flow, bounds, use_windows=False)
            win = _alloc(jac, jac_flow, bounds, use_windows=True)
            rows.append((m, maxk, full, win))
        return rows

    rows = benchmark(build_table)
    for m, maxk, full, win in rows:
        assert win == 2 * (m + 2) ** 2
        assert full == maxk * (m + 2) ** 2

    lines = [
        "A2 - window-allocation ablation, array A (elements)",
        f"{'M':>5} {'maxK':>6} {'windows off':>14} {'windows on':>12} {'saving':>8}",
    ]
    for m, maxk, full, win in rows:
        lines.append(f"{m:>5} {maxk:>6} {full:>14} {win:>12} {full / win:>7.1f}x")

    res = hyperplane_transform(gauss_seidel_analyzed())
    comp = res.storage_comparison({"M": 64, "maxK": 100})
    lines += [
        "",
        "transformed array (section 4, M=64, maxK=100):",
        f"  windows off : {comp['full']} elements",
        f"  windows on  : {comp['transformed_window']} elements "
        f"({comp['full'] / comp['transformed_window']:.1f}x saving)",
    ]
    artifact("ablation_windows.txt", "\n".join(lines))


def test_a2_windowed_execution_exact(benchmark):
    analyzed = gauss_seidel_analyzed()
    m, maxk = 8, 10
    rng = np.random.default_rng(3)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    expected = execute_module(analyzed, args)["newA"]

    windowed = benchmark(
        lambda: execute_module(
            analyzed, args, options=ExecutionOptions(use_windows=True)
        )
    )
    np.testing.assert_allclose(windowed["newA"], expected)


def test_a2_transformed_windowed_execution(benchmark):
    res = hyperplane_transform(gauss_seidel_analyzed())
    m, maxk = 6, 8
    rng = np.random.default_rng(4)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    expected = execute_module(res.original, args)["newA"]

    report = benchmark(lambda: execute_transformed_windowed(res, args, debug=False))
    np.testing.assert_allclose(report.results["newA"], expected, rtol=1e-12)
    assert report.allocated_elements[res.new_array] == 3 * maxk * (m + 2)
