"""S4d — Section 4: the rewritten recurrence.

Reproduces the paper's derived equation for A':

  boundary:  A'[K',I',J'] = A'[K'-2, I'-1, J']
  interior:  A'[K',I',J'] = A'[K'-1,I',J'] + A'[K'-1,I',J'-1]
                          + A'[K'-1,I'-1,J'] + A'[K'-1,I'-1,J'+1]   (/4)

and verifies the transformed module computes exactly what the original
does. Benchmarks the source-level rewrite.
"""

import numpy as np

from repro.core.paper import gauss_seidel_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.printer import format_module
from repro.runtime.executor import execute_module

EXPECTED_OFFSETS = {
    (-1, 0, 0): (-2, -1, 0),  # then-branch boundary carry-over
    (0, 0, -1): (-1, 0, 0),
    (0, -1, 0): (-1, 0, -1),
    (-1, 0, 1): (-1, -1, 0),
    (-1, 1, 0): (-1, -1, 1),
}


def test_sec4_rewritten_references(benchmark, artifact):
    analyzed = gauss_seidel_analyzed()

    res = benchmark(lambda: hyperplane_transform(analyzed))

    mapping = dict(res.transformed_offsets())
    assert mapping == EXPECTED_OFFSETS

    text = format_module(res.transformed_module)
    # The interior sum references exactly the paper's four neighbours.
    assert "Ap[Kp - 1, Ip, Jp]" in text
    assert "Ap[Kp - 1, Ip, Jp - 1]" in text
    assert "Ap[Kp - 1, Ip - 1, Jp]" in text
    assert "Ap[Kp - 1, Ip - 1, Jp + 1]" in text
    # The boundary branch references A'[K'-2, I'-1, J'].
    assert "Ap[Kp - 2, Ip - 1, Jp]" in text

    lines = ["Section 4 - rewritten recurrence (reproduced)",
             "original delta  ->  transformed delta"]
    for old, new in sorted(EXPECTED_OFFSETS.items()):
        lines.append(f"  {old}  ->  {new}")
    lines += ["", "Transformed PS module:", text]
    artifact("sec4_rewrite.txt", "\n".join(lines))


def test_sec4_numeric_equivalence(benchmark):
    """The transformed program is the same function as the original."""
    analyzed = gauss_seidel_analyzed()
    res = hyperplane_transform(analyzed)
    rng = np.random.default_rng(11)
    m, maxk = 6, 6
    initial = rng.random((m + 2, m + 2))
    args = {"InitialA": initial, "M": m, "maxK": maxk}
    expected = execute_module(analyzed, args)["newA"]

    got = benchmark(lambda: execute_module(res.transformed, args)["newA"])
    np.testing.assert_allclose(got, expected, rtol=1e-12)
