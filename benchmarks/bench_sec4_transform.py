"""S4c — Section 4: the coordinate change and its inverse.

Reproduces: K' = 2K + I + J, I' = K, J' = I; inverse K = I', I = J',
J = K' - 2I' - J'; unimodularity of the transformation. Benchmarks the
completion and exact inversion.
"""

from repro.hyperplane.unimodular import (
    complete_to_unimodular,
    determinant,
    integer_inverse,
    matvec,
)


def test_sec4_coordinate_change(benchmark, artifact):
    T = benchmark(lambda: complete_to_unimodular((2, 1, 1)))

    assert T == [[2, 1, 1], [1, 0, 0], [0, 1, 0]]
    assert determinant(T) in (1, -1)
    Tinv = integer_inverse(T)
    assert Tinv == [[0, 1, 0], [0, 0, 1], [1, -2, -1]]

    # Paper's worked example: (K,I,J) -> (K',I',J') and back.
    for x in [(1, 0, 0), (3, 2, 5), (10, 0, 9)]:
        y = matvec(T, x)
        assert y[0] == 2 * x[0] + x[1] + x[2]
        assert y[1] == x[0]
        assert y[2] == x[1]
        assert matvec(Tinv, y) == x

    lines = [
        "Section 4 - coordinate transformation (reproduced)",
        "K' = 2K + I + J      I' = K      J' = I",
        "K  = I'              I  = J'     J  = K' - 2I' - J'",
        f"T    = {T}",
        f"Tinv = {Tinv}",
        f"det(T) = {determinant(T)}",
    ]
    artifact("sec4_transform.txt", "\n".join(lines))


def test_sec4_inverse_round_trip(benchmark):
    T = complete_to_unimodular((2, 1, 1))

    Tinv = benchmark(lambda: integer_inverse(T))
    identity = [
        [sum(T[i][k] * Tinv[k][j] for k in range(3)) for j in range(3)]
        for i in range(3)
    ]
    assert identity == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
