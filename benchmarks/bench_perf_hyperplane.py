"""P2 — Section 4's payoff: the transformation exposes usable parallelism.

Regenerates the crossover the paper implies: the untransformed Gauss-Seidel
schedule (Figure 7) cannot use added processors; the hyperplane-transformed
program does more total work (guards and padding) but parallelises, so it
loses at P = 1 and wins at large P. Also benchmarks real execution of both
programs under the vectorised backend.
"""

import numpy as np

from repro.core.paper import gauss_seidel_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.machine.cost import MachineModel
from repro.machine.simulator import simulate_flowchart
from repro.runtime.executor import ExecutionOptions, execute_module

PROCS = [1, 2, 4, 8, 16, 32]
ARGS = {"M": 16, "maxK": 10}


def test_p2_crossover(benchmark, artifact):
    analyzed = gauss_seidel_analyzed()
    res = hyperplane_transform(analyzed)

    def crossover_series():
        rows = []
        for p in PROCS:
            model = MachineModel(processors=p)
            orig = simulate_flowchart(
                analyzed, res.original_flowchart, ARGS, model
            ).cycles
            trans = simulate_flowchart(
                res.transformed, res.transformed_flowchart, ARGS, model
            ).cycles
            rows.append((p, orig, trans))
        return rows

    rows = benchmark(crossover_series)

    p1 = rows[0]
    p_hi = rows[-1]
    assert p1[1] < p1[2]  # serial: original wins (less total work)
    assert p_hi[2] < p_hi[1]  # parallel: transformed wins
    # The original barely improves with P (only init/extract DOALLs).
    assert rows[0][1] / rows[-1][1] < 2.0
    # The transformed program improves substantially.
    assert rows[0][2] / rows[-1][2] > 4.0

    lines = [
        "P2 - iterative vs hyperplane-transformed Gauss-Seidel "
        f"(simulated cycles, M={ARGS['M']}, maxK={ARGS['maxK']})",
        f"{'P':>4} {'iterative(Fig.7)':>18} {'transformed':>14} {'winner':>12}",
    ]
    for p, orig, trans in rows:
        winner = "iterative" if orig <= trans else "transformed"
        lines.append(f"{p:>4} {orig:>18} {trans:>14} {winner:>12}")
    artifact("perf_hyperplane.txt", "\n".join(lines))


def test_p2_wallclock_original(benchmark):
    """Real time, untransformed: the fully iterative nest cannot be
    vectorised (every spatial loop is a DO)."""
    analyzed = gauss_seidel_analyzed()
    m, maxk = 16, 6
    rng = np.random.default_rng(1)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    out = benchmark(lambda: execute_module(analyzed, args))
    assert out["newA"].shape == (m + 2, m + 2)


def test_p2_wallclock_transformed(benchmark):
    """Real time, transformed: inner DOALLs execute as NumPy planes."""
    analyzed = gauss_seidel_analyzed()
    res = hyperplane_transform(analyzed)
    m, maxk = 16, 6
    rng = np.random.default_rng(1)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    out = benchmark(
        lambda: execute_module(
            res.transformed, args, options=ExecutionOptions(vectorize=True)
        )
    )
    assert out["newA"].shape == (m + 2, m + 2)


def test_p2_results_agree(benchmark):
    analyzed = gauss_seidel_analyzed()
    res = hyperplane_transform(analyzed)
    m, maxk = 8, 5
    rng = np.random.default_rng(2)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}

    def run_both():
        a = execute_module(analyzed, args)["newA"]
        b = execute_module(res.transformed, args)["newA"]
        return a, b

    a, b = benchmark(run_both)
    np.testing.assert_allclose(a, b, rtol=1e-12)
