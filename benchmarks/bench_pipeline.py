"""B-pipeline — DSWP-style decoupling of recurrence + consumer runs.

A sequential recurrence schedules as a ``DO`` loop; the serial reference
plan walks it one element at a time through scalar kernels. The
``pipeline`` strategy turns the recurrence and its downstream DOALL
consumers into decoupled stages over bounded block hand-offs: the
sequential stage streams in-order blocks through the fused ``"seq"``
native nest kernel, the replicated stage chases its completion frontier
with the remaining workers. This bench measures that mechanism on the
coupled-recurrence workload (two mutually recursive sequences feeding an
elementwise consumer) and writes ``BENCH_pipeline.json``.

Acceptance gates (CI-enforced):

* forced ``pipeline`` on the threaded backend at 4 workers is >= 1.5x
  faster than the serial backend's default plan at the largest benchmarked
  trip (measured ~100-200x on the baseline box — the decoupled sequential
  stage runs compiled C blocks where the serial plan walks Python
  elements; the gate stays conservative for slow CI runners);
* the *unforced* threaded plan picks pipeline on its own at the largest
  trip — the pricing must recognise the win, not just obey ``--strategy``;
* every timed execution agrees **bit-exactly** with its reference.

On a machine without a C compiler the module skips (the sequential stage
would fall back to NumPy seq kernels; the mechanism still works but the
serial baseline shifts, and the native lane is the one the gate pins).
"""

import json
import time

import numpy as np
import pytest

from repro.core.recurrences import coupled_analyzed, coupled_args
from repro.plan.planner import build_plan
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.kernels import KernelCache, native_supported
from repro.schedule.scheduler import schedule_module

pytestmark = pytest.mark.skipif(
    not native_supported(),
    reason="native tier unavailable: no C compiler / cffi on this machine",
)

#: recurrence lengths; the gate applies at the largest
TRIPS = [5_000, 50_000]

#: wall-clock advantage the gate demands at the largest trip
PIPELINE_GATE_SPEEDUP = 1.5
GATE_WORKERS = 4

_PAYLOAD = {"rows": [], "gates": {}}


def _time(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_pipeline_speedup_gate(artifact):
    analyzed = coupled_analyzed()
    flow = schedule_module(analyzed)

    # Bit-exactness of the full stack vs the tree-walking evaluator at a
    # size the evaluator can afford; the large rows then cross-check the
    # two fast paths against each other.
    small = coupled_args(n=512)
    ref = execute_module(
        analyzed, small, flowchart=flow,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )
    res = execute_module(
        analyzed, small, flowchart=flow,
        options=ExecutionOptions(
            backend="threaded", workers=GATE_WORKERS, strategy="pipeline"
        ),
    )
    assert np.array_equal(res["R"], ref["R"]), (
        "pipeline diverged from the evaluator at n=512"
    )

    for n in TRIPS:
        args = coupled_args(n=n)
        cache_serial = KernelCache(analyzed, flow)
        cache_pipe = KernelCache(analyzed, flow)
        o_serial = ExecutionOptions(backend="serial")
        o_pipe = ExecutionOptions(
            backend="threaded", workers=GATE_WORKERS, strategy="pipeline"
        )

        def run_serial(args=args, options=o_serial, cache=cache_serial):
            return execute_module(
                analyzed, args, flowchart=flow, options=options,
                kernel_cache=cache,
            )

        def run_pipe(args=args, options=o_pipe, cache=cache_pipe):
            return execute_module(
                analyzed, args, flowchart=flow, options=options,
                kernel_cache=cache,
            )

        run_serial(), run_pipe()  # warm caches/pools outside the timed region
        t_serial, out_serial = _time(run_serial)
        t_pipe, out_pipe = _time(run_pipe)
        assert np.array_equal(out_pipe["R"], out_serial["R"]), (
            f"pipeline diverged from the serial plan at n={n}"
        )

        # The pricing must choose decoupling unforced at bench sizes.
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="threaded", workers=GATE_WORKERS),
            {"n": n}, cpu_count=GATE_WORKERS,
        )
        auto_pipelines = any(s == "pipeline" for _, s in plan.strategies())

        _PAYLOAD["rows"].append({
            "workload": "coupled",
            "trip": n,
            "workers": GATE_WORKERS,
            "serial_seconds": t_serial,
            "pipeline_seconds": t_pipe,
            "speedup": t_serial / t_pipe,
            "auto_pipelines": auto_pipelines,
        })

    largest = max(TRIPS)
    row = next(r for r in _PAYLOAD["rows"] if r["trip"] == largest)
    assert row["speedup"] >= PIPELINE_GATE_SPEEDUP, (
        f"pipeline only {row['speedup']:.2f}x over the serial plan on "
        f"coupled at n={largest} (gate: {PIPELINE_GATE_SPEEDUP}x)"
    )
    assert row["auto_pipelines"], (
        f"unforced threaded plan at n={largest} did not choose pipeline"
    )
    _PAYLOAD["gates"][f"coupled_pipeline_vs_serial_n{largest}"] = {
        "speedup": row["speedup"],
        "required": PIPELINE_GATE_SPEEDUP,
        "passed": True,
    }
    artifact("BENCH_pipeline.json", json.dumps(_PAYLOAD, indent=2))
