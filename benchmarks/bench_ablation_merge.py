"""A1 — Ablation: the loop-merging pass (the paper's admitted weakness).

The published algorithm "performs poorly in ... combining into a single loop
those equations which though not recursively related, nevertheless depend on
the same subscript(s)". This bench quantifies it: loop count and simulated
cycles with and without the merging pass on a module of independent
element-wise equations, plus proof the pass refuses unsafe merges.
"""

from repro.graph.build import build_dependency_graph
from repro.machine.cost import MachineModel
from repro.machine.simulator import simulate_flowchart
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_module

MULTI_EQ = (
    "Pipeline: module (X: array[I,J] of real; n: int):\n"
    "   [U: array[I,J] of real; V: array[I,J] of real; W: array[I,J] of real];\n"
    "type I = 0 .. n; J = 0 .. n;\n"
    "define U = X * 2; V = X + 1; W = U + V;\nend Pipeline;"
)

UNSAFE = (
    "Shift: module (X: array[0 .. 8] of real): [V: array[I] of real];\n"
    "type I = 1 .. 8;\n"
    "var U: array[0 .. 8] of real;\n"
    "define U = X * 2; V[I] = U[I-1] + 1;\nend Shift;"
)


def test_a1_merge_reduces_loops(benchmark, artifact):
    analyzed = analyze_module(parse_module(MULTI_EQ))
    graph = build_dependency_graph(analyzed)
    flow = schedule_module(analyzed, graph)

    merged = benchmark(lambda: merge_loops(flow, graph))

    before = len(flow.loops())
    after = len(merged.loops())
    assert before == 6  # three I(J(..)) nests
    assert after == 2  # one fused nest

    model = MachineModel(processors=8, doall_fork=100, doall_barrier=100)
    args: dict[str, int] = {"n": 63}
    c_before = simulate_flowchart(analyzed, flow, args, model).cycles
    c_after = simulate_flowchart(analyzed, merged, args, model).cycles
    assert c_after < c_before  # fewer fork/barrier pairs

    lines = [
        "A1 - loop-merging ablation (three element-wise equations, 64x64)",
        f"{'variant':<22} {'loops':>6} {'simulated cycles (P=8)':>24}",
        f"{'published scheduler':<22} {before:>6} {c_before:>24}",
        f"{'with merging pass':<22} {after:>6} {c_after:>24}",
        "",
        f"cycle reduction: {(1 - c_after / c_before) * 100:.1f}%",
    ]
    artifact("ablation_merge.txt", "\n".join(lines))


def test_a1_unsafe_merge_refused(benchmark):
    """V[I] = U[I-1] reads a sibling DOALL iteration: must not merge."""
    analyzed = analyze_module(parse_module(UNSAFE))
    graph = build_dependency_graph(analyzed)
    flow = schedule_module(analyzed, graph)

    merged = benchmark(lambda: merge_loops(flow, graph))
    assert len(merged.loops()) == len(flow.loops())

    from repro.analysis.validate import validate_flowchart_order

    assert validate_flowchart_order(analyzed, merged, {}) == []
