"""B-kernels — compiled wavefront kernels vs the tree-walking evaluator.

The kernel subsystem (``repro.runtime.kernels``) removes the per-element /
per-wavefront AST interpretation tax: each equation is exec-compiled once
into a specialized NumPy kernel and cached, and the process backend keeps a
persistent forked worker pool instead of forking per wavefront. This bench
measures both claims on the paper workloads — Jacobi relaxation (Figure 6)
and the hyperplane-transformed Gauss-Seidel relaxation (section 4) — and
writes the matrix to ``BENCH_kernels.json``.

Acceptance gates (CI-enforced):

* kernels are >= 2x faster than the evaluator path on Jacobi at the largest
  benchmarked grid, for both the ``serial`` and ``vectorized`` backends;
* the persistent-pool ``process`` backend beats the per-wavefront-fork
  baseline (``process-fork``) at >= 4 workers;
* every timed pair agrees **bit-exactly**.
"""

import json
import time

import numpy as np

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.plan.planner import forced_plan
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module

#: grid sizes per backend — the scalar reference path is orders of magnitude
#: slower, so it gets smaller grids; the gate applies at each list's largest
SERIAL_GRIDS = [16, 32, 48]
VECTOR_GRIDS = [64, 128, 256]
POOL_GRID, POOL_WORKERS, POOL_MAXK = 96, 4, 12

#: wall-clock advantage the gates demand
KERNEL_GATE_SPEEDUP = 2.0


def _time(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _jacobi(m, maxk=8):
    analyzed = jacobi_analyzed()
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    return analyzed, schedule_module(analyzed), args


def _hyperplane_gs(m, maxk=6):
    analyzed = hyperplane_transform(gauss_seidel_analyzed()).transformed
    rng = np.random.default_rng(1)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    return analyzed, schedule_module(analyzed), args


def _run(analyzed, flow, args, backend, kernels, workers=1, plan=None):
    options = ExecutionOptions(
        backend=backend, workers=workers, use_kernels=kernels
    )
    if plan is None and backend == "serial" and kernels:
        plan = _per_equation_plan(analyzed, flow, options)
    return execute_module(
        analyzed, args, flowchart=flow, options=options, plan=plan
    )


def _per_equation_plan(analyzed, flow, options):
    """Pin the per-equation kernel path: this bench (and the cost-model
    calibration anchored on its artifact) measures the per-equation layer;
    nest fusion has its own gate in bench_plan.py. Built once per timed
    series — plan construction must stay outside the timed region."""
    return forced_plan(analyzed, flow, "serial", options, default="serial")


def _kernel_matrix(workload, make, grids, backend, repeats):
    rows = []
    for m in grids:
        analyzed, flow, args = make(m)
        kern_plan = (
            _per_equation_plan(
                analyzed, flow,
                ExecutionOptions(backend=backend, workers=1, use_kernels=True),
            )
            if backend == "serial"
            else None
        )
        t_eval, ref = _time(
            lambda a=analyzed, f=flow, g=args: _run(a, f, g, backend, kernels=False),
            repeats=repeats,
        )
        t_kern, out = _time(
            lambda a=analyzed, f=flow, g=args, p=kern_plan: _run(
                a, f, g, backend, kernels=True, plan=p
            ),
            repeats=repeats,
        )
        assert np.array_equal(out["newA"], ref["newA"]), (
            f"{workload}/{backend} kernel path diverged at M={m}"
        )
        rows.append({
            "workload": workload,
            "backend": backend,
            "grid": m,
            # the sweep count: calibration derives per-element seconds from it
            "maxk": args["maxK"],
            "evaluator_seconds": t_eval,
            "kernel_seconds": t_kern,
            "speedup": t_eval / t_kern,
        })
    return rows


def test_kernel_speedup_matrix(artifact):
    """Kernels vs evaluator on both paper workloads + the CI gates."""
    payload = {"rows": [], "gates": {}}
    payload["rows"] += _kernel_matrix(
        "jacobi", _jacobi, SERIAL_GRIDS, "serial", repeats=1
    )
    payload["rows"] += _kernel_matrix(
        "jacobi", _jacobi, VECTOR_GRIDS, "vectorized", repeats=3
    )
    payload["rows"] += _kernel_matrix(
        "hyperplane_gauss_seidel", _hyperplane_gs, [16, 32], "serial", repeats=1
    )
    payload["rows"] += _kernel_matrix(
        "hyperplane_gauss_seidel", _hyperplane_gs, [32, 64], "vectorized",
        repeats=3,
    )

    # Gate 1: >= 2x on Jacobi at the largest grid, serial and vectorized.
    for backend, grids in (("serial", SERIAL_GRIDS), ("vectorized", VECTOR_GRIDS)):
        largest = grids[-1]
        row = next(
            r for r in payload["rows"]
            if r["workload"] == "jacobi"
            and r["backend"] == backend
            and r["grid"] == largest
        )
        assert row["speedup"] >= KERNEL_GATE_SPEEDUP, (
            f"kernel path only {row['speedup']:.2f}x faster than the "
            f"evaluator on jacobi/{backend} at M={largest} "
            f"(gate: {KERNEL_GATE_SPEEDUP}x)"
        )
        payload["gates"][f"jacobi_{backend}_M{largest}"] = {
            "speedup": row["speedup"],
            "required": KERNEL_GATE_SPEEDUP,
            "passed": True,
        }

    # Gate 2: the persistent pool beats fork-per-wavefront at >= 4 workers.
    analyzed, flow, args = _jacobi(POOL_GRID, maxk=POOL_MAXK)
    t_pool, out_pool = _time(
        lambda: _run(analyzed, flow, args, "process", True, POOL_WORKERS)
    )
    t_fork, out_fork = _time(
        lambda: _run(analyzed, flow, args, "process-fork", True, POOL_WORKERS)
    )
    assert np.array_equal(out_pool["newA"], out_fork["newA"])
    assert t_pool < t_fork, (
        f"persistent pool ({t_pool:.4f}s) did not beat per-wavefront fork "
        f"({t_fork:.4f}s) at {POOL_WORKERS} workers"
    )
    payload["gates"]["process_pool_vs_fork"] = {
        "grid": POOL_GRID,
        "workers": POOL_WORKERS,
        "maxk": POOL_MAXK,
        "pool_seconds": t_pool,
        "fork_seconds": t_fork,
        "speedup": t_fork / t_pool,
        "passed": True,
    }
    artifact("BENCH_kernels.json", json.dumps(payload, indent=2))


def test_kernel_wallclock_vectorized(benchmark):
    """pytest-benchmark series: the kernel path on the large Jacobi grid."""
    analyzed, flow, args = _jacobi(VECTOR_GRIDS[-1])
    out = benchmark(lambda: _run(analyzed, flow, args, "vectorized", True))
    assert out["newA"].shape == (VECTOR_GRIDS[-1] + 2, VECTOR_GRIDS[-1] + 2)


def test_kernel_wallclock_process_pool(benchmark):
    """pytest-benchmark series: persistent-pool process backend, 4 workers."""
    analyzed, flow, args = _jacobi(48, maxk=8)
    out = benchmark(lambda: _run(analyzed, flow, args, "process", True, 4))
    assert out["newA"].shape == (50, 50)
