"""Render the benchmark perf trend as a small-multiples SVG chart.

Input: two or more artifact directories, each holding one run's
``BENCH_*.json`` files — typically the committed ``benchmarks/baseline/``
plus one or more ``bench-trend`` artifacts downloaded from CI history (in
chronological order). Every *gated speedup* (the same values
``diff_trend.py`` diffs) becomes one panel: a single line over the runs,
its gate threshold as a muted dashed rule, and the latest value labeled.
Dependency-free by design — the CI image has no plotting stack, so the SVG
is written by hand.

Usage::

    python benchmarks/plot_trend.py benchmarks/baseline benchmarks/out
    python benchmarks/plot_trend.py --out trend.svg run1/ run2/ run3/

A text table of every plotted series is printed alongside (the
accessibility fallback for the chart).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

from diff_trend import GateSchemaError, collect  # noqa: E402

# Palette: single-series small multiples on a light surface (values from
# the validated reference palette; identity is carried by panel titles,
# not hue, so no categorical pairs need validating).
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e8e8e6"
SERIES = "#2a78d6"
THRESHOLD = "#a8a7a2"
ALERT = "#b3261e"

PANEL_W, PANEL_H = 280, 130
PAD_L, PAD_R, PAD_T, PAD_B = 14, 64, 34, 22
COLS = 3
GAP = 18
HEADER = 56


def _series(dirs: list[pathlib.Path]) -> tuple[list[str], dict[tuple, list], dict[tuple, float]]:
    """(run labels, speedup series by key, threshold by key)."""
    runs = []
    speedups: dict[tuple, list] = {}
    thresholds: dict[tuple, float] = {}
    collected = []
    for d in dirs:
        collected.append(collect(d))
        runs.append(d.name or str(d))
    keys = sorted({k for c in collected for k in c})
    for key in keys:
        values = [c.get(key) for c in collected]
        if not any(v is not None and v[1] for v in values):
            continue  # not a speedup-like gated number
        speedups[key] = [None if v is None else v[0] for v in values]
        req_key = key[:-1] + ("required",)
        for c in collected:
            if req_key in c:
                thresholds[key] = c[req_key][0]
    return runs, speedups, thresholds


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _panel(out: list[str], x0: float, y0: float, title: str,
           runs: list[str], values: list, threshold: float | None) -> None:
    plot_w = PANEL_W - PAD_L - PAD_R
    plot_h = PANEL_H - PAD_T - PAD_B
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    vmax = max([v for _, v in points] + ([threshold] if threshold else []))
    vmin = min([v for _, v in points] + ([threshold] if threshold else []))
    span = (vmax - vmin) or 1.0
    vmax += 0.15 * span
    vmin -= 0.15 * span

    def sx(i: float) -> float:
        return x0 + PAD_L + (
            plot_w / 2 if len(runs) == 1 else i * plot_w / (len(runs) - 1)
        )

    def sy(v: float) -> float:
        return y0 + PAD_T + plot_h * (1 - (v - vmin) / (vmax - vmin))

    out.append(
        f'<rect x="{x0}" y="{y0}" width="{PANEL_W}" height="{PANEL_H}" '
        f'fill="{SURFACE}" stroke="{GRID}" rx="4"/>'
    )
    # ~10px system font runs ≈ 5px/char; keep the title inside the panel
    max_chars = (PANEL_W - 2 * PAD_L) // 5
    if len(title) > max_chars:
        title = "…" + title[-(max_chars - 1):]
    out.append(
        f'<text x="{x0 + PAD_L}" y="{y0 + 16}" fill="{TEXT_SECONDARY}" '
        f'font-size="10" font-family="system-ui, sans-serif">{_esc(title)}</text>'
    )
    # recessive horizontal gridlines at the value extremes
    for gv in (vmin + 0.15 * span, vmax - 0.15 * span):
        gy = sy(gv)
        out.append(
            f'<line x1="{x0 + PAD_L}" y1="{gy:.1f}" '
            f'x2="{x0 + PANEL_W - PAD_R}" y2="{gy:.1f}" '
            f'stroke="{GRID}" stroke-width="1"/>'
        )
    if threshold is not None:
        ty = sy(threshold)
        out.append(
            f'<line x1="{x0 + PAD_L}" y1="{ty:.1f}" '
            f'x2="{x0 + PANEL_W - PAD_R}" y2="{ty:.1f}" '
            f'stroke="{THRESHOLD}" stroke-width="1" stroke-dasharray="4 3"/>'
        )
        out.append(
            f'<text x="{x0 + PANEL_W - PAD_R + 4}" y="{ty + 3:.1f}" '
            f'fill="{TEXT_SECONDARY}" font-size="9" '
            f'font-family="system-ui, sans-serif">gate {threshold:g}x</text>'
        )
    if len(points) > 1:
        path = " ".join(
            f"{'M' if j == 0 else 'L'}{sx(i):.1f},{sy(v):.1f}"
            for j, (i, v) in enumerate(points)
        )
        out.append(
            f'<path d="{path}" fill="none" stroke="{SERIES}" '
            f'stroke-width="2" stroke-linejoin="round"/>'
        )
    for i, v in points:
        # A value under its gate is a regression: flag the point in the
        # alert hue with the verdict in the tooltip, so a failing run is
        # readable straight off the chart.
        below = threshold is not None and v < threshold
        fill = ALERT if below else SERIES
        suffix = " — below gate" if below else ""
        out.append(
            f'<circle cx="{sx(i):.1f}" cy="{sy(v):.1f}" r="3.5" '
            f'fill="{fill}" stroke="{SURFACE}" stroke-width="2">'
            f"<title>{_esc(runs[i])}: {v:.3g}x{suffix}</title></circle>"
        )
    last_i, last_v = points[-1]
    out.append(
        f'<text x="{sx(last_i) + 7:.1f}" y="{sy(last_v) + 4:.1f}" '
        f'fill="{TEXT_PRIMARY}" font-size="11" font-weight="600" '
        f'font-family="system-ui, sans-serif">{last_v:.2f}x</text>'
    )
    for i, label in enumerate(runs):
        anchor = "start" if i == 0 else ("end" if i == len(runs) - 1 else "middle")
        out.append(
            f'<text x="{sx(i):.1f}" y="{y0 + PANEL_H - 8}" fill="{TEXT_SECONDARY}" '
            f'font-size="9" text-anchor="{anchor}" '
            f'font-family="system-ui, sans-serif">{_esc(label)}</text>'
        )


def render(dirs: list[pathlib.Path]) -> tuple[str, str]:
    """(svg text, plain-text table) for the gated speedups in ``dirs``."""
    runs, speedups, thresholds = _series(dirs)
    if not speedups:
        raise GateSchemaError(
            f"no gated speedup values found in: {', '.join(map(str, dirs))}"
        )
    rows = len(speedups) // COLS + (1 if len(speedups) % COLS else 0)
    width = COLS * PANEL_W + (COLS + 1) * GAP
    height = HEADER + rows * (PANEL_H + GAP)
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="Benchmark speedup trend across runs">',
        f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        f'<text x="{GAP}" y="26" fill="{TEXT_PRIMARY}" font-size="15" '
        f'font-weight="600" font-family="system-ui, sans-serif">'
        f"Gated benchmark speedups across runs</text>",
        f'<text x="{GAP}" y="42" fill="{TEXT_SECONDARY}" font-size="11" '
        f'font-family="system-ui, sans-serif">'
        f"dashed rule = the gate each speedup must clear "
        f"({' → '.join(_esc(r) for r in runs)})</text>",
    ]
    table = [f"{'gated speedup':<64} " + " ".join(f"{r:>12}" for r in runs)]
    for n, (key, values) in enumerate(sorted(speedups.items())):
        x0 = GAP + (n % COLS) * (PANEL_W + GAP)
        y0 = HEADER + (n // COLS) * (PANEL_H + GAP)
        title = "/".join(key).replace("BENCH_", "").replace(".json", "")
        _panel(out, x0, y0, title, runs, values, thresholds.get(key))
        table.append(
            f"{title:<64} "
            + " ".join(
                f"{'-':>12}" if v is None else f"{v:>11.3g}x" for v in values
            )
        )
    out.append("</svg>")
    return "\n".join(out) + "\n", "\n".join(table) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "dirs", nargs="*", type=pathlib.Path,
        default=[HERE / "baseline", HERE / "out"],
        help="artifact directories, one per run, oldest first "
        "(default: baseline out)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=HERE / "out" / "trend.svg",
        help="SVG output path",
    )
    args = parser.parse_args(argv)
    try:
        svg, table = render(list(args.dirs))
    except GateSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(svg)
    print(table, end="")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
