"""B-serve — the compile-once/run-many daemon vs naive per-request compilation.

The paper's economics: *all* scheduling and parallelization work happens at
compile time, so it must be paid once and amortized over many executions.
This bench quantifies that amortization at the serving layer introduced
with ``repro serve``: eight concurrent clients hammer a warm daemon
(kernels compiled, plan cached, options resolved once) over a real socket,
against a naive server that recompiles the module for every request —
what every ``compile_source(...).run(...)`` caller pays today.

Acceptance gates (CI-enforced):

* warm-daemon throughput at 8 concurrent clients is >= 5x the naive
  per-request compile()+run() throughput (measured ~20-60x on the
  baseline box; the gate is conservative for slow CI runners);
* every daemon response is **bit-exact** against the serial reference
  evaluator on that client's own input — served through shared worker
  state, JSON wire encoding and all.

Writes ``BENCH_serve.json`` (rows + gates) for the perf-trend artifacts.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.paper import RELAXATION_JACOBI_SOURCE
from repro.core.pipeline import compile_source
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.serve import DaemonThread, ReproClient, Session

CLIENTS = 8
REQUESTS_PER_CLIENT = 16
NAIVE_REQUESTS = 8
SIZES = {"M": 16, "maxK": 4}
SERVE_GATE_SPEEDUP = 5.0


def _inputs(n: int) -> list[np.ndarray]:
    m = SIZES["M"]
    return [
        np.random.default_rng(seed).random((m + 2, m + 2))
        for seed in range(n)
    ]


def _reference(inputs: list[np.ndarray]) -> list[np.ndarray]:
    """Serial reference-evaluator results, one per input — the bit-exact
    oracle both measured paths are checked against."""
    result = compile_source(RELAXATION_JACOBI_SOURCE)
    return [
        execute_module(
            result.analyzed,
            {**SIZES, "InitialA": a},
            flowchart=result.flowchart,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )["newA"]
        for a in inputs
    ]


def _naive_rps(inputs: list[np.ndarray], expected: list[np.ndarray]) -> float:
    """Requests/second when every request pays the full pipeline: parse,
    analyze, schedule, plan, compile kernels, run."""
    # untimed warm-up: the very first request also cc-compiles the native
    # .so into the on-disk cache, which later requests reuse — charging
    # that one-time toolchain cost to the naive path would flatter serve
    compile_source(RELAXATION_JACOBI_SOURCE).run(
        {**SIZES, "InitialA": inputs[0]}
    )
    t0 = time.perf_counter()
    for a, want in zip(inputs, expected):
        out = compile_source(RELAXATION_JACOBI_SOURCE).run(
            {**SIZES, "InitialA": a}
        )
        assert np.array_equal(out["newA"], want), "naive path diverged"
    return len(inputs) / (time.perf_counter() - t0)


def _serve_rps(
    inputs: list[np.ndarray], expected: list[np.ndarray]
) -> tuple[float, int]:
    """Requests/second for CLIENTS concurrent clients against one warm
    daemon, each client checking its own responses bit-exactly."""
    session = Session()
    session.load(RELAXATION_JACOBI_SOURCE)
    session.warm("Relaxation", SIZES)
    laps = 2  # best-of: the first lap can eat scheduler/page-cache noise
    best = 0.0
    with DaemonThread(
        session, port=0, max_inflight=CLIENTS, max_queue=4 * CLIENTS
    ) as daemon:
        host, port = daemon.address
        for _ in range(laps):
            barrier = threading.Barrier(CLIENTS + 1)

            def client(i: int, barrier=barrier) -> None:
                with ReproClient(host=host, port=port) as c:
                    # one untimed request: connection + executor-thread warm
                    c.run("Relaxation", {**SIZES, "InitialA": inputs[i]})
                    barrier.wait()  # all clients start together
                    for r in range(REQUESTS_PER_CLIENT):
                        k = (i + r) % len(inputs)
                        out = c.run(
                            "Relaxation", {**SIZES, "InitialA": inputs[k]}
                        )
                        assert np.array_equal(out["newA"], expected[k]), (
                            f"client {i} request {r} diverged from the "
                            f"serial evaluator"
                        )

            with ThreadPoolExecutor(CLIENTS) as pool:
                futures = [pool.submit(client, i) for i in range(CLIENTS)]
                barrier.wait()
                t0 = time.perf_counter()
                for f in futures:
                    f.result()
                elapsed = time.perf_counter() - t0
            best = max(best, CLIENTS * REQUESTS_PER_CLIENT / elapsed)
    return best, CLIENTS * REQUESTS_PER_CLIENT * laps


def test_serve_throughput_gate(artifact):
    """Warm-daemon throughput vs naive per-request compilation + the gate."""
    inputs = _inputs(CLIENTS)
    expected = _reference(inputs)

    naive_rps = _naive_rps(inputs[:NAIVE_REQUESTS], expected[:NAIVE_REQUESTS])
    serve_rps, served = _serve_rps(inputs, expected)
    speedup = serve_rps / naive_rps

    payload = {
        "rows": [
            {
                "workload": "relaxation_serve",
                "sizes": dict(SIZES),
                "clients": CLIENTS,
                "requests": served,
                "naive_rps": naive_rps,
                "serve_rps": serve_rps,
                "speedup": speedup,
            }
        ],
        "gates": {
            "serve_vs_naive_8_clients": {
                "speedup": speedup,
                "required": SERVE_GATE_SPEEDUP,
                "passed": speedup >= SERVE_GATE_SPEEDUP,
            }
        },
    }
    artifact("BENCH_serve.json", json.dumps(payload, indent=2))
    assert speedup >= SERVE_GATE_SPEEDUP, (
        f"warm daemon only {speedup:.1f}x the naive per-request "
        f"compile()+run() throughput at {CLIENTS} concurrent clients "
        f"(gate: {SERVE_GATE_SPEEDUP}x; naive {naive_rps:.1f} rps, "
        f"serve {serve_rps:.1f} rps)"
    )


def test_serve_wallclock_single_request(benchmark):
    """pytest-benchmark series: one warm in-process Session request —
    the floor the daemon adds wire overhead on top of."""
    session = Session()
    session.load(RELAXATION_JACOBI_SOURCE)
    session.warm("Relaxation", SIZES)
    arg = _inputs(1)[0]
    try:
        out = benchmark(
            lambda: session.run("Relaxation", {**SIZES, "InitialA": arg})
        )
        assert out["newA"].shape == arg.shape
    finally:
        session.close()
