"""F1 — Figure 1: the Relaxation module.

Reproduces: the PS source of the paper's running example parses, analyzes,
and round-trips through the pretty-printer. Benchmarks the front end.
"""

from repro.core.paper import RELAXATION_JACOBI_SOURCE
from repro.ps.parser import parse_module
from repro.ps.printer import format_module
from repro.ps.semantics import analyze_module


def test_fig1_parse_and_analyze(benchmark, artifact):
    def front_end():
        return analyze_module(parse_module(RELAXATION_JACOBI_SOURCE))

    analyzed = benchmark(front_end)

    assert analyzed.name == "Relaxation"
    assert [p for p in analyzed.param_names] == ["InitialA", "M", "maxK"]
    assert analyzed.result_names == ["newA"]
    assert [eq.label for eq in analyzed.equations] == ["eq.1", "eq.2", "eq.3"]
    a = analyzed.symbol("A").type
    assert a.rank == 3  # "dimensionality which is the sum of subscripts and superscripts"

    text = format_module(analyzed.module)
    reparsed = analyze_module(parse_module(text))
    assert [eq.label for eq in reparsed.equations] == ["eq.1", "eq.2", "eq.3"]
    artifact("fig1_module.txt", text)


def test_fig1_round_trip_stability(benchmark):
    """format(parse(format(x))) is a fixed point."""
    module = parse_module(RELAXATION_JACOBI_SOURCE)
    once = format_module(module)

    def round_trip():
        return format_module(parse_module(once))

    twice = benchmark(round_trip)
    assert twice == once
