"""S4a — Section 4: the five strict dependence inequalities.

Reproduces: from the revised eq.3's five self-references, the inequalities
a > 0, c > 0, b > 0, a > c, a > b over t(A[K,I,J]) = aK + bI + cJ.
Benchmarks dependence extraction.
"""

from repro.core.paper import gauss_seidel_analyzed
from repro.graph.build import build_dependency_graph
from repro.hyperplane.dependences import extract_dependences, find_recursive_components
from repro.hyperplane.solver import format_inequalities


def test_sec4_dependence_vectors(benchmark, artifact):
    analyzed = gauss_seidel_analyzed()
    graph = build_dependency_graph(analyzed)
    (component,) = find_recursive_components(graph)

    deps = benchmark(lambda: extract_dependences(graph, component))

    assert deps.array == "A"
    assert deps.dim_names == ["K", "I", "J"]
    assert set(deps.vectors) == {
        (1, 0, 0),
        (0, 0, 1),
        (0, 1, 0),
        (1, 0, -1),
        (1, -1, 0),
    }

    inequalities = format_inequalities(deps.vectors)
    assert set(inequalities) == {"a > 0", "c > 0", "b > 0", "a > c", "a > b"}

    lines = ["Section 4 - dependence inequalities (reproduced)",
             "t(A[K,I,J]) = aK + bI + cJ", ""]
    ref_names = deps.describe()
    for ref, vec, ineq in zip(ref_names, deps.vectors, inequalities):
        lines.append(f"{ref:<20} d = {vec!s:<12} =>  {ineq}")
    artifact("sec4_inequalities.txt", "\n".join(lines))


def test_sec4_jacobi_for_contrast(benchmark):
    """The Jacobi variant's dependences all advance K: only a > 0-type
    inequalities arise and t = K suffices."""
    from repro.core.paper import jacobi_analyzed

    analyzed = jacobi_analyzed()
    graph = build_dependency_graph(analyzed)
    (component,) = find_recursive_components(graph)
    deps = benchmark(lambda: extract_dependences(graph, component))
    assert all(v[0] == 1 for v in deps.vectors)
