"""P1 — The motivating claim: loop-level parallelism on MIMD machines.

Regenerates a speedup series for the Figure-6 schedule on the simulated
machine (P = 1..64) and benchmarks real execution: the vectorised DOALL
backend against the scalar reference semantics. The paper reports no
absolute numbers; the reproduced *shape* is near-linear interior speedup
that saturates at the loop trip count.
"""

import numpy as np

from repro.core.paper import jacobi_analyzed
from repro.machine.report import speedup_table
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module

PROCS = [1, 2, 4, 8, 16, 32, 64]


def test_p1_simulated_speedup(benchmark, artifact):
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)
    args = {"M": 64, "maxK": 30}

    table = benchmark(lambda: speedup_table(analyzed, flow, args, PROCS))

    s = table.speedups
    assert all(b >= a * 0.99 for a, b in zip(s, s[1:]))  # monotone
    assert s[PROCS.index(32)] > 16  # near-linear while unsaturated

    small = speedup_table(analyzed, flow, {"M": 4, "maxK": 30}, [1, 36, 144])
    ssmall = small.speedups
    assert ssmall[2] < ssmall[1] * 1.1  # saturates at the trip count

    text = table.pretty("P1 - Jacobi (Figure-6 schedule), M=64, maxK=30, simulated MIMD")
    text += "\n\n" + small.pretty("saturation at small M (M=4): trip count caps speedup")
    artifact("perf_jacobi.txt", text)


def test_p1_wallclock_vectorized(benchmark):
    """Real time: one NumPy op per DOALL nest iteration plane."""
    analyzed = jacobi_analyzed()
    m, maxk = 32, 10
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}

    out = benchmark(
        lambda: execute_module(
            analyzed, args, options=ExecutionOptions(vectorize=True)
        )
    )
    assert out["newA"].shape == (m + 2, m + 2)


def test_p1_wallclock_scalar_reference(benchmark):
    """Baseline: the scalar reference interpreter (the 'serial program')."""
    analyzed = jacobi_analyzed()
    m, maxk = 32, 10
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}

    out = benchmark(
        lambda: execute_module(
            analyzed, args, options=ExecutionOptions(vectorize=False)
        )
    )
    assert out["newA"].shape == (m + 2, m + 2)


def test_p1_wallclock_generated_python(benchmark):
    """Generated standalone Python (window allocation on)."""
    from repro.codegen.pygen import compile_python

    analyzed = jacobi_analyzed()
    fn = compile_python(analyzed)
    m, maxk = 32, 10
    rng = np.random.default_rng(0)
    initial = rng.random((m + 2, m + 2))

    out = benchmark(lambda: fn(initial, m, maxk))
    assert out.shape == (m + 2, m + 2)
