"""F2 — Figure 2: edge label attributes.

Reproduces: the classification of subscript expressions into the paper's
three classes ("I", "I - constant", any other expression), with offset
amounts and upper-bound detection. Benchmarks the classifier.
"""

from repro.graph.labels import SubscriptClass, classify_subscript
from repro.ps.parser import parse_expression
from repro.ps.semantics import EquationDim
from repro.ps.types import SubrangeType


def _dims():
    K = SubrangeType("K", parse_expression("2"), parse_expression("maxK"))
    I = SubrangeType("I", parse_expression("0"), parse_expression("M+1"))
    J = SubrangeType("J", parse_expression("0"), parse_expression("M+1"))
    return [EquationDim("K", K), EquationDim("I", I), EquationDim("J", J)]


CASES = [
    # (expression, expected class, expected offset)
    ("K", SubscriptClass.IDENTITY, None),
    ("I", SubscriptClass.IDENTITY, None),
    ("K - 1", SubscriptClass.OFFSET, 1),
    ("K - 2", SubscriptClass.OFFSET, 2),
    ("I + 1", SubscriptClass.OTHER, None),
    ("J + 1", SubscriptClass.OTHER, None),
    ("2 * K", SubscriptClass.OTHER, None),
    ("I + J", SubscriptClass.OTHER, None),
    ("maxK", SubscriptClass.OTHER, None),
    ("1", SubscriptClass.OTHER, None),
]


def test_fig2_classification(benchmark, artifact):
    dims = _dims()
    exprs = [(parse_expression(text), text) for text, _, _ in CASES]
    k_dim = SubrangeType("Kdim", parse_expression("1"), parse_expression("maxK"))

    def classify_all():
        return [classify_subscript(e, 0, dims, k_dim) for e, _ in exprs]

    infos = benchmark(classify_all)

    lines = ["Figure 2 - Edge Label Attributes (reproduced)",
             f"{'expression':<12} {'class':<16} {'offset':<8} {'upper bound?'}"]
    for (text, expected_cls, expected_off), info in zip(CASES, infos):
        assert info.cls is expected_cls, text
        assert info.offset == expected_off, text
        lines.append(
            f"{text:<12} {info.cls.value:<16} {info.offset!s:<8} "
            f"{info.is_upper_bound}"
        )
    # A[maxK] where maxK is the declared upper bound (section 3.4, rule 2).
    ub = classify_subscript(parse_expression("maxK"), 0, dims, k_dim)
    assert ub.is_upper_bound
    artifact("fig2_edge_labels.txt", "\n".join(lines))
