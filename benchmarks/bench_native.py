"""B-native — the cffi-compiled C kernel tier vs the NumPy nest kernels.

The native tier (``repro.runtime.kernels.native``) lowers fusable DOALL
nests all the way to C, compiled once and dlopened through cffi — the
paper's premise taken to its logical end: nonprocedural dataflow loops
compiling into tight loop-level-parallel machine code. This bench measures
the tier against the PR 3 fused NumPy nest kernels on the paper workloads
and writes ``BENCH_native.json``.

Acceptance gates (CI-enforced):

* the native tier is >= 1.5x faster than the NumPy nest kernel on serial
  Jacobi at the largest benchmarked grid (measured ~50-80x on the
  baseline box — the gate is deliberately conservative for slow CI
  runners);
* chunk-forced **threaded + native span kernels** (GIL released inside
  the C calls) is no slower than 1.10x the process backend on Jacobi at
  4 workers — threads dodge the fork/IPC tax once the compute runs
  outside the GIL, and this pins that claim on every CI box;
* every timed pair agrees **bit-exactly** with the evaluator.

The threaded rows carry ``native_seconds`` + ``workers`` so
``MachineModel.from_native_bench`` can recalibrate ``chunk_dispatch``
from the same artifact. Both tests accumulate into one
``BENCH_native.json`` payload.

On a machine without a C compiler (or cffi) the whole module skips with a
notice — the tier itself degrades to NumPy kernels there, which
``tests/runtime/test_native_kernels.py`` covers.
"""

import json
import time

import numpy as np
import pytest

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.plan.planner import forced_plan
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.kernels import KernelCache, native_supported
from repro.schedule.scheduler import schedule_module

pytestmark = pytest.mark.skipif(
    not native_supported(),
    reason="native tier unavailable: no C compiler / cffi on this machine "
    "(the runtime degrades to the NumPy kernel tier)",
)

#: serial grids; the gate applies at the largest
GRIDS = [32, 64, 96]
MAXK = 8

#: wall-clock advantage the gate demands
NATIVE_GATE_SPEEDUP = 1.5

#: the threaded-native gate: threaded wall clock may exceed the process
#: backend's by at most this factor on chunk-forced Jacobi
THREADED_GATE_RATIO = 1.10
GATE_WORKERS = 4

#: both tests accumulate rows/gates here and rewrite the one artifact, so
#: a partial run (-k) still emits whatever it measured
_PAYLOAD = {"rows": [], "gates": {}}


def _time(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _jacobi(m, maxk=MAXK):
    analyzed = jacobi_analyzed()
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    return analyzed, schedule_module(analyzed), args


def _hyperplane_gs(m, maxk=6):
    analyzed = hyperplane_transform(gauss_seidel_analyzed()).transformed
    rng = np.random.default_rng(1)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    return analyzed, schedule_module(analyzed), args


def _run_nest(analyzed, flow, args, tier, cache):
    """One serial execution with every DOALL nest forced onto the fused
    nest kernels of the given tier, through a persistent cache so compile
    time stays out of the timed region after warm-up."""
    options = ExecutionOptions(
        backend="serial", workers=1, kernel_tier=tier
    )
    scalars = {k: v for k, v in args.items() if isinstance(v, int)}
    plan = forced_plan(analyzed, flow, "serial", options, scalars, default="nest")
    return execute_module(
        analyzed, args, flowchart=flow, options=options,
        kernel_cache=cache, plan=plan,
    )


def _native_matrix(workload, make, grids, repeats):
    rows = []
    for m in grids:
        analyzed, flow, args = make(m)
        ref = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )
        caches = {t: KernelCache(analyzed, flow) for t in ("numpy", "native")}
        outs = {}
        times = {}
        for tier in ("numpy", "native"):
            _run_nest(analyzed, flow, args, tier, caches[tier])  # warm-up
            times[tier], outs[tier] = _time(
                lambda t=tier: _run_nest(analyzed, flow, args, t, caches[t]),
                repeats=repeats,
            )
        assert caches["native"].stats()["native"] > 0, (
            f"{workload} M={m}: native tier silently unused"
        )
        for tier in ("numpy", "native"):
            assert np.array_equal(outs[tier]["newA"], ref["newA"]), (
                f"{workload}/{tier} diverged from the evaluator at M={m}"
            )
        rows.append({
            "workload": workload,
            "backend": "serial",
            "grid": m,
            "maxk": args["maxK"],
            "nest_seconds": times["numpy"],
            "native_seconds": times["native"],
            "speedup": times["numpy"] / times["native"],
        })
    return rows


def test_native_speedup_matrix(artifact):
    """Native vs NumPy nest kernels on the paper workloads + the CI gate."""
    _PAYLOAD["rows"] += _native_matrix("jacobi", _jacobi, GRIDS, repeats=3)
    _PAYLOAD["rows"] += _native_matrix(
        "hyperplane_gauss_seidel", _hyperplane_gs, [24, 48], repeats=3
    )

    largest = GRIDS[-1]
    row = next(
        r for r in _PAYLOAD["rows"]
        if r["workload"] == "jacobi" and r["grid"] == largest
    )
    assert row["speedup"] >= NATIVE_GATE_SPEEDUP, (
        f"native tier only {row['speedup']:.2f}x faster than the NumPy "
        f"nest kernel on serial jacobi at M={largest} "
        f"(gate: {NATIVE_GATE_SPEEDUP}x)"
    )
    _PAYLOAD["gates"][f"jacobi_native_vs_nest_M{largest}"] = {
        "speedup": row["speedup"],
        "required": NATIVE_GATE_SPEEDUP,
        "passed": True,
    }
    artifact("BENCH_native.json", json.dumps(_PAYLOAD, indent=2))


def _run_chunked(analyzed, flow, args, backend, cache, workers):
    """One chunk-forced execution on a parallel backend: every DOALL that
    can chunk is chunked, and on the native tier each chunk runs the
    GIL-released span kernels."""
    options = ExecutionOptions(backend=backend, workers=workers)
    scalars = {k: v for k, v in args.items() if isinstance(v, int)}
    plan = forced_plan(analyzed, flow, backend, options, scalars, default="chunk")
    return execute_module(
        analyzed, args, flowchart=flow, options=options,
        kernel_cache=cache, plan=plan,
    )


def test_threaded_native_gate(artifact):
    """Chunk-forced threaded execution with native span kernels must keep
    pace with (or beat) the process backend on Jacobi at 4 workers."""
    m = GRIDS[1]
    analyzed, flow, args = _jacobi(m)
    ref = execute_module(
        analyzed, args, flowchart=flow,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )
    caches = {b: KernelCache(analyzed, flow) for b in ("threaded", "process")}
    times, outs = {}, {}
    for backend in ("threaded", "process"):
        _run_chunked(analyzed, flow, args, backend, caches[backend],
                     GATE_WORKERS)  # warm-up: compile + pool spin-up
        times[backend], outs[backend] = _time(
            lambda b=backend: _run_chunked(
                analyzed, flow, args, b, caches[b], GATE_WORKERS
            ),
            repeats=3,
        )
        assert np.array_equal(outs[backend]["newA"], ref["newA"]), (
            f"threaded-native gate: {backend} diverged from the evaluator"
        )
    assert caches["threaded"].stats()["native"] > 0, (
        "threaded gate ran without native span kernels"
    )
    ratio = times["threaded"] / times["process"]
    _PAYLOAD["rows"].append({
        "workload": "jacobi",
        "backend": "threaded",
        "grid": m,
        "maxk": args["maxK"],
        "workers": GATE_WORKERS,
        "native_seconds": times["threaded"],
        "process_seconds": times["process"],
    })
    assert ratio <= THREADED_GATE_RATIO, (
        f"threaded+native-span took {ratio:.2f}x the process backend on "
        f"jacobi M={m} at {GATE_WORKERS} workers "
        f"(gate: <= {THREADED_GATE_RATIO}x)"
    )
    _PAYLOAD["gates"][f"jacobi_threaded_native_vs_process_M{m}"] = {
        "ratio": ratio,
        "required": THREADED_GATE_RATIO,
        "passed": True,
    }
    artifact("BENCH_native.json", json.dumps(_PAYLOAD, indent=2))


def test_native_wallclock_serial(benchmark):
    """pytest-benchmark series: the native tier on the largest Jacobi grid."""
    analyzed, flow, args = _jacobi(GRIDS[-1])
    cache = KernelCache(analyzed, flow)
    _run_nest(analyzed, flow, args, "native", cache)  # compile outside timing
    out = benchmark(lambda: _run_nest(analyzed, flow, args, "native", cache))
    assert out["newA"].shape == (GRIDS[-1] + 2, GRIDS[-1] + 2)
