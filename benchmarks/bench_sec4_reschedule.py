"""S4e — Section 4: re-scheduling the transformed component.

Reproduces: "once the K' - constant edges have been deleted, the I and J
dimension can be scheduled as parallel loops ... In fact, the schedule is
identical to that of Figure 6" — an outer iterative time loop with two
inner parallel loops. Benchmarks schedule-after-transform.
"""

from repro.core.paper import gauss_seidel_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.schedule.scheduler import schedule_module


def test_sec4_transformed_schedule(benchmark, artifact):
    res = hyperplane_transform(gauss_seidel_analyzed())

    flow = benchmark(lambda: schedule_module(res.transformed))

    shapes = flow.shape()
    nests = [s for s in shapes if isinstance(s, tuple) and s[0] == "DO"]
    assert len(nests) == 1
    kw, idx, body = nests[0]
    assert idx == "Kp"
    (inner1,) = body
    assert inner1[0] == "DOALL" and inner1[1] == "Ip"
    (inner2,) = inner1[2]
    assert inner2[0] == "DOALL" and inner2[1] == "Jp"

    # No spatial DO loops remain anywhere.
    do_loops = [i for k, i in flow.loop_kinds() if k == "DO"]
    assert do_loops == ["Kp"]

    artifact(
        "sec4_reschedule.txt",
        "Section 4 - schedule of the transformed module (reproduced)\n\n"
        + flow.pretty(),
    )


def test_sec4_before_after_loop_kinds(benchmark):
    analyzed = gauss_seidel_analyzed()

    def both():
        res = hyperplane_transform(analyzed)
        return res.original_flowchart.loop_kinds(), res.transformed_flowchart.loop_kinds()

    before, after = benchmark(both)
    assert ("DO", "I") in before and ("DO", "J") in before
    assert ("DOALL", "Ip") in after and ("DOALL", "Jp") in after
