"""F3 — Figure 3: the dependency graph of the Relaxation module.

Reproduces: node set, data-dependency adjacency (including the five labelled
A -> eq.3 reference edges) and the subrange-bound edges M -> {InitialA, A,
newA}, maxK -> A. Benchmarks graph construction.
"""

from repro.core.paper import jacobi_analyzed
from repro.graph.build import bound_adjacency, build_dependency_graph, data_adjacency
from repro.graph.dot import to_dot, to_text


def test_fig3_graph_structure(benchmark, artifact):
    analyzed = jacobi_analyzed()

    graph = benchmark(lambda: build_dependency_graph(analyzed))

    assert set(graph.nodes) == {
        "InitialA", "M", "maxK", "newA", "A", "eq.1", "eq.2", "eq.3",
    }
    data = data_adjacency(graph)
    assert data["InitialA"] == {"eq.1"}
    assert data["eq.1"] == {"A"}
    assert data["A"] == {"eq.2", "eq.3"}
    assert data["eq.3"] == {"A"}
    assert data["eq.2"] == {"newA"}
    # One labelled edge per textual reference: A appears 5 times in eq.3.
    assert len(graph.edges_between("A", "eq.3")) == 5

    bound = bound_adjacency(graph)
    assert {"InitialA", "A", "newA"} <= bound["M"]
    assert "A" in bound["maxK"]

    artifact(
        "fig3_depgraph.txt",
        to_text(graph) + "\n\n/* Graphviz */\n" + to_dot(graph),
    )


def test_fig3_node_labels(benchmark):
    """'an array A[K,I,J] has three node labels'."""
    analyzed = jacobi_analyzed()
    graph = build_dependency_graph(analyzed)

    def collect_labels():
        return {n.id: [d.name for d in n.dims] for n in graph.nodes.values()}

    labels = benchmark(collect_labels)
    assert len(labels["A"]) == 3
    assert labels["eq.3"] == ["K", "I", "J"]
    assert labels["InitialA"] == ["I", "J"]
    assert labels["M"] == []
