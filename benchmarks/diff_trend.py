"""Diff gated benchmark numbers against the committed baseline.

The benchmark suite writes ``BENCH_*.json`` artifacts into
``benchmarks/out/``; the repository commits a known-good snapshot under
``benchmarks/baseline/``. This tool pairs every numeric *gated* value
(anything under a ``gates`` object, plus top-level ``speedup`` fields) and
prints the relative change — the perf-trend record CI attaches to every
run. By default it only reports (runner hardware varies); ``--max-regress``
turns it into a gate that fails when any speedup-like number regresses by
more than the given fraction.

Usage::

    python benchmarks/diff_trend.py
    python benchmarks/diff_trend.py --max-regress 0.5
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent

#: leaf names that count as "bigger is better" performance numbers
SPEEDUP_KEYS = {"speedup"}


def _numeric_leaves(obj, path=(), gated=False):
    """Yield ((key, path...), value, is_speedup) for gated numeric leaves."""
    if isinstance(obj, dict):
        for k, v in obj.items():
            yield from _numeric_leaves(
                v, path + (k,), gated or k == "gates"
            )
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            yield from _numeric_leaves(v, path + (str(i),), gated)
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        # Gated values live under a "gates" object; flat gate artifacts
        # (e.g. BENCH_plan_nest.json) expose speedup/required at top level.
        if gated or path[-1] in SPEEDUP_KEYS or path[-1] == "required":
            yield path, float(obj), path[-1] in SPEEDUP_KEYS


class GateSchemaError(Exception):
    """A benchmark artifact does not carry the gated numbers the trend
    diff runs on — bench-schema drift that must fail readably, not as a
    KeyError deep in the pairing loop."""


def collect(
    directory: pathlib.Path, require_gates: bool = False
) -> dict[tuple, tuple[float, bool]]:
    out: dict[tuple, tuple[float, bool]] = {}
    for f in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(f.read_text())
        except json.JSONDecodeError as exc:
            raise GateSchemaError(
                f"{f}: not valid JSON ({exc}) — regenerate the artifact "
                f"or drop it from the baseline"
            ) from None
        leaves = list(_numeric_leaves(payload, (f.name,)))
        if require_gates and not leaves:
            raise GateSchemaError(
                f"{f}: no gated numeric values (nothing under a 'gates' "
                f"object and no top-level speedup/required field) — the "
                f"bench schema changed; update the baseline artifact or "
                f"teach diff_trend about the new gate layout"
            )
        for path, value, is_speedup in leaves:
            out[path] = (value, is_speedup)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=HERE / "baseline",
        help="committed baseline directory",
    )
    parser.add_argument(
        "--current", type=pathlib.Path, default=HERE / "out",
        help="freshly generated artifact directory",
    )
    parser.add_argument(
        "--max-regress", type=float, default=None, metavar="FRACTION",
        help="fail when any speedup regresses by more than this fraction "
        "(default: report only)",
    )
    args = parser.parse_args(argv)

    try:
        # Baseline artifacts are committed by hand, so schema drift there
        # is a repo bug: every baseline file must carry gated values.
        base = collect(args.baseline, require_gates=True)
        curr = collect(args.current)
    except GateSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not base:
        print(f"no baseline artifacts in {args.baseline}", file=sys.stderr)
        return 1
    if not curr:
        print(f"no current artifacts in {args.current}", file=sys.stderr)
        return 1

    shared = sorted(set(base) & set(curr))
    regressions = []
    print(f"{'gated value':<70} {'baseline':>12} {'current':>12} {'delta':>8}")
    for key in shared:
        b, is_speedup = base[key]
        c, _ = curr[key]
        delta = (c - b) / b if b else float("inf")
        label = "/".join(key)
        marker = ""
        if is_speedup and args.max_regress is not None and -delta > args.max_regress:
            marker = "  << REGRESSION"
            regressions.append(label)
        print(f"{label:<70} {b:>12.4g} {c:>12.4g} {delta:>+7.1%}{marker}")
    only_base = sorted(set(base) - set(curr))
    for key in only_base:
        print(f"{'/'.join(key):<70} {'(missing from current run)':>34}")
    only_curr = sorted(set(curr) - set(base))
    for key in only_curr:
        print(f"{'/'.join(key):<70} {'(new; not in baseline)':>34}")

    if regressions:
        print(
            f"\n{len(regressions)} gated speedup(s) regressed beyond "
            f"{args.max_regress:.0%}: " + ", ".join(regressions),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
