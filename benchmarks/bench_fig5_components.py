"""F5 — Figure 5: component graph and corresponding flowcharts.

Reproduces the paper's table: the seven MSCCs of the Relaxation dependency
graph and each component's flowchart (null for data nodes, DOALL nests for
eq.1/eq.2, DO-DOALL-DOALL for {A, eq.3}). Benchmarks MSCC computation.

Note on ordering: the paper numbers the components 1..7 as InitialA, M,
maxK, eq.1, {A, eq.3}, eq.2, newA. Our processing order is topological and
puts M before InitialA because of the paper's own bound edge M -> InitialA;
null-flowchart components commute, so the emitted program is identical.
"""

from repro.core.paper import jacobi_analyzed
from repro.graph.build import build_dependency_graph
from repro.graph.scc import condensation_order
from repro.schedule.scheduler import schedule_module


def test_fig5_component_table(benchmark, artifact):
    analyzed = jacobi_analyzed()
    graph = build_dependency_graph(analyzed)

    comps = benchmark(lambda: condensation_order(graph.full_view()))

    assert comps == [
        frozenset({"M"}),
        frozenset({"InitialA"}),
        frozenset({"maxK"}),
        frozenset({"eq.1"}),
        frozenset({"A", "eq.3"}),
        frozenset({"eq.2"}),
        frozenset({"newA"}),
    ]

    # Per-component flowcharts, via the full schedule.
    flow = schedule_module(analyzed, graph)
    per_component = {
        frozenset({"M"}): "null",
        frozenset({"InitialA"}): "null",
        frozenset({"maxK"}): "null",
        frozenset({"newA"}): "null",
        frozenset({"eq.1"}): "DOALL I (DOALL J (eq.1))",
        frozenset({"A", "eq.3"}): "DO K (DOALL I (DOALL J (eq.3)))",
        frozenset({"eq.2"}): "DOALL I (DOALL J (eq.2))",
    }
    expected_shapes = [
        ("DOALL", "I", [("DOALL", "J", ["eq.1"])]),
        ("DO", "K", [("DOALL", "I", [("DOALL", "J", ["eq.3"])])]),
        ("DOALL", "I", [("DOALL", "J", ["eq.2"])]),
    ]
    assert flow.shape() == expected_shapes

    lines = ["Figure 5 - Component graph and corresponding flowchart (reproduced)",
             f"{'#':<3} {'node(s)':<14} {'flowchart'}"]
    for i, comp in enumerate(comps, start=1):
        names = ", ".join(sorted(comp))
        lines.append(f"{i:<3} {names:<14} {per_component[comp]}")
    artifact("fig5_components.txt", "\n".join(lines))


def test_fig5_scheduling_is_per_component(benchmark):
    """Schedule-Graph concatenates per-component flowcharts in producer
    order: eq.1's nest precedes the K loop precedes eq.2's nest."""
    analyzed = jacobi_analyzed()

    flow = benchmark(lambda: schedule_module(analyzed))
    assert flow.equation_labels() == ["eq.1", "eq.3", "eq.2"]
