"""B-plan — the cost-driven planner against the stopwatch.

The ExecutionPlan layer (``repro.plan``) claims four things worth gating:

* ``backend="auto"`` is a *good* choice: on every paper workload the
  planner-picked backend lands within 15% of the best hand-picked backend's
  measured wall clock (plus a small absolute grace for sub-millisecond
  runs, where scheduler jitter dominates);
* fusing a DOALL nest into one compiled kernel pays on the serial path:
  >= 1.5x over the per-equation kernels on Jacobi;
* *collapsing* a tall-skinny DOALL nest pays on the process backend: on a
  4x4096 Jacobi grid at >= 4 workers, the flattened fused-chunk path beats
  the PR 3 ``iterate``+inner-``chunk`` plan (one dispatch wave per sweep
  instead of one per row);
* the fused flat kernels themselves pay: >= 1.5x over running the same
  flat chunks through the per-equation walk.

Every timed pair is checked bit-exact against the serial reference first.
Results land in ``BENCH_plan.json`` (the perf-trend artifact CI diffs
against ``benchmarks/baseline/``).
"""

import json
import time
from dataclasses import replace

import numpy as np

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.machine.report import compare_plans
from repro.plan.planner import build_plan, forced_plan
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module

#: auto must land within this factor of the measured-best backend ...
AUTO_GATE_FACTOR = 1.15
#: ... with this much absolute grace (seconds) for tiny, jittery runs
AUTO_GATE_GRACE = 0.005
#: nest-fused kernels must beat per-equation kernels by this factor
NEST_GATE_SPEEDUP = 1.5
#: the collapsed fused-chunk path must beat the PR 3 iterate+inner-chunk
#: path per backend ("beats" with a little noise margin; the threaded win
#: is structural — one dispatch wave instead of one per row — so it gates
#: harder)
COLLAPSE_GATE_SPEEDUP = {"threaded": 1.3, "process": 1.05}
#: fused flat kernels must beat the per-equation flat-chunk walk
COLLAPSE_FUSE_GATE_SPEEDUP = 1.5
#: worker count for the collapse gates (the ISSUE floor is 4)
COLLAPSE_WORKERS = 8

#: hand-picked candidates auto competes against
CANDIDATES = ["serial", "vectorized", "threaded", "process"]

#: tall-skinny Jacobi: a handful of rows, thousands of columns, maxK sweeps
#: — the geometry where chunking on the outer DOALL alone starves workers
TALL_SKINNY_JACOBI_SOURCE = """\
Relax: module (InitialA: array[0 .. r + 1, 0 .. c + 1] of real;
               r: int; c: int; maxK: int):
       [newA: array[0 .. r + 1, 0 .. c + 1] of real];
type
    I = 1 .. r; J = 1 .. c; K = 1 .. maxK;
var
    A: array [0 .. maxK, 0 .. r + 1, 0 .. c + 1] of real;
define
    A[0, I, J] = InitialA[I, J];
    A[K, I, J] = (A[K-1, I-1, J] + A[K-1, I+1, J] +
                  A[K-1, I, J-1] + A[K-1, I, J+1]) / 4.0;
    newA[I, J] = A[maxK, I, J];
end Relax;
"""

DP_SOURCE = """\
Align: module (CostA: array[1 .. n] of real;
               CostB: array[1 .. n] of real;
               gap: real; n: int):
       [score: real];
type
    I, J = 1 .. n;
var
    D: array [0 .. n, 0 .. n] of real;
define
    D[0] = 0.0;
    D[I, 0] = I * gap;
    D[I, J] = min(D[I-1, J-1] + abs(CostA[I] - CostB[J]),
                  min(D[I-1, J] + gap, D[I, J-1] + gap));
    score = D[n, n];
end Align;
"""

PATHS_INT_SOURCE = """\
Paths: module (n: int): [Y: array[0 .. n] of int];
type
    I = 1 .. n; J = 1 .. n;
var
    W: array [0 .. n, 0 .. n] of int;
define
    W[0] = 1;
    W[I, 0] = 1;
    W[I, J] = W[I-1, J] + W[I, J-1];
    Y = W[n];
end Paths;
"""


def _workloads():
    rng = np.random.default_rng(0)
    jac = jacobi_analyzed()
    yield (
        "jacobi", jac, schedule_module(jac),
        {"InitialA": rng.random((66, 66)), "M": 64, "maxK": 10}, "newA",
    )
    gs = gauss_seidel_analyzed()
    yield (
        "gauss_seidel", gs, schedule_module(gs),
        {"InitialA": rng.random((34, 34)), "M": 32, "maxK": 6}, "newA",
    )
    hgs = hyperplane_transform(gauss_seidel_analyzed()).transformed
    yield (
        "hyperplane_gs", hgs, schedule_module(hgs),
        {"InitialA": rng.random((50, 50)), "M": 48, "maxK": 6}, "newA",
    )
    dp = analyze_module(parse_module(DP_SOURCE))
    yield (
        "dp", dp, schedule_module(dp),
        {"CostA": rng.random(96), "CostB": rng.random(96), "gap": 0.4, "n": 96},
        "score",
    )
    paths = analyze_module(parse_module(PATHS_INT_SOURCE))
    yield ("paths_int", paths, schedule_module(paths), {"n": 96}, "Y")


def _check_parity(analyzed, flow, args, result):
    ref = execute_module(
        analyzed, args, flowchart=flow,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )[result]
    for backend in CANDIDATES:
        out = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend=backend, workers=2),
        )[result]
        assert np.array_equal(out, ref), f"{backend} diverged"


def test_auto_plan_tracks_best_backend(artifact):
    """Gate (a): planned auto within 15% of the best measured backend."""
    payload = {"workloads": [], "gates": {}}
    for name, analyzed, flow, args, result in _workloads():
        _check_parity(analyzed, flow, args, result)
        cmp = compare_plans(
            analyzed, flow, args, backends=CANDIDATES, workers=2,
            repeats=3, workload=name,
        )
        payload["workloads"].append(cmp.to_dict())
        limit = cmp.best_seconds * AUTO_GATE_FACTOR + AUTO_GATE_GRACE
        assert cmp.auto_seconds <= limit, (
            f"{name}: auto planned {cmp.auto_backend!r} "
            f"({cmp.auto_seconds:.4f}s) misses the best backend "
            f"{cmp.best_backend!r} ({cmp.best_seconds:.4f}s) "
            f"by more than {AUTO_GATE_FACTOR:.2f}x + {AUTO_GATE_GRACE}s"
        )
        payload["gates"][f"auto_{name}"] = {
            "auto_backend": cmp.auto_backend,
            "auto_seconds": cmp.auto_seconds,
            "best_backend": cmp.best_backend,
            "best_seconds": cmp.best_seconds,
            "limit_factor": AUTO_GATE_FACTOR,
            "passed": True,
        }
    artifact("BENCH_plan.json", json.dumps(payload, indent=2))


def _time(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_nest_fusion_beats_per_equation_kernels(artifact):
    """Gate (b): fused nest kernels >= 1.5x on serial Jacobi.

    Pinned to the NumPy kernel tier: this gate measures the PR 3 fusion
    claim (one exec-compiled nest vs per-equation kernels), and letting
    the native tier serve the nest would silently re-measure the
    ``bench_native.py`` claim instead."""
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)
    rng = np.random.default_rng(1)
    m, maxk = 32, 8
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    options = ExecutionOptions(backend="serial", workers=1, kernel_tier="numpy")
    scalars = {"M": m, "maxK": maxk}

    fused = forced_plan(
        analyzed, flow, "serial", options, scalars, default="nest"
    )
    flat = forced_plan(
        analyzed, flow, "serial", options, scalars, default="serial"
    )
    t_fused, out_fused = _time(
        lambda: execute_module(
            analyzed, args, flowchart=flow, options=options, plan=fused
        )
    )
    t_flat, out_flat = _time(
        lambda: execute_module(
            analyzed, args, flowchart=flow, options=options, plan=flat
        )
    )
    assert np.array_equal(out_fused["newA"], out_flat["newA"])
    speedup = t_flat / t_fused
    assert speedup >= NEST_GATE_SPEEDUP, (
        f"nest-fused serial kernels only {speedup:.2f}x over per-equation "
        f"kernels on Jacobi M={m} (gate: {NEST_GATE_SPEEDUP}x)"
    )
    artifact(
        "BENCH_plan_nest.json",
        json.dumps(
            {
                "grid": m,
                "maxk": maxk,
                "per_equation_seconds": t_flat,
                "nest_seconds": t_fused,
                "speedup": speedup,
                "required": NEST_GATE_SPEEDUP,
                "passed": True,
            },
            indent=2,
        ),
    )


def _tall_skinny_setup(r=4, c=4096, maxk=6):
    analyzed = analyze_module(parse_module(TALL_SKINNY_JACOBI_SOURCE))
    flow = schedule_module(analyzed)
    rng = np.random.default_rng(4)
    args = {
        "InitialA": rng.random((r + 2, c + 2)),
        "r": r, "c": c, "maxK": maxk,
    }
    scalars = {"r": r, "c": c, "maxK": maxk}
    return analyzed, flow, args, scalars


def test_collapse_beats_iterate_on_tall_skinny(artifact):
    """Gate (c): on the 4x4096 tall-skinny Jacobi grid at >= 4 workers the
    collapsed fused-chunk path beats the PR 3 iterate+inner-chunk path on
    both parallel backends — one dispatch wave per sweep over a balanced
    flat space instead of one wave per row. ``use_collapse=False``
    reproduces the PR 3 plan exactly, so the comparison is plan-for-plan.
    """
    analyzed, flow, args, scalars = _tall_skinny_setup()
    expected = execute_module(
        analyzed, args, flowchart=flow,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )["newA"]

    payload = {
        "grid": [4, 4096], "maxk": 6, "workers": COLLAPSE_WORKERS,
        "gates": {},
    }
    for backend, required in COLLAPSE_GATE_SPEEDUP.items():
        options = ExecutionOptions(backend=backend, workers=COLLAPSE_WORKERS)
        collapse_plan = build_plan(analyzed, flow, options, scalars)
        pr3_plan = build_plan(
            analyzed, flow, replace(options, use_collapse=False), scalars
        )
        assert dict(collapse_plan.strategies())["I"] == "collapse", (
            collapse_plan.pretty()
        )
        assert dict(pr3_plan.strategies())["I"] == "iterate", pr3_plan.pretty()

        t_collapse, out_collapse = _time(
            lambda options=options, plan=collapse_plan: execute_module(
                analyzed, args, flowchart=flow, options=options, plan=plan
            )
        )
        t_iterate, out_iterate = _time(
            lambda options=options, plan=pr3_plan: execute_module(
                analyzed, args, flowchart=flow,
                options=replace(options, use_collapse=False), plan=plan,
            )
        )
        assert np.array_equal(out_collapse["newA"], expected)
        assert np.array_equal(out_iterate["newA"], expected)

        speedup = t_iterate / t_collapse
        assert speedup >= required, (
            f"collapsed fused chunks only {speedup:.2f}x over "
            f"iterate+chunk on the 4x4096 tall-skinny Jacobi "
            f"({backend}, {COLLAPSE_WORKERS} workers; gate: {required}x)"
        )
        payload["gates"][f"collapse_{backend}"] = {
            "iterate_seconds": t_iterate,
            "collapse_seconds": t_collapse,
            "speedup": speedup,
            "required": required,
            "passed": True,
        }
    artifact("BENCH_plan_collapse.json", json.dumps(payload, indent=2))


def test_fused_flat_chunks_beat_per_equation_walk(artifact):
    """Gate (d): the fused flat kernels >= 1.5x over the *same* flat
    chunks executed through the per-equation walk on the process backend —
    the chunked analogue of the serial nest-fusion gate."""
    analyzed, flow, args, scalars = _tall_skinny_setup(maxk=3)
    options = ExecutionOptions(backend="process", workers=COLLAPSE_WORKERS)

    fused = forced_plan(
        analyzed, flow, "process", options, scalars, default="collapse"
    )
    unfused = forced_plan(
        analyzed, flow, "process", options, scalars, default="collapse"
    )
    for lp in unfused.loops.values():
        lp.fuse = False

    t_fused, out_fused = _time(
        lambda: execute_module(
            analyzed, args, flowchart=flow, options=options, plan=fused
        )
    )
    t_walk, out_walk = _time(
        lambda: execute_module(
            analyzed, args, flowchart=flow, options=options, plan=unfused
        )
    )
    assert np.array_equal(out_fused["newA"], out_walk["newA"])
    speedup = t_walk / t_fused
    assert speedup >= COLLAPSE_FUSE_GATE_SPEEDUP, (
        f"fused flat chunk kernels only {speedup:.2f}x over the "
        f"per-equation flat walk (gate: {COLLAPSE_FUSE_GATE_SPEEDUP}x)"
    )
    artifact(
        "BENCH_plan_collapse_fuse.json",
        json.dumps(
            {
                "grid": [4, 4096],
                "maxk": 3,
                "workers": COLLAPSE_WORKERS,
                "backend": "process",
                "per_equation_seconds": t_walk,
                "fused_seconds": t_fused,
                "speedup": speedup,
                "required": COLLAPSE_FUSE_GATE_SPEEDUP,
                "passed": True,
            },
            indent=2,
        ),
    )


def test_plan_wallclock_auto_jacobi(benchmark):
    """pytest-benchmark series: the planned auto path on Jacobi."""
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)
    rng = np.random.default_rng(2)
    args = {"InitialA": rng.random((66, 66)), "M": 64, "maxK": 8}
    options = ExecutionOptions(backend="auto")
    out = benchmark(
        lambda: execute_module(analyzed, args, flowchart=flow, options=options)
    )
    assert out["newA"].shape == (66, 66)
