"""B-plan — the cost-driven planner against the stopwatch.

The ExecutionPlan layer (``repro.plan``) claims two things worth gating:

* ``backend="auto"`` is a *good* choice: on every paper workload the
  planner-picked backend lands within 15% of the best hand-picked backend's
  measured wall clock (plus a small absolute grace for sub-millisecond
  runs, where scheduler jitter dominates);
* fusing a DOALL nest into one compiled kernel pays on the serial path:
  >= 1.5x over the per-equation kernels on Jacobi.

Every timed pair is checked bit-exact against the serial reference first.
Results land in ``BENCH_plan.json`` (the perf-trend artifact CI diffs
against ``benchmarks/baseline/``).
"""

import json
import time

import numpy as np

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.machine.report import compare_plans
from repro.plan.planner import forced_plan
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module

#: auto must land within this factor of the measured-best backend ...
AUTO_GATE_FACTOR = 1.15
#: ... with this much absolute grace (seconds) for tiny, jittery runs
AUTO_GATE_GRACE = 0.005
#: nest-fused kernels must beat per-equation kernels by this factor
NEST_GATE_SPEEDUP = 1.5

#: hand-picked candidates auto competes against
CANDIDATES = ["serial", "vectorized", "threaded", "process"]

DP_SOURCE = """\
Align: module (CostA: array[1 .. n] of real;
               CostB: array[1 .. n] of real;
               gap: real; n: int):
       [score: real];
type
    I, J = 1 .. n;
var
    D: array [0 .. n, 0 .. n] of real;
define
    D[0] = 0.0;
    D[I, 0] = I * gap;
    D[I, J] = min(D[I-1, J-1] + abs(CostA[I] - CostB[J]),
                  min(D[I-1, J] + gap, D[I, J-1] + gap));
    score = D[n, n];
end Align;
"""

PATHS_INT_SOURCE = """\
Paths: module (n: int): [Y: array[0 .. n] of int];
type
    I = 1 .. n; J = 1 .. n;
var
    W: array [0 .. n, 0 .. n] of int;
define
    W[0] = 1;
    W[I, 0] = 1;
    W[I, J] = W[I-1, J] + W[I, J-1];
    Y = W[n];
end Paths;
"""


def _workloads():
    rng = np.random.default_rng(0)
    jac = jacobi_analyzed()
    yield (
        "jacobi", jac, schedule_module(jac),
        {"InitialA": rng.random((66, 66)), "M": 64, "maxK": 10}, "newA",
    )
    gs = gauss_seidel_analyzed()
    yield (
        "gauss_seidel", gs, schedule_module(gs),
        {"InitialA": rng.random((34, 34)), "M": 32, "maxK": 6}, "newA",
    )
    hgs = hyperplane_transform(gauss_seidel_analyzed()).transformed
    yield (
        "hyperplane_gs", hgs, schedule_module(hgs),
        {"InitialA": rng.random((50, 50)), "M": 48, "maxK": 6}, "newA",
    )
    dp = analyze_module(parse_module(DP_SOURCE))
    yield (
        "dp", dp, schedule_module(dp),
        {"CostA": rng.random(96), "CostB": rng.random(96), "gap": 0.4, "n": 96},
        "score",
    )
    paths = analyze_module(parse_module(PATHS_INT_SOURCE))
    yield ("paths_int", paths, schedule_module(paths), {"n": 96}, "Y")


def _check_parity(analyzed, flow, args, result):
    ref = execute_module(
        analyzed, args, flowchart=flow,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )[result]
    for backend in CANDIDATES:
        out = execute_module(
            analyzed, args, flowchart=flow,
            options=ExecutionOptions(backend=backend, workers=2),
        )[result]
        assert np.array_equal(out, ref), f"{backend} diverged"


def test_auto_plan_tracks_best_backend(artifact):
    """Gate (a): planned auto within 15% of the best measured backend."""
    payload = {"workloads": [], "gates": {}}
    for name, analyzed, flow, args, result in _workloads():
        _check_parity(analyzed, flow, args, result)
        cmp = compare_plans(
            analyzed, flow, args, backends=CANDIDATES, workers=2,
            repeats=3, workload=name,
        )
        payload["workloads"].append(cmp.to_dict())
        limit = cmp.best_seconds * AUTO_GATE_FACTOR + AUTO_GATE_GRACE
        assert cmp.auto_seconds <= limit, (
            f"{name}: auto planned {cmp.auto_backend!r} "
            f"({cmp.auto_seconds:.4f}s) misses the best backend "
            f"{cmp.best_backend!r} ({cmp.best_seconds:.4f}s) "
            f"by more than {AUTO_GATE_FACTOR:.2f}x + {AUTO_GATE_GRACE}s"
        )
        payload["gates"][f"auto_{name}"] = {
            "auto_backend": cmp.auto_backend,
            "auto_seconds": cmp.auto_seconds,
            "best_backend": cmp.best_backend,
            "best_seconds": cmp.best_seconds,
            "limit_factor": AUTO_GATE_FACTOR,
            "passed": True,
        }
    artifact("BENCH_plan.json", json.dumps(payload, indent=2))


def _time(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_nest_fusion_beats_per_equation_kernels(artifact):
    """Gate (b): fused nest kernels >= 1.5x on serial Jacobi."""
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)
    rng = np.random.default_rng(1)
    m, maxk = 32, 8
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    options = ExecutionOptions(backend="serial", workers=1)
    scalars = {"M": m, "maxK": maxk}

    fused = forced_plan(
        analyzed, flow, "serial", options, scalars, default="nest"
    )
    flat = forced_plan(
        analyzed, flow, "serial", options, scalars, default="serial"
    )
    t_fused, out_fused = _time(
        lambda: execute_module(
            analyzed, args, flowchart=flow, options=options, plan=fused
        )
    )
    t_flat, out_flat = _time(
        lambda: execute_module(
            analyzed, args, flowchart=flow, options=options, plan=flat
        )
    )
    assert np.array_equal(out_fused["newA"], out_flat["newA"])
    speedup = t_flat / t_fused
    assert speedup >= NEST_GATE_SPEEDUP, (
        f"nest-fused serial kernels only {speedup:.2f}x over per-equation "
        f"kernels on Jacobi M={m} (gate: {NEST_GATE_SPEEDUP}x)"
    )
    artifact(
        "BENCH_plan_nest.json",
        json.dumps(
            {
                "grid": m,
                "maxk": maxk,
                "per_equation_seconds": t_flat,
                "nest_seconds": t_fused,
                "speedup": speedup,
                "required": NEST_GATE_SPEEDUP,
                "passed": True,
            },
            indent=2,
        ),
    )


def test_plan_wallclock_auto_jacobi(benchmark):
    """pytest-benchmark series: the planned auto path on Jacobi."""
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)
    rng = np.random.default_rng(2)
    args = {"InitialA": rng.random((66, 66)), "M": 64, "maxK": 8}
    options = ExecutionOptions(backend="auto")
    out = benchmark(
        lambda: execute_module(analyzed, args, flowchart=flow, options=options)
    )
    assert out["newA"].shape == (66, 66)
