"""P3 — Section 4: the hyperplane wavefront profile.

Regenerates the hyperplane sweep for t = 2K + I + J: plane sizes across t,
exact single coverage of every array point, and the comparison between the
hyperplane schedule's step count and the true critical path from the
element-level dataflow graph. Benchmarks profile computation.
"""

from repro.analysis.element_graph import build_element_graph
from repro.analysis.wavefront import wavefront_profile

PI = (2, 1, 1)
VECTORS = [(1, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, -1), (1, -1, 0)]


def test_p3_profile(benchmark, artifact):
    m, maxk = 16, 12
    bounds = [(1, maxk), (0, m + 1), (0, m + 1)]

    prof = benchmark(lambda: wavefront_profile(PI, bounds))

    assert prof.covers_box_exactly()
    assert prof.t_min == 2
    assert prof.t_max == 2 * maxk + 2 * (m + 1)

    g = build_element_graph(bounds, VECTORS)
    # The hyperplane schedule can never beat the exact critical path.
    assert g.span <= prof.n_hyperplanes

    lines = [
        f"P3 - hyperplane profile, t = 2K + I + J, M={m}, maxK={maxk}",
        f"planes: t = {prof.t_min} .. {prof.t_max}  ({prof.n_hyperplanes} steps)",
        f"total points: {prof.total_points} (= maxK x (M+2)^2 = "
        f"{maxk * (m + 2) ** 2})",
        f"widest plane: {prof.max_width} elements",
        f"exact critical path (element DAG): {g.span} steps",
        f"average parallelism (work/span): {g.average_parallelism():.1f}",
        "",
        "plane sizes:",
    ]
    scale = 40 / prof.max_width
    for t, size in zip(range(prof.t_min, prof.t_max + 1), prof.sizes):
        lines.append(f"  t={t:>3} |{'#' * int(size * scale):<40}| {size}")
    artifact("wavefront_profile.txt", "\n".join(lines))


def test_p3_element_dag_levels(benchmark):
    bounds = [(1, 8), (0, 9), (0, 9)]

    g = benchmark(lambda: build_element_graph(bounds, VECTORS))
    assert g.work == 8 * 10 * 10
    assert g.max_parallelism() > 1
    assert sum(g.level_sizes()) == g.work
