"""B-fission — splitting a fused sequential nest so the fast tiers reach it.

The merge pass fuses every same-range recurrence into one ``DO`` nest,
and the unfissioned plan walks that nest one element at a time through
the evaluator/scalar tier: the three recurrences in the ``Mixed``
workload (an integer scan, a linear recurrence, and a running max) share
one loop, so no one of them can take a native in-order kernel, a blocked
scan, or a pipeline stage on its own.  Fission replicates the loop per
dependence group; the replicas are sibling loops, the pipeline pass
decouples them into stages, and each stage runs compiled C behind a
released GIL.  This bench measures that composition and writes
``BENCH_fission.json``.

Acceptance gates (CI-enforced):

* the *unforced* threaded plan at 4 workers is >= 1.5x faster than the
  same backend with fission disabled (``use_fission=False``) at the
  largest benchmarked trip (measured ~200x+ on the baseline box — the
  split pieces run compiled stage kernels where the fused nest walks
  Python elements; the gate stays conservative for slow CI runners);
* the unforced plan must actually *contain* a fission split at the
  largest trip — the pricing has to take the transform on merit, not
  obey a forced strategy;
* every timed execution agrees **bit-exactly** with the unfissioned
  plan, and the fissioned result agrees across the serial, vectorized,
  threaded, and free-threading backends.

On a machine without a C compiler the module skips (the replica pieces
would fall back to NumPy bundles; the mechanism still works but the
baseline shifts, and the native lane is the one the gate pins).
"""

import json
import time

import numpy as np
import pytest

from repro.core.recurrences import mixed_analyzed, mixed_args
from repro.graph.build import build_dependency_graph
from repro.plan.planner import build_plan
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.kernels import KernelCache, native_supported
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_module

pytestmark = pytest.mark.skipif(
    not native_supported(),
    reason="native tier unavailable: no C compiler / cffi on this machine",
)

#: fused-nest trip counts; the gate applies at the largest
TRIPS = [20_000, 200_000]

#: wall-clock advantage the gate demands at the largest trip
FISSION_GATE_SPEEDUP = 1.5
GATE_WORKERS = 4

_PAYLOAD = {"rows": [], "gates": {}}


def _time(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_fission_speedup_gate(artifact):
    analyzed = mixed_analyzed()
    graph = build_dependency_graph(analyzed)
    flow = merge_loops(schedule_module(analyzed, graph), graph)

    # Bit-exactness of the full stack vs the tree-walking evaluator at a
    # size the evaluator can afford; the large rows then cross-check the
    # fissioned and unfissioned plans against each other.
    small = mixed_args(n=512)
    ref = execute_module(
        analyzed, small, flowchart=flow,
        options=ExecutionOptions(backend="serial", use_kernels=False),
    )
    res = execute_module(
        analyzed, small, flowchart=flow,
        options=ExecutionOptions(
            backend="threaded", workers=GATE_WORKERS, strategy="fission"
        ),
    )
    for out in ("T", "S", "M"):
        assert np.array_equal(res[out], ref[out]), (
            f"fissioned {out} diverged from the evaluator at n=512"
        )

    for n in TRIPS:
        args = mixed_args(n=n)
        cache_fused = KernelCache(analyzed, flow)
        cache_split = KernelCache(analyzed, flow)
        o_fused = ExecutionOptions(
            backend="threaded", workers=GATE_WORKERS, use_fission=False
        )
        o_split = ExecutionOptions(backend="threaded", workers=GATE_WORKERS)

        def run_fused(args=args, options=o_fused, cache=cache_fused):
            return execute_module(
                analyzed, args, flowchart=flow, options=options,
                kernel_cache=cache,
            )

        def run_split(args=args, options=o_split, cache=cache_split):
            return execute_module(
                analyzed, args, flowchart=flow, options=options,
                kernel_cache=cache,
            )

        run_fused(), run_split()  # warm caches/pools outside the timed region
        t_fused, out_fused = _time(run_fused)
        t_split, out_split = _time(run_split)
        for out in ("T", "S", "M"):
            assert np.array_equal(out_split[out], out_fused[out]), (
                f"fissioned {out} diverged from the fused plan at n={n}"
            )

        # The pricing must take the split unforced at bench sizes.
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend="threaded", workers=GATE_WORKERS),
            {"n": n}, cpu_count=GATE_WORKERS,
        )
        auto_splits = any(s == "fission" for _, s in plan.strategies())

        _PAYLOAD["rows"].append({
            "workload": "mixed",
            "trip": n,
            "workers": GATE_WORKERS,
            "unfissioned_seconds": t_fused,
            "fissioned_seconds": t_split,
            "speedup": t_fused / t_split,
            "auto_splits": auto_splits,
        })

    largest = max(TRIPS)
    row = next(r for r in _PAYLOAD["rows"] if r["trip"] == largest)
    assert row["speedup"] >= FISSION_GATE_SPEEDUP, (
        f"fission only {row['speedup']:.2f}x over the fused plan on "
        f"mixed at n={largest} (gate: {FISSION_GATE_SPEEDUP}x)"
    )
    assert row["auto_splits"], (
        f"unforced threaded plan at n={largest} did not take the split"
    )
    _PAYLOAD["gates"][f"mixed_fission_vs_fused_n{largest}"] = {
        "speedup": row["speedup"],
        "required": FISSION_GATE_SPEEDUP,
        "passed": True,
    }

    # Cross-backend agreement: the split execution must not be a
    # threaded-only truth.
    args2 = mixed_args(n=20_000)
    base = None
    for backend in ("serial", "vectorized", "threaded", "free-threading"):
        r2 = execute_module(
            analyzed, args2, flowchart=flow,
            options=ExecutionOptions(
                backend=backend, workers=GATE_WORKERS, strategy="fission"
            ),
        )
        arrs = tuple(np.asarray(r2[out]) for out in ("T", "S", "M"))
        if base is None:
            base = arrs
        else:
            for out, arr, want in zip(("T", "S", "M"), arrs, base):
                assert np.array_equal(arr, want), (
                    f"mixed {out} diverged on backend {backend}"
                )
    _PAYLOAD["gates"]["cross_backend_bit_exact"] = {"passed": True}

    artifact("BENCH_fission.json", json.dumps(_PAYLOAD, indent=2))
