#!/usr/bin/env python3
"""Pluggable DOALL execution backends: the same schedule, four engines.

The scheduler emits DOALL loops because their iterations are independent;
the execution backends exploit that on real hardware:

* ``serial``     — scalar reference semantics (the correctness baseline);
* ``vectorized`` — each DOALL dimension becomes one NumPy operation;
* ``threaded``   — chunked subranges on a thread pool (NumPy kernels
                   release the GIL);
* ``process``    — chunked subranges in forked workers over shared-memory
                   arrays, one barrier per wavefront.

Equivalent CLI:  repro run relaxation.ps --set M=24 --set maxK=6 \\
                     --backend threaded --workers 4

Run:  python examples/backends_demo.py
"""

import time

import numpy as np

import repro
from repro.core.paper import jacobi_analyzed
from repro.machine.report import measure_backend_speedups
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module


def main() -> None:
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)
    m, maxk = 24, 6
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}

    print("=" * 72)
    print("Schedule under execution (paper Figure 6)")
    print("=" * 72)
    print(flow.pretty())

    print()
    print("=" * 72)
    print(f"Backend matrix on Jacobi relaxation (M={m}, maxK={maxk})")
    print("=" * 72)
    combos = [
        ("serial", None),
        ("vectorized", None),
        ("threaded", 4),
        ("process", 4),
    ]
    reference = None
    print(f"{'backend':>12} {'workers':>8} {'wall clock':>12} {'vs serial':>10}")
    t_serial = None
    for backend, workers in combos:
        options = ExecutionOptions(backend=backend, workers=workers)
        t0 = time.perf_counter()
        out = execute_module(analyzed, args, flowchart=flow, options=options)
        dt = time.perf_counter() - t0
        if reference is None:
            reference, t_serial = out["newA"], dt
        assert np.allclose(out["newA"], reference)
        print(f"{backend:>12} {workers or 1:>8} {dt * 1e3:>10.1f} ms "
              f"{t_serial / dt:>9.1f}x")
    print("-> all four backends produce identical grids.")

    print()
    print("=" * 72)
    print("Cost-model prediction vs measured speedup (threaded backend)")
    print("=" * 72)
    report = measure_backend_speedups(
        analyzed, flow, args, "threaded", [1, 2, 4], workload="jacobi"
    )
    print(report.pretty())
    print()
    print("-> the 1987 cost model predicts speedup from dividing iterations")
    print("   over processors; the measured column also captures what the")
    print("   model cannot see — NumPy chunk kernels vs the scalar")
    print("   interpreter baseline, GIL contention, and fork overhead.")

    print()
    print("CLI equivalents:")
    print("  repro run relaxation.ps --set M=24 --set maxK=6 "
          "--backend threaded --workers 4")
    print("  repro run relaxation.ps --set M=24 --set maxK=6 "
          "--backend process --workers 4 --windows")


if __name__ == "__main__":
    main()
