#!/usr/bin/env python3
"""Beyond relaxation: hyperplane scheduling of a dynamic-programming table.

The paper's transformation is not specific to PDE stencils. This example
writes a Needleman-Wunsch-style alignment-cost recurrence in PS (each cell
depends on its west, north and north-west neighbours), shows that the naive
schedule is fully iterative, derives the anti-diagonal time function
t = I + J, and measures the exposed parallelism.

Run:  python examples/wavefront_dp.py
"""

import numpy as np

from repro.analysis.element_graph import build_element_graph
from repro.analysis.wavefront import wavefront_profile
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import execute_module
from repro.schedule.scheduler import schedule_module

DP_SOURCE = """\
(* Alignment-cost table: D[I,J] depends on west, north and north-west. *)
Align: module (CostA: array[1 .. n] of real;
               CostB: array[1 .. n] of real;
               gap: real; n: int):
       [score: real];
type
    I, J = 1 .. n;
var
    D: array [0 .. n, 0 .. n] of real;
define
    D[0] = 0.0;
    D[I, 0] = I * gap;
    D[I, J] = min(D[I-1, J-1] + abs(CostA[I] - CostB[J]),
                  min(D[I-1, J] + gap, D[I, J-1] + gap));
    score = D[n, n];
end Align;
"""


def main() -> None:
    analyzed = analyze_module(parse_module(DP_SOURCE))
    print("=" * 72)
    print("PS source")
    print("=" * 72)
    print(DP_SOURCE)

    flow = schedule_module(analyzed)
    print("=" * 72)
    print("Naive schedule: the DP loops are iterative")
    print("=" * 72)
    print(flow.pretty())

    res = hyperplane_transform(analyzed, array="D")
    print()
    print("=" * 72)
    print("Hyperplane derivation")
    print("=" * 72)
    print("dependence vectors:", res.dependences.vectors)
    print("inequalities:", "; ".join(res.inequalities))
    print("time vector:", res.pi, "->", res.time_equation)
    print()
    print("Transformed schedule (anti-diagonal wavefronts):")
    print(res.transformed_flowchart.pretty())

    print()
    print("=" * 72)
    print("Exposed parallelism")
    print("=" * 72)
    n = 24
    prof = wavefront_profile(res.pi, [(0, n), (0, n)])
    g = build_element_graph([(0, n), (0, n)], res.dependences.vectors)
    print(f"table: {(n + 1)}x{(n + 1)} = {g.work} cells")
    print(f"hyperplanes: {prof.n_hyperplanes}, widest = {prof.max_width} cells")
    print(f"critical path (exact): {g.span} steps; "
          f"average parallelism = {g.average_parallelism():.1f}")
    bars = prof.sizes
    scale = 48 / max(bars)
    for t, s in zip(range(prof.t_min, prof.t_max + 1), bars):
        if t % 4 == 0:
            print(f"  t={t:>3} |{'#' * int(s * scale):<48}| {s}")

    print()
    print("=" * 72)
    print("Numeric check: transformed module computes the same score")
    print("=" * 72)
    rng = np.random.default_rng(7)
    n_run = 12
    args = {
        "CostA": rng.random(n_run),
        "CostB": rng.random(n_run),
        "gap": 0.45,
        "n": n_run,
    }
    s1 = execute_module(analyzed, args)["score"]
    s2 = execute_module(res.transformed, args)["score"]
    print(f"original score    = {s1:.6f}")
    print(f"transformed score = {s2:.6f}")
    assert abs(s1 - s2) < 1e-12


if __name__ == "__main__":
    main()
