#!/usr/bin/env python3
"""Loop-level parallelism on the simulated MIMD machine + real wall clock.

Reproduces the paper's motivating claim ("Loop level parallelism has been
recognized to have major impact in the performance of parallel programs on
MIMD machines") two ways:

1. the simulated machine: cycle counts of the Figure-6 schedule across
   processor counts, against the fully iterative Gauss-Seidel schedule;
2. real wall clock on this machine: the interpreter's vectorised NumPy
   execution of DOALL dimensions against the scalar reference loop.

Run:  python examples/relaxation_speedup.py
"""

import time

import numpy as np

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.machine.cost import MachineModel
from repro.machine.report import speedup_table
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module


def simulated() -> None:
    print("=" * 72)
    print("Simulated MIMD machine (idealised cycles)")
    print("=" * 72)
    args = {"M": 64, "maxK": 30}
    procs = [1, 2, 4, 8, 16, 32, 64]

    jac = jacobi_analyzed()
    jac_flow = schedule_module(jac)
    print(speedup_table(jac, jac_flow, args, procs).pretty(
        "\nJacobi (Figure 6: DO K with inner DOALLs), M=64, maxK=30"))

    gs = gauss_seidel_analyzed()
    gs_flow = schedule_module(gs)
    print(speedup_table(gs, gs_flow, args, procs).pretty(
        "\nGauss-Seidel (Figure 7: fully iterative), M=64, maxK=30"))
    print("\n-> the iterative schedule cannot use added processors; the")
    print("   DOALL schedule scales until the trip count saturates.")


def wall_clock() -> None:
    print()
    print("=" * 72)
    print("Real wall clock: vectorised DOALL vs scalar reference")
    print("=" * 72)
    analyzed = jacobi_analyzed()
    m, maxk = 48, 12
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}

    t0 = time.perf_counter()
    fast = execute_module(analyzed, args, options=ExecutionOptions(vectorize=True))
    t_fast = time.perf_counter() - t0

    t0 = time.perf_counter()
    slow = execute_module(analyzed, args, options=ExecutionOptions(vectorize=False))
    t_slow = time.perf_counter() - t0

    assert np.allclose(fast["newA"], slow["newA"])
    print(f"M={m}, maxK={maxk}")
    print(f"  scalar reference loops : {t_slow * 1e3:9.1f} ms")
    print(f"  vectorised DOALL dims  : {t_fast * 1e3:9.1f} ms")
    print(f"  speedup                : {t_slow / t_fast:9.1f}x")


def sync_cost_sensitivity() -> None:
    print()
    print("=" * 72)
    print("Where DOALL stops paying: barrier cost vs loop size")
    print("=" * 72)
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)
    from repro.machine.simulator import simulate_flowchart

    print(f"{'M':>4} {'serial':>12} {'P=16':>12} {'speedup':>8}")
    for m in [2, 4, 8, 16, 32, 64]:
        args = {"M": m, "maxK": 20}
        model = MachineModel(doall_fork=200, doall_barrier=200)
        s1 = simulate_flowchart(analyzed, flow, args, model.with_processors(1))
        s16 = simulate_flowchart(analyzed, flow, args, model.with_processors(16))
        print(f"{m:>4} {s1.cycles:>12} {s16.cycles:>12} "
              f"{s1.cycles / s16.cycles:>8.2f}")
    print("-> with expensive synchronisation, small grids see no benefit;")
    print("   the crossover moves with the fork/barrier cost.")


def main() -> None:
    simulated()
    wall_clock()
    sync_cost_sensitivity()


if __name__ == "__main__":
    main()
