#!/usr/bin/env python3
"""Memory reuse: virtual dimensions and window allocation (section 3.4).

Shows, for a family of recurrences, which dimensions the scheduler marks
virtual, the window widths it derives, and the storage actually allocated by
the runtime — including the transformed array of section 4, where the window
is 3 because the rewritten recurrence references K'-1 and K'-2.

Run:  python examples/memory_windows.py
"""

import numpy as np

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module

CASES = {
    "first-order scan (window 2)": (
        "Scan: module (n: int; x0: real): [y: real];\n"
        "type I = 2 .. n;\n"
        "var F: array [1 .. n] of real;\n"
        "define F[1] = x0; F[I] = F[I-1] * 0.9 + 1.0; y = F[n];\nend Scan;"
    ),
    "Fibonacci (window 3)": (
        "Fib: module (n: int): [y: int];\n"
        "type I = 3 .. n;\n"
        "var F: array [1 .. n] of int;\n"
        "define F[1] = 1; F[2] = 1; F[I] = F[I-1] + F[I-2]; y = F[n];\nend Fib;"
    ),
    "lag-4 recurrence (window 5)": (
        "Lag: module (n: int): [y: real];\n"
        "type I = 5 .. n;\n"
        "var F: array [1 .. n] of real;\n"
        "define F[1] = 1.0; F[2] = 1.0; F[3] = 1.0; F[4] = 1.0;\n"
        "F[I] = F[I-1] + 0.5 * F[I-4]; y = F[n];\nend Lag;"
    ),
}


def table_row(name, analyzed, flow, bounds):
    from repro.runtime.values import array_bounds

    rows = []
    for sym in analyzed.table.symbols.values():
        windows = flow.window_of(sym.name)
        if not windows:
            continue
        ab = array_bounds(sym.type, bounds)
        full = int(np.prod([hi - lo + 1 for lo, hi in ab]))
        win = full
        for d, w in windows.items():
            extent = ab[d][1] - ab[d][0] + 1
            win = win // extent * w
        rows.append((name, sym.name, dict(windows), full, win))
    return rows


def main() -> None:
    print(f"{'case':<28} {'array':<6} {'windows':<12} {'full':>8} {'window':>8} {'saving':>8}")
    print("-" * 76)

    rows = []
    for name, src in CASES.items():
        analyzed = analyze_module(parse_module(src))
        flow = schedule_module(analyzed)
        rows += table_row(name, analyzed, flow, {"n": 1000})

    jac = jacobi_analyzed()
    rows += table_row("Jacobi relaxation (Fig. 6)", jac, schedule_module(jac),
                      {"M": 64, "maxK": 100})
    gs = gauss_seidel_analyzed()
    rows += table_row("Gauss-Seidel (Fig. 7)", gs, schedule_module(gs),
                      {"M": 64, "maxK": 100})

    for name, arr, windows, full, win in rows:
        print(f"{name:<28} {arr:<6} {windows!s:<12} {full:>8} {win:>8} "
              f"{full / win:>7.1f}x")

    print()
    print("Section 4: the transformed array A' has window 3 (refs K'-1, K'-2)")
    res = hyperplane_transform(gauss_seidel_analyzed())
    comp = res.storage_comparison({"M": 64, "maxK": 100})
    print(f"  full transformed array : {comp['full']:>9} elements")
    print(f"  untransformed window   : {comp['untransformed_window']:>9}  (2 planes of (M+2)^2)")
    print(f"  transformed window     : {comp['transformed_window']:>9}  (3 x maxK x (M+2))")

    print()
    print("Runtime check: windowed execution matches full allocation")
    m, maxk = 6, 8
    rng = np.random.default_rng(1)
    args = {"InitialA": rng.random((m + 2, m + 2)), "M": m, "maxK": maxk}
    full = execute_module(gs, args)
    windowed = execute_module(
        gs, args, options=ExecutionOptions(use_windows=True, debug_windows=True)
    )
    print("  max |full - windowed| =",
          np.abs(full["newA"] - windowed["newA"]).max())


if __name__ == "__main__":
    main()
