#!/usr/bin/env python3
"""Loop fission as a flowchart-level transform: splitting a poisoned nest.

The merge pass happily fuses every loop over the same subrange into one
nest — that is what Gokhale's flowchart construction is for.  But a fused
body is priced as a unit: one equation the kernel tier cannot compile (a
module call with index-dependent arguments, say) drags every sibling in
the nest down to the per-element evaluator.

Fission is the inverse transform, applied *selectively*.  The body's
units are grouped by dependence structure (an SCC condensation restricted
to the nest), the enclosing loop is replicated once per group in
topological order, and the planner prices the split pieces independently
against the fused original.  Single assignment makes the split bit-exact;
carried cycles that interlock the body, shared-target writes, and
window-mode storage hazards reject the transform outright.

Two acts:

* **Isolation** — a nest mixing a module-call recurrence with clean
  Jacobi-style update recurrences.  Unfissioned, the call poisons the
  whole body onto the evaluator.  Fissioned, the clean updates regain
  native kernels and the call piece alone bounds the runtime.
* **Unlocking** — the pure-recurrence ``Mixed`` nest.  Fission exposes
  the three recurrences as sibling loops, the pipeline pass decouples
  them into stages, and each stage runs a native in-order kernel: the
  evaluator leaves the hot path entirely.

Equivalent CLI:  repro plan sweep.ps --set n=12000 --backend threaded \\
                     --workers 4 --strategy fission

Run:  python examples/fission_demo.py
"""

import time

import numpy as np

from repro.core.recurrences import mixed_analyzed, mixed_args
from repro.graph.build import build_dependency_graph
from repro.plan.planner import build_plan
from repro.ps.parser import parse_program
from repro.ps.semantics import analyze_program
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_module

PROGRAM = """\
Damp: module (v: int): [w: int];
define
    w = v * 3 + 1;
end Damp;

Sweep: module (X: array[1 .. n] of int; n: int):
       [T: array[0 .. n] of int; S: array[0 .. n] of int;
        M: array[0 .. n] of int; Q: array[0 .. n] of int];
type
    I = 1 .. n;
define
    T[0] = 0;
    S[0] = 0;
    M[0] = X[1];
    Q[0] = 0;
    T[I] = T[I-1] + Damp(X[I]);
    S[I] = S[I-1] + (X[I] * X[I] - 3 * X[I] + 7);
    M[I] = max(M[I-1], X[I] * X[I] - 4 * X[I]);
    Q[I] = Q[I-1] + (X[I] - 2) * (X[I] + 2);
end Sweep;
"""


def _merged(analyzed):
    graph = build_dependency_graph(analyzed)
    return merge_loops(schedule_module(analyzed, graph), graph)


def _time(analyzed, args, options, program=None, reps=2):
    best = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = execute_module(
            analyzed, args, flowchart=_MERGED_CACHE[id(analyzed)],
            options=options, program=program,
        )
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


_MERGED_CACHE = {}


def main() -> None:
    print("=" * 72)
    print("Act 1 — isolation: a module call poisons the fused nest")
    print("=" * 72)
    program = analyze_program(parse_program(PROGRAM))
    sweep = program["Sweep"]
    chart = _merged(sweep)
    _MERGED_CACHE[id(sweep)] = chart
    print(chart.pretty())

    n = 12000
    rng = np.random.default_rng(3)
    args = {"X": rng.integers(-9, 10, n), "n": n}

    unfissioned = ExecutionOptions(
        backend="threaded", workers=4, use_fission=False
    )
    auto = ExecutionOptions(backend="threaded", workers=4)

    print()
    print("-- unfissioned plan (--no-fission) --")
    plan = build_plan(sweep, chart, unfissioned, {"n": n})
    print(plan.pretty())
    for note in plan.provenance.get("slow_loops", []):
        print(f"  slow loop: {note['label']} — {note['reason']}")

    print()
    print("-- auto plan: the planner takes the split on merit --")
    plan = build_plan(sweep, chart, auto, {"n": n})
    print(plan.pretty())
    for note in plan.provenance.get("fission_loops", []):
        state = "chosen" if note["chosen"] else "rejected"
        print(f"  fission: {state} ({note['why']}); pieces {note['pieces']}")
    for note in plan.provenance.get("slow_loops", []):
        print(f"  slow loop: {note['label']} — {note['fission']}")

    t_fused, ref = _time(sweep, args, unfissioned, program)
    t_split, res = _time(sweep, args, auto, program)
    for name in ("T", "S", "M", "Q"):
        assert np.array_equal(np.asarray(ref[name]), np.asarray(res[name])), (
            f"{name}: fissioned result diverged"
        )
    print()
    print(f"unfissioned: {t_fused * 1e3:8.1f} ms   (whole body on the evaluator)")
    print(f"fissioned:   {t_split * 1e3:8.1f} ms   (call piece alone bounds the time)")
    print(f"speedup:     {t_fused / t_split:8.2f}x  — bit-exact")
    print()
    print("The call still costs what it costs — Amdahl caps this act.  The")
    print("point is the isolation: the three update recurrences now run on")
    print("native in-order kernels instead of riding the evaluator.")

    print()
    print("=" * 72)
    print("Act 2 — unlocking: pure recurrences, fission feeds the pipeline")
    print("=" * 72)
    analyzed = mixed_analyzed()
    chart = _merged(analyzed)
    _MERGED_CACHE[id(analyzed)] = chart
    print(chart.pretty())

    n = 200000
    args = mixed_args(n)
    print()
    plan = build_plan(analyzed, chart, auto, {"n": n})
    print(plan.pretty())

    t_fused, ref = _time(analyzed, args, unfissioned)
    t_split, res = _time(analyzed, args, auto)
    for name in ("T", "S", "M"):
        assert np.array_equal(np.asarray(ref[name]), np.asarray(res[name])), (
            f"{name}: fissioned result diverged"
        )
    print()
    print(f"unfissioned: {t_fused * 1e3:8.1f} ms")
    print(f"fissioned:   {t_split * 1e3:8.1f} ms")
    print(f"speedup:     {t_fused / t_split:8.1f}x  — bit-exact")


if __name__ == "__main__":
    main()
