#!/usr/bin/env python3
"""Pipeline parallelism for non-DOALL loops: the DSWP-style `pipeline`
strategy on the recurrence corpus.

A recurrence (``S[I] = S[I-1]*a + X[I]``) schedules as a sequential ``DO``
loop — no DOALL, so none of the chunk/vector machinery applies. But the
flowchart right *after* the recurrence often holds DOALL loops that consume
its output row by row. The ``pipeline`` strategy partitions such a run of
sibling loops into stages over the dependence structure:

* the cyclic loop (the recurrence itself) becomes a *sequential* stage —
  one worker, blocks strictly in order, through the in-order ``"seq"``
  compiled nest kernel;
* each acyclic consumer becomes (or joins) a *replicated* stage — several
  workers claiming blocks as the upstream frontier releases them.

Stages hand off bounded blocks: stage k runs block b once stage k-1 has
completed it, and at most a few blocks ahead of its consumer. Single
assignment makes this bit-exact — a completed upstream block covers every
downstream read of the same rows.

The corpus:

* ``scan``       — first-order linear recurrence + elementwise consumer;
* ``coupled``    — two mutually recursive sequences (one fused DO) + consumer;
* ``line_sweep`` — Gauss-Seidel-style line relaxation: each row depends on
                   the previous row, inner columns are parallel.

Equivalent CLI:  repro run scan.ps --set n=64 --set a=1 \\
                     --backend threaded --workers 4 --strategy pipeline

Run:  python examples/pipeline_recurrences.py
"""

import time

import numpy as np

from repro.core.recurrences import RECURRENCE_WORKLOADS, scan_analyzed
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.scheduler import schedule_module


def main() -> None:
    print("=" * 72)
    print("The scan schedule: a sequential DO feeding a DOALL")
    print("=" * 72)
    analyzed = scan_analyzed()
    print(schedule_module(analyzed).pretty())

    print()
    print("=" * 72)
    print("The forced pipeline plan (threaded, 4 workers)")
    print("=" * 72)
    from repro.plan.planner import build_plan

    options = ExecutionOptions(backend="threaded", workers=4, strategy="pipeline")
    plan = build_plan(
        analyzed, schedule_module(analyzed), options, {"n": 64}
    )
    print(plan.pretty())
    for note in plan.provenance.get("pipeline_groups", []):
        state = "chosen" if note["chosen"] else "rejected"
        print(f"  group @{note['index']}: {note['kinds']} — {state} ({note['why']})")

    print()
    print("=" * 72)
    print("Parity: forced pipeline vs the scalar reference evaluator")
    print("=" * 72)
    print(f"{'workload':>12} {'serial':>10} {'pipeline':>10}  bit-exact")
    for name, analyzed_fn, args_fn, out in RECURRENCE_WORKLOADS:
        analyzed = analyzed_fn()
        args = args_fn()
        t0 = time.perf_counter()
        ref = execute_module(
            analyzed, args,
            options=ExecutionOptions(backend="serial", use_kernels=False),
        )
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        res = execute_module(analyzed, args, options=options)
        t_pipe = time.perf_counter() - t0
        exact = np.array_equal(np.asarray(ref[out]), np.asarray(res[out]))
        print(
            f"{name:>12} {t_ref * 1e3:>8.1f}ms {t_pipe * 1e3:>8.1f}ms  {exact}"
        )
        assert exact, f"{name}: pipeline diverged from the reference"
    print()
    print("All recurrence workloads bit-exact under the decoupled pipeline.")


if __name__ == "__main__":
    main()
