"""The planning layer, end to end.

Compiles the paper's Figure-1 Jacobi Relaxation, prints the cost-driven
execution plan ``backend="auto"`` produces next to the pinned serial and
threaded plans, shows the collapse decision on a tall-skinny grid (and
the PR 3 inner-chunking plan behind ``use_collapse=False``), and finishes
with a predicted-vs-planned-vs-measured comparison across every backend.

Run: ``PYTHONPATH=src python examples/plan_demo.py``
"""

import numpy as np

from repro.core.paper import jacobi_analyzed
from repro.machine.report import compare_plans
from repro.plan.planner import build_plan
from repro.ps.parser import parse_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions
from repro.schedule.scheduler import schedule_module

TALL_SKINNY = """\
Scale: module (A: array[1 .. r, 1 .. c] of real; r: int; c: int):
       [B: array[1 .. r, 1 .. c] of real];
type
    I = 1 .. r; J = 1 .. c;
define
    B[I, J] = A[I, J] * 2.0 + 1.0;
end Scale;
"""


def main() -> None:
    analyzed = jacobi_analyzed()
    flow = schedule_module(analyzed)
    sizes = {"M": 32, "maxK": 8}

    print("=== Jacobi: what the planner decides per backend ===")
    for backend in ("auto", "serial", "threaded"):
        plan = build_plan(
            analyzed, flow,
            ExecutionOptions(backend=backend, workers=4), sizes,
        )
        print()
        print(plan.pretty(cycles=True))

    print()
    print("=== Tall-skinny grid (4 x 4096, 8 workers): loop collapse ===")
    scale = analyze_module(parse_module(TALL_SKINNY))
    sflow = schedule_module(scale)
    plan = build_plan(
        scale, sflow,
        ExecutionOptions(backend="threaded", workers=8),
        {"r": 4, "c": 4096},
    )
    print(plan.pretty())
    print("(the perfect DOALL nest flattens into one 16384-element space; "
          "each of the 8 flat chunks runs one fused flat kernel)")
    print()
    plan = build_plan(
        scale, sflow,
        ExecutionOptions(backend="threaded", workers=8, use_collapse=False),
        {"r": 4, "c": 4096},
    )
    print("with use_collapse=False (the PR 3 plan):")
    print(plan.pretty())
    print("(the outer DOALL iterates so the 8 workers chunk the 4096-wide "
          "inner DOALL — one dispatch wave per row instead of one total)")

    print()
    print("=== Predicted vs planned vs measured ===")
    rng = np.random.default_rng(0)
    args = {"InitialA": rng.random((34, 34)), **sizes}
    cmp = compare_plans(analyzed, flow, args, workers=2, workload="jacobi")
    print(cmp.pretty("Jacobi M=32, maxK=8:"))


if __name__ == "__main__":
    main()
