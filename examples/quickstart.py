#!/usr/bin/env python3
"""Quickstart: compile the paper's Figure-1 Relaxation module.

Walks the whole pipeline on the paper's running example:
parse -> analyze -> dependency graph (Figure 3) -> MSCCs (Figure 5) ->
flowchart (Figure 6) -> annotated C -> execution.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.graph.build import build_dependency_graph
from repro.graph.dot import to_text
from repro.graph.scc import condensation_order


def main() -> None:
    print("=" * 72)
    print("PS source (paper Figure 1)")
    print("=" * 72)
    print(repro.RELAXATION_JACOBI_SOURCE)

    result = repro.compile_source(repro.RELAXATION_JACOBI_SOURCE)

    print("=" * 72)
    print("Dependency graph (paper Figure 3)")
    print("=" * 72)
    graph = build_dependency_graph(result.analyzed)
    print(to_text(graph))

    print()
    print("=" * 72)
    print("Maximally strongly connected components (paper Figure 5)")
    print("=" * 72)
    for i, comp in enumerate(condensation_order(graph.full_view()), start=1):
        print(f"  component {i}: {{{', '.join(sorted(comp))}}}")

    print()
    print("=" * 72)
    print("Flowchart (paper Figure 6)")
    print("=" * 72)
    print(result.flowchart.pretty())
    print()
    print(f"virtual dimensions / windows: {result.flowchart.windows}")

    print()
    print("=" * 72)
    print("Generated C (annotated loops, window allocation)")
    print("=" * 72)
    print(result.c_source)

    print("=" * 72)
    print("Execution")
    print("=" * 72)
    m, maxk = 6, 10
    rng = np.random.default_rng(0)
    initial = rng.random((m + 2, m + 2))
    out = result.run({"InitialA": initial, "M": m, "maxK": maxk})
    print(f"newA after {maxk} iterations (interior mean = "
          f"{out['newA'][1:-1, 1:-1].mean():.6f}):")
    with np.printoptions(precision=3, suppress=True):
        print(out["newA"])


if __name__ == "__main__":
    main()
