#!/usr/bin/env python3
"""The full section-4 story: restructuring a seemingly iterative relaxation.

The revised relaxation (paper Equation 2) takes west/north neighbours from
the *current* iteration, so the naive schedule is fully iterative
(Figure 7). The hyperplane transformation derives the time function
t = 2K + I + J, changes coordinates, and recovers the parallel Figure-6
schedule with a 3-plane memory window.

Run:  python examples/hyperplane_gauss_seidel.py
"""

import numpy as np

from repro.core.paper import gauss_seidel_analyzed
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.printer import format_module
from repro.runtime.executor import execute_module
from repro.runtime.wavefront import execute_transformed_windowed


def main() -> None:
    analyzed = gauss_seidel_analyzed()
    res = hyperplane_transform(analyzed)

    print("=" * 72)
    print("Naive schedule of the revised eq.3 (paper Figure 7)")
    print("=" * 72)
    print(res.original_flowchart.pretty())

    print()
    print("=" * 72)
    print("Dependence analysis (paper section 4)")
    print("=" * 72)
    print("self-references:", ", ".join(res.dependences.describe()))
    print("dependence inequalities:", "; ".join(res.inequalities))
    print("least-integer solution:", dict(zip("abc", res.pi)))
    print("time equation:", res.time_equation)
    print("coordinate change rows (T):", res.T)
    print("inverse (original coords):", res.Tinv)
    print("rewritten reference offsets:")
    for old, new in res.transformed_offsets():
        print(f"  delta {old}  ->  {new}")

    print()
    print("=" * 72)
    print("Mechanically transformed PS module")
    print("=" * 72)
    print(format_module(res.transformed_module))

    print()
    print("=" * 72)
    print("Re-scheduled: outer DO over time, inner DOALLs (Figure-6 shape)")
    print("=" * 72)
    print(res.transformed_flowchart.pretty())

    print()
    print("=" * 72)
    print("Numeric equivalence + windowed (3-plane) wavefront execution")
    print("=" * 72)
    m, maxk = 8, 12
    rng = np.random.default_rng(42)
    initial = rng.random((m + 2, m + 2))
    args = {"InitialA": initial, "M": m, "maxK": maxk}
    original = execute_module(analyzed, args)["newA"]
    transformed = execute_module(res.transformed, args)["newA"]
    print("max |original - transformed| =", np.abs(original - transformed).max())

    report = execute_transformed_windowed(res, args)
    print("max |original - windowed|    =",
          np.abs(original - report.results["newA"]).max())
    full_planes = 2 * maxk + 2 * (m + 1) - 1
    print(f"window planes used: {report.window} (vs {full_planes} full planes)")
    print(f"transformed-array elements allocated: "
          f"{report.allocated_elements[res.new_array]} "
          f"(= {report.window} x maxK x (M+2) = {report.window * maxk * (m + 2)})")
    comp = res.storage_comparison({"M": m, "maxK": maxk})
    print("storage comparison:", comp)


if __name__ == "__main__":
    main()
