"""The top-level compiler pipeline.

Mirrors the paper's three compiler components — front end, scheduler, code
generator — and adds the optional passes this repo reproduces: loop merging
(the paper's future-work item), the hyperplane transformation (section 4),
and window allocation (section 3.4).

    result = compile_source(RELAXATION_JACOBI_SOURCE)
    result.flowchart.pretty()   # Figure 6
    result.c_source             # annotated C
    result.run({...})           # execute via the interpreter
"""

from __future__ import annotations

import warnings
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.codegen.cgen import generate_c
from repro.codegen.pygen import compile_python, generate_python
from repro.errors import CodegenError
from repro.graph.build import build_dependency_graph
from repro.graph.depgraph import DependencyGraph
from repro.hyperplane.pipeline import HyperplaneResult, hyperplane_transform
from repro.plan.calibration import PlanCalibration
from repro.plan.ir import ExecutionPlan
from repro.plan.planner import build_plan
from repro.ps.ast import Module
from repro.ps.parser import parse_module
from repro.ps.semantics import AnalyzedModule, AnalyzedProgram, analyze_module
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.kernels import KernelCache
from repro.schedule.flowchart import Flowchart
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_module


@dataclass
class CompilerOptions:
    merge_loops: bool = False  # apply the loop-merging improvement pass
    hyperplane: bool = False  # restructure recursive components (section 4)
    use_windows: bool = True  # window allocation in generated code
    emit_c: bool = True
    emit_python: bool = True


@dataclass
class CompileResult:
    module: Module
    analyzed: AnalyzedModule
    graph: DependencyGraph
    flowchart: Flowchart
    options: CompilerOptions
    c_source: str | None = None
    python_source: str | None = None
    hyperplane_result: HyperplaneResult | None = None
    warnings: list[str] = field(default_factory=list)
    #: compiled-kernel cache shared by every ``run()`` of this result —
    #: each equation is exec-compiled at most once per variant, no matter
    #: how many times (or on how many backends) the module executes
    _kernel_cache: KernelCache | None = field(
        default=None, repr=False, compare=False
    )
    #: execution plans cached per (options, scalar bindings) — the planner
    #: runs once per distinct configuration, not once per run()
    _plan_cache: dict = field(default_factory=dict, repr=False, compare=False)
    #: measured-wall-clock feedback for the planner (see
    #: :mod:`repro.plan.calibration`); :meth:`calibrate` fills it and the
    #: plan cache keys on its version, so new measurements replan. Loaded
    #: from (and re-saved to) the on-disk machine-fingerprinted store, so
    #: every compilation — in any process, including the serve daemon —
    #: starts from everything this machine has ever measured.
    _calibration: PlanCalibration = field(
        default_factory=PlanCalibration.load, repr=False, compare=False
    )

    @property
    def kernel_cache(self) -> KernelCache:
        if self._kernel_cache is None:
            self._kernel_cache = KernelCache(self.analyzed, self.flowchart)
        return self._kernel_cache

    @staticmethod
    def _merge_execution(
        execution: ExecutionOptions | None,
        backend: str | None,
        workers: int | None,
    ) -> ExecutionOptions:
        """Deprecated: the scattered ``backend=``/``workers=`` kwarg merge.
        :meth:`ExecutionOptions.resolve` is the one options-resolution path
        now (shared with the CLI and the serve daemon); this shim remains
        so old callers keep working, with a warning."""
        warnings.warn(
            "CompileResult._merge_execution is deprecated; use "
            "ExecutionOptions.resolve(execution, backend=..., workers=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        return ExecutionOptions.resolve(
            execution, backend=backend, workers=workers
        )

    @staticmethod
    def _resolve_execution(
        execution: ExecutionOptions | None,
        backend: str | None,
        workers: int | None,
        caller: str,
    ) -> ExecutionOptions:
        """Resolve options through the shared path, warning once per call
        site when the deprecated scattered kwargs are used."""
        if backend is not None or workers is not None:
            warnings.warn(
                f"CompileResult.{caller}(backend=..., workers=...) is "
                f"deprecated; pass execution="
                f"ExecutionOptions.resolve(backend=..., workers=...) "
                f"instead — one documented options-resolution path for "
                f"library, CLI, and daemon",
                DeprecationWarning,
                stacklevel=3,
            )
        return ExecutionOptions.resolve(
            execution, backend=backend, workers=workers
        )

    def plan(
        self,
        args: dict[str, Any] | None = None,
        execution: ExecutionOptions | None = None,
        backend: str | None = None,
        workers: int | None = None,
    ) -> ExecutionPlan:
        """The execution plan for this compilation under the given options
        and (integer) arguments, cached across ``run()`` calls.

        ``backend="auto"`` (the default) asks the cost-driven planner to
        choose; an explicit backend pins the plan to it.
        """
        execution = self._resolve_execution(execution, backend, workers, "plan")
        scalars = {
            k: int(v)
            for k, v in (args or {}).items()
            if isinstance(v, (int, np.integer))
        }
        key = (
            execution.backend, execution.workers, execution.vectorize,
            execution.use_windows, execution.use_kernels,
            execution.debug_windows, execution.use_collapse,
            getattr(execution, "use_fission", True),
            getattr(execution, "kernel_tier", "native"),
            getattr(execution, "strategy", None),
            getattr(execution, "allow_reassoc", False),
            tuple(sorted(scalars.items())),
        )
        # Calibration only influences the auto decision, so pinned-backend
        # entries stay valid across calibrations; an auto entry is replaced
        # (not stranded) when new measurements arrive.
        version = (
            self._calibration.version if execution.backend == "auto" else None
        )
        cached = self._plan_cache.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        plan = build_plan(
            self.analyzed, self.flowchart, execution, scalars,
            calibration=self._calibration,
        )
        self._plan_cache[key] = (version, plan)
        return plan

    def calibrate(
        self,
        args: dict[str, Any],
        execution: ExecutionOptions | None = None,
        workers: int | None = None,
        repeats: int = 3,
    ):
        """Measure every candidate backend on ``args`` and feed the wall
        clock back into this compilation's plan calibration — the next
        ``backend="auto"`` :meth:`plan` for these sizes ranks candidates by
        the stopwatch instead of predicted cycles alone. Returns the
        :class:`~repro.machine.report.PlanComparison`."""
        from repro.machine.report import compare_plans

        return compare_plans(
            self.analyzed,
            self.flowchart,
            args,
            workers=workers,
            execution=execution,
            repeats=repeats,
            calibration=self._calibration,
        )

    def run(
        self,
        args: dict[str, Any],
        execution: ExecutionOptions | None = None,
        backend: str | None = None,
        workers: int | None = None,
        plan: ExecutionPlan | None = None,
    ) -> dict[str, Any]:
        """Execute the (possibly transformed) module on the interpreter.

        ``backend`` / ``workers`` select the DOALL execution backend
        (overriding ``execution`` when given) — e.g.
        ``result.run(args, backend="threaded", workers=4)``. The execution
        follows the cached cost-driven :meth:`plan` unless a prebuilt
        ``plan`` is supplied.
        """
        execution = self._resolve_execution(execution, backend, workers, "run")
        if plan is None:
            plan = self.plan(args, execution=execution)
        return execute_module(
            self.analyzed,
            args,
            flowchart=self.flowchart,
            options=execution,
            kernel_cache=self.kernel_cache,
            plan=plan,
        )

    def compile_python(self) -> Callable:
        """Exec the generated Python and return the callable."""
        return compile_python(
            self.analyzed, self.flowchart, use_windows=self.options.use_windows
        )


def compile_module(
    module: Module,
    options: CompilerOptions | None = None,
    program: AnalyzedProgram | None = None,
) -> CompileResult:
    """Run the full pipeline on a parsed module."""
    options = options or CompilerOptions()
    analyzed = analyze_module(module, program)
    hyper: HyperplaneResult | None = None

    if options.hyperplane:
        hyper = hyperplane_transform(analyzed, program=program)
        analyzed = hyper.transformed
        module = hyper.transformed_module

    graph = build_dependency_graph(analyzed)
    flowchart = schedule_module(analyzed, graph)
    if options.merge_loops:
        flowchart = merge_loops(flowchart, graph)

    c_source = None
    python_source = None
    warnings = list(analyzed.warnings)
    if options.emit_c:
        try:
            c_source = generate_c(analyzed, flowchart, use_windows=options.use_windows)
        except CodegenError as exc:
            warnings.append(f"C generation skipped: {exc}")
    if options.emit_python:
        try:
            python_source = generate_python(
                analyzed, flowchart, use_windows=options.use_windows
            )
        except CodegenError as exc:
            warnings.append(f"Python generation skipped: {exc}")

    return CompileResult(
        module=module,
        analyzed=analyzed,
        graph=graph,
        flowchart=flowchart,
        options=options,
        c_source=c_source,
        python_source=python_source,
        hyperplane_result=hyper,
        warnings=warnings,
    )


def compile_source(
    source: str,
    options: CompilerOptions | None = None,
    program: AnalyzedProgram | None = None,
) -> CompileResult:
    """Parse and compile a single-module PS source text."""
    return compile_module(parse_module(source), options, program)
