"""Canonical paper artifacts: the Figure-1 Relaxation module.

Two variants, matching the paper's two relaxation equations:

* **Jacobi** (Equation 1 / Figure 1): every interior element is computed from
  the *previous* iteration, ``A[K-1, ...]`` only. Its schedule is Figure 6:
  an outer iterative DO over ``K`` with inner parallel DOALLs.
* **Gauss-Seidel** (Equation 2 / section 4): west and north neighbours come
  from the *current* iteration (``A[K,I,J-1]``, ``A[K,I-1,J]``). Its naive
  schedule is Figure 7 (fully iterative); the hyperplane transformation of
  section 4 recovers the Figure-6 shape.
"""

from __future__ import annotations

from repro.ps.ast import Module
from repro.ps.parser import parse_module
from repro.ps.semantics import AnalyzedModule, analyze_module

RELAXATION_JACOBI_SOURCE = """\
(* Figure 1 of Gokhale 1987: simplified standard relaxation (Equation 1). *)
Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
            [newA: array[I,J] of real];
type
    I, J = 0 .. M+1;
    K = 2 .. maxK;
var
    A: array [1 .. maxK] of array[I,J] of real;
    (* A denotes the succession of grids *)
define
    (* eq.1 *) A[1] = InitialA;          (* the first grid is input *)
    (* eq.2 *) newA = A[maxK];           (* the grid returned is from
                                            the last iteration *)
    (* eq.3 *) A[K,I,J] = if (I = 0)
                  or (J = 0)
                  or (I = M+1)
                  or (J = M+1)
               then A[K-1,I,J]           (* carry over boundary points *)
               else ( A[K-1,I,J-1]
                    + A[K-1,I-1,J]
                    + A[K-1,I,J+1]
                    + A[K-1,I+1,J] ) / 4;
end Relaxation;
"""

RELAXATION_GAUSS_SEIDEL_SOURCE = """\
(* Section 4 of Gokhale 1987: the more standard relaxation (Equation 2). *)
Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
            [newA: array[I,J] of real];
type
    I, J = 0 .. M+1;
    K = 2 .. maxK;
var
    A: array [1 .. maxK] of array[I,J] of real;
define
    (* eq.1 *) A[1] = InitialA;
    (* eq.2 *) newA = A[maxK];
    (* eq.3 *) A[K,I,J] = if (I = 0)
                  or (J = 0)
                  or (I = M+1)
                  or (J = M+1)
               then A[K-1,I,J]           (* carry over boundary points *)
               else ( A[K,I,J-1]
                    + A[K,I-1,J]
                    + A[K-1,I,J+1]
                    + A[K-1,I+1,J] ) / 4;
end Relaxation;
"""


def jacobi_module() -> Module:
    """Parse tree of the Figure-1 (Equation 1) Relaxation module."""
    return parse_module(RELAXATION_JACOBI_SOURCE)


def gauss_seidel_module() -> Module:
    """Parse tree of the section-4 (Equation 2) Relaxation module."""
    return parse_module(RELAXATION_GAUSS_SEIDEL_SOURCE)


def jacobi_analyzed() -> AnalyzedModule:
    return analyze_module(jacobi_module())


def gauss_seidel_analyzed() -> AnalyzedModule:
    return analyze_module(gauss_seidel_module())
