"""Seeded random PS program generator for the fission property suites.

Every generated module is one fusable family of equations over ``I = 1
.. n``: each *unit* writes its own rank-1 ``int`` array ``Vj`` (base case
``Vj[0]`` plus a loop equation), and units may read earlier units'
values at offset ``[I]`` (same iteration) or ``[I-1]`` (previous
iteration) — exactly the dependence shapes ``merge_loops`` fuses into a
single ``DO`` nest and :mod:`repro.schedule.fission` then partitions
back apart. The drawn unit kinds:

* ``map`` — a pointwise combination of inputs and earlier targets; on
  its own a DOALL candidate, so fission can *promote* its group.
* ``scan+`` / ``scanmax`` — an associative self-recurrence; a split
  leaves it alone in its replica, the shape the scan engine wants.
* ``linrec`` — ``Vj[I] = C[I] * Vj[I-1] + term`` with loop-varying
  coefficients.
* ``coupled`` — a mutually recursive *pair* of units (each reads the
  other across the carry), forcing a two-member dependence group: the
  condensation must keep them together or the split is wrong.

All arithmetic is integer with small magnitudes (``|X| <= 5``,
``C[I]`` in ``{-1, 0, 1}``, constants ``<= 5``) so values stay far from
the int64 range and every backend — evaluator, NumPy kernels, native C
— agrees bit for bit. Generation is deterministic in ``seed``
(``random.Random``), so Hypothesis shrinking and failure reproduction
work on the seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.ps.parser import parse_module
from repro.ps.semantics import AnalyzedModule, analyze_module

#: unit shapes the generator draws from (``coupled`` consumes two slots)
UNIT_KINDS = ("map", "scan+", "scanmax", "linrec", "coupled")


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated module: PS source plus the metadata the suites need."""

    seed: int
    source: str
    #: unit kind per loop equation, textual order (``coupled-b`` closes
    #: the cycle its ``coupled`` predecessor opened)
    kinds: tuple[str, ...]
    #: loop-target array per equation, textual order
    targets: tuple[str, ...]
    #: result arrays of the module — equivalence checks compare these
    outputs: tuple[str, ...]

    def analyzed(self) -> AnalyzedModule:
        return analyze_module(parse_module(self.source))


def generate_program(
    seed: int,
    min_units: int = 2,
    max_units: int = 6,
    allow_locals: bool = True,
) -> GeneratedProgram:
    """A random module drawn deterministically from ``seed``.

    ``allow_locals`` lets intermediate targets be ``var`` locals instead
    of results — locals are window-allocation candidates, so the same
    program can be fissionable in full-storage mode and hazard-rejected
    in window mode (both sides of ``FissionSplit.usable``)."""
    rng = random.Random(seed)
    n_units = rng.randint(min_units, max_units)
    kinds: list[str] = []
    while len(kinds) < n_units:
        kind = rng.choice(UNIT_KINDS)
        if kind == "coupled":
            if len(kinds) + 2 > n_units:
                continue
            kinds.extend(("coupled", "coupled-b"))
        else:
            kinds.append(kind)

    def term(j: int) -> str:
        """An int term legal in unit ``j``'s rhs: an input element, a
        small constant, or an earlier target at offset 0 or -1."""
        choices = ["X[I]", str(rng.randint(1, 5))]
        if j > 0:
            choices.append(f"V{rng.randrange(j)}[{rng.choice(('I', 'I-1'))}]")
            choices.append(f"V{rng.randrange(j)}[I]")
        return rng.choice(choices)

    targets = tuple(f"V{j}" for j in range(n_units))
    bases: list[str] = []
    eqs: list[str] = []
    for j, kind in enumerate(kinds):
        t = targets[j]
        bases.append(f"    {t}[0] = {rng.randint(-3, 3)};")
        if kind == "map":
            a, b = term(j), term(j)
            rhs = rng.choice([f"{a} + {b}", f"{a} - {b}", f"max({a}, {b})"])
        elif kind == "scan+":
            rhs = f"{t}[I-1] + {term(j)}"
        elif kind == "scanmax":
            rhs = f"max({t}[I-1], {term(j)})"
        elif kind == "linrec":
            rhs = f"C[I] * {t}[I-1] + {term(j)}"
        elif kind == "coupled":
            # Reads its partner across the carry; the partner reads back
            # at offset 0 — together an irreducible two-member cycle.
            rhs = f"{t}[I-1] + V{j + 1}[I-1]"
        else:  # coupled-b
            rhs = f"{t}[I-1] + V{j - 1}[I]"
        eqs.append(f"    {t}[I] = {rhs};")

    local = [
        allow_locals and j < n_units - 1 and rng.random() < 0.35
        for j in range(n_units)
    ]
    outputs = tuple(t for t, loc in zip(targets, local) if not loc)
    out_decls = ";\n       ".join(
        f"{t}: array[0 .. n] of int" for t in outputs
    )
    var_block = ""
    locals_ = [t for t, loc in zip(targets, local) if loc]
    if locals_:
        var_block = "var\n" + "".join(
            f"    {t}: array [0 .. n] of int;\n" for t in locals_
        )
    source = (
        f"GenProg: module (X: array[1 .. n] of int;"
        f" C: array[1 .. n] of int; n: int):\n"
        f"      [{out_decls}];\n"
        f"type\n"
        f"    I = 1 .. n;\n"
        f"{var_block}"
        f"define\n" + "\n".join(bases) + "\n" + "\n".join(eqs) + "\n"
        f"end GenProg;\n"
    )
    return GeneratedProgram(
        seed=seed,
        source=source,
        kinds=tuple(kinds),
        targets=targets,
        outputs=outputs,
    )


def program_args(prog: GeneratedProgram, n: int, seed: int = 0) -> dict:
    """Input arrays for one generated program, deterministic in ``seed``.
    Magnitudes are kept small so chained units stay far from overflow."""
    rng = np.random.default_rng(seed)
    return {
        "X": rng.integers(-5, 6, n),
        "C": rng.integers(-1, 2, n),
        "n": n,
    }
