"""Top-level compilation pipeline and canonical paper artifacts."""

from repro.core.paper import (
    RELAXATION_GAUSS_SEIDEL_SOURCE,
    RELAXATION_JACOBI_SOURCE,
    gauss_seidel_analyzed,
    gauss_seidel_module,
    jacobi_analyzed,
    jacobi_module,
)

__all__ = [
    "RELAXATION_GAUSS_SEIDEL_SOURCE",
    "RELAXATION_JACOBI_SOURCE",
    "gauss_seidel_analyzed",
    "gauss_seidel_module",
    "jacobi_analyzed",
    "jacobi_module",
]
