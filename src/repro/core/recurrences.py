"""A small recurrence-workload corpus: the loops the paper's DOALL focus
leaves serial.

Each module here schedules into a run of sibling loops over the same
iteration space in which at least one loop is a genuine recurrence (a
``DO`` the hyperplane rewrite cannot remove) feeding downstream ``DOALL``
consumers — exactly the shape :mod:`repro.schedule.pipeline_stages`
partitions into a sequential stage plus replicated stages. The parity
suites run them against every backend, and ``benchmarks/bench_pipeline.py``
uses the coupled recurrence as its gate workload.

* :func:`scan_analyzed` — a first-order linear scan feeding a pointwise
  consumer: ``seq + par``.
* :func:`coupled_analyzed` — two mutually recursive sequences (one SCC,
  so the scheduler fuses them into a single ``DO`` body) feeding a
  consumer: ``seq + par``.
* :func:`line_sweep_analyzed` — a Gauss–Seidel-style line sweep (each row
  relaxed from the previous row, rows sequential, columns DOALL) feeding
  two chained diagnostics whose dependence is identity — they coalesce
  into one replicated stage: ``seq + par(2 loops)``.

Three standalone recurrences exercise the parallel ``scan`` strategy
(:mod:`repro.schedule.scan_detect`) — no consumer siblings, so the loop
meets the planner alone rather than as a pipeline stage:

* :func:`isum_analyzed` — an integer sum reduction (bit-exact under
  two's-complement wraparound).
* :func:`runmax_analyzed` — a running maximum over reals (max is exactly
  associative, so blocked execution is bit-exact without reassociation).
* :func:`ilinrec_analyzed` — an integer first-order linear recurrence
  with *loop-varying* coefficients ``S[I] = A[I]*S[I-1] + B[I]`` —
  ``benchmarks/bench_scan.py`` uses it as the gate workload.
"""

from __future__ import annotations

import numpy as np

from repro.ps.parser import parse_module
from repro.ps.semantics import AnalyzedModule, analyze_module

SCAN_SOURCE = """\
(* First-order linear recurrence (scan) + pointwise consumer. *)
Scan: module (X: array[1 .. n] of real; a: real; n: int):
      [Y: array[1 .. n] of real];
type
    I = 1 .. n;
var
    S: array [0 .. n] of real;
define
    S[0] = 0.0;
    S[I] = S[I-1] * a + X[I];
    Y[I] = S[I] * S[I] + X[I];
end Scan;
"""

COUPLED_SOURCE = """\
(* Two mutually recursive sequences — one SCC, one DO loop — feeding a
   pointwise consumer. *)
Coupled: module (X: array[1 .. n] of real;
                 c1: real; c2: real; c3: real; c4: real; n: int):
         [R: array[1 .. n] of real];
type
    I = 1 .. n;
var
    P: array [0 .. n] of real;
    Q: array [0 .. n] of real;
define
    P[0] = 0.0;
    Q[0] = 1.0;
    P[I] = P[I-1] * c1 + Q[I-1] * c2 + X[I];
    Q[I] = Q[I-1] * c3 + P[I] * c4;
    R[I] = P[I] * Q[I] + X[I];
end Coupled;
"""

LINE_SWEEP_SOURCE = """\
(* Line sweep: each row relaxed from the previous row's neighbourhood
   (rows sequential, columns DOALL), then two chained per-row
   diagnostics. *)
LineSweep: module (G: array[0 .. n, 0 .. m+1] of real; n: int; m: int):
           [Mout: array[1 .. n, 0 .. m+1] of real];
type
    I = 1 .. n;
    J = 0 .. m+1;
var
    L: array [0 .. n, 0 .. m+1] of real;
    D: array [1 .. n, 0 .. m+1] of real;
define
    L[0,J] = G[0,J];
    L[I,J] = if (J = 0) or (J = m+1) then G[I,J]
             else (L[I-1,J-1] + L[I-1,J] + L[I-1,J+1]) / 3.0 + G[I,J];
    D[I,J] = L[I,J] - G[I,J];
    Mout[I,J] = D[I,J] * D[I,J];
end LineSweep;
"""


ISUM_SOURCE = """\
(* Integer sum reduction: the running-total form of sum(X). *)
ISum: module (X: array[1 .. n] of int; n: int):
      [T: array[0 .. n] of int];
type
    I = 1 .. n;
define
    T[0] = 0;
    T[I] = T[I-1] + X[I];
end ISum;
"""

RUNMAX_SOURCE = """\
(* Running maximum over reals — max is exactly associative, so the
   blocked scan is bit-exact. *)
RunMax: module (X: array[1 .. n] of real; n: int):
        [M: array[0 .. n] of real];
type
    I = 1 .. n;
define
    M[0] = X[1];
    M[I] = max(M[I-1], X[I]);
end RunMax;
"""

ILINREC_SOURCE = """\
(* Integer first-order linear recurrence with loop-varying
   coefficients. *)
ILinRec: module (A: array[1 .. n] of int; B: array[1 .. n] of int;
                 n: int):
         [S: array[0 .. n] of int];
type
    I = 1 .. n;
define
    S[0] = 0;
    S[I] = A[I] * S[I-1] + B[I];
end ILinRec;
"""

MIXED_SOURCE = """\
(* Three independent integer recurrences over one subrange. The
   loop-merging pass fuses them into a single DO nest, which is the
   fission gate workload: the split recovers one replica loop per
   recurrence, and the replicas decouple as pipeline stages or blocked
   scans. *)
Mixed: module (X: array[1 .. n] of int; A: array[1 .. n] of int;
               B: array[1 .. n] of int; n: int):
       [T: array[0 .. n] of int; S: array[0 .. n] of int;
        M: array[0 .. n] of int];
type
    I = 1 .. n;
define
    T[0] = 0;
    S[0] = 0;
    M[0] = X[1];
    T[I] = T[I-1] + X[I];
    S[I] = A[I] * S[I-1] + B[I];
    M[I] = max(M[I-1], X[I]);
end Mixed;
"""


def scan_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(SCAN_SOURCE))


def coupled_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(COUPLED_SOURCE))


def line_sweep_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(LINE_SWEEP_SOURCE))


def isum_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(ISUM_SOURCE))


def runmax_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(RUNMAX_SOURCE))


def ilinrec_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(ILINREC_SOURCE))


def mixed_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(MIXED_SOURCE))


def scan_args(n: int = 64, seed: int = 11) -> dict:
    rng = np.random.default_rng(seed)
    return {"X": rng.random(n), "a": 0.97, "n": n}


def coupled_args(n: int = 64, seed: int = 12) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "X": rng.random(n),
        "c1": 0.45, "c2": 0.25, "c3": 0.35, "c4": 0.15,
        "n": n,
    }


def line_sweep_args(n: int = 12, m: int = 8, seed: int = 13) -> dict:
    rng = np.random.default_rng(seed)
    return {"G": rng.random((n + 1, m + 2)), "n": n, "m": m}


def isum_args(n: int = 64, seed: int = 14) -> dict:
    rng = np.random.default_rng(seed)
    return {"X": rng.integers(-1000, 1000, n), "n": n}


def runmax_args(n: int = 64, seed: int = 15) -> dict:
    rng = np.random.default_rng(seed)
    return {"X": rng.random(n), "n": n}


def mixed_args(n: int = 64, seed: int = 17) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "X": rng.integers(-9, 10, n),
        "A": rng.integers(-1, 2, n),
        "B": rng.integers(-9, 10, n),
        "n": n,
    }


def ilinrec_args(n: int = 64, seed: int = 16) -> dict:
    # a in {0, 1} keeps the products bounded (any int coefficient would be
    # *correct* under two's-complement wraparound, but bounded values make
    # golden outputs humanly checkable); b is loop-varying.
    rng = np.random.default_rng(seed)
    return {
        "A": rng.integers(0, 2, n),
        "B": rng.integers(-1000, 1000, n),
        "n": n,
    }


#: (name, analyzed-builder, args-builder, result key) — the parity tests
#: and examples iterate this
RECURRENCE_WORKLOADS = (
    ("scan", scan_analyzed, scan_args, "Y"),
    ("coupled", coupled_analyzed, coupled_args, "R"),
    ("line_sweep", line_sweep_analyzed, line_sweep_args, "Mout"),
    ("isum", isum_analyzed, isum_args, "T"),
    ("runmax", runmax_analyzed, runmax_args, "M"),
    ("ilinrec", ilinrec_analyzed, ilinrec_args, "S"),
    ("mixed", mixed_analyzed, mixed_args, "S"),
)
