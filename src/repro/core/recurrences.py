"""A small recurrence-workload corpus: the loops the paper's DOALL focus
leaves serial.

Each module here schedules into a run of sibling loops over the same
iteration space in which at least one loop is a genuine recurrence (a
``DO`` the hyperplane rewrite cannot remove) feeding downstream ``DOALL``
consumers — exactly the shape :mod:`repro.schedule.pipeline_stages`
partitions into a sequential stage plus replicated stages. The parity
suites run them against every backend, and ``benchmarks/bench_pipeline.py``
uses the coupled recurrence as its gate workload.

* :func:`scan_analyzed` — a first-order linear scan feeding a pointwise
  consumer: ``seq + par``.
* :func:`coupled_analyzed` — two mutually recursive sequences (one SCC,
  so the scheduler fuses them into a single ``DO`` body) feeding a
  consumer: ``seq + par``.
* :func:`line_sweep_analyzed` — a Gauss–Seidel-style line sweep (each row
  relaxed from the previous row, rows sequential, columns DOALL) feeding
  two chained diagnostics whose dependence is identity — they coalesce
  into one replicated stage: ``seq + par(2 loops)``.
"""

from __future__ import annotations

import numpy as np

from repro.ps.parser import parse_module
from repro.ps.semantics import AnalyzedModule, analyze_module

SCAN_SOURCE = """\
(* First-order linear recurrence (scan) + pointwise consumer. *)
Scan: module (X: array[1 .. n] of real; a: real; n: int):
      [Y: array[1 .. n] of real];
type
    I = 1 .. n;
var
    S: array [0 .. n] of real;
define
    S[0] = 0.0;
    S[I] = S[I-1] * a + X[I];
    Y[I] = S[I] * S[I] + X[I];
end Scan;
"""

COUPLED_SOURCE = """\
(* Two mutually recursive sequences — one SCC, one DO loop — feeding a
   pointwise consumer. *)
Coupled: module (X: array[1 .. n] of real;
                 c1: real; c2: real; c3: real; c4: real; n: int):
         [R: array[1 .. n] of real];
type
    I = 1 .. n;
var
    P: array [0 .. n] of real;
    Q: array [0 .. n] of real;
define
    P[0] = 0.0;
    Q[0] = 1.0;
    P[I] = P[I-1] * c1 + Q[I-1] * c2 + X[I];
    Q[I] = Q[I-1] * c3 + P[I] * c4;
    R[I] = P[I] * Q[I] + X[I];
end Coupled;
"""

LINE_SWEEP_SOURCE = """\
(* Line sweep: each row relaxed from the previous row's neighbourhood
   (rows sequential, columns DOALL), then two chained per-row
   diagnostics. *)
LineSweep: module (G: array[0 .. n, 0 .. m+1] of real; n: int; m: int):
           [Mout: array[1 .. n, 0 .. m+1] of real];
type
    I = 1 .. n;
    J = 0 .. m+1;
var
    L: array [0 .. n, 0 .. m+1] of real;
    D: array [1 .. n, 0 .. m+1] of real;
define
    L[0,J] = G[0,J];
    L[I,J] = if (J = 0) or (J = m+1) then G[I,J]
             else (L[I-1,J-1] + L[I-1,J] + L[I-1,J+1]) / 3.0 + G[I,J];
    D[I,J] = L[I,J] - G[I,J];
    Mout[I,J] = D[I,J] * D[I,J];
end LineSweep;
"""


def scan_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(SCAN_SOURCE))


def coupled_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(COUPLED_SOURCE))


def line_sweep_analyzed() -> AnalyzedModule:
    return analyze_module(parse_module(LINE_SWEEP_SOURCE))


def scan_args(n: int = 64, seed: int = 11) -> dict:
    rng = np.random.default_rng(seed)
    return {"X": rng.random(n), "a": 0.97, "n": n}


def coupled_args(n: int = 64, seed: int = 12) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "X": rng.random(n),
        "c1": 0.45, "c2": 0.25, "c3": 0.35, "c4": 0.15,
        "n": n,
    }


def line_sweep_args(n: int = 12, m: int = 8, seed: int = 13) -> dict:
    rng = np.random.default_rng(seed)
    return {"G": rng.random((n + 1, m + 2)), "n": n, "m": m}


#: (name, analyzed-builder, args-builder, result key) — the parity tests
#: and examples iterate this
RECURRENCE_WORKLOADS = (
    ("scan", scan_analyzed, scan_args, "Y"),
    ("coupled", coupled_analyzed, coupled_args, "R"),
    ("line_sweep", line_sweep_analyzed, line_sweep_args, "Mout"),
)
