"""The paper's scheduling phase (section 3): flowchart IR, the
Schedule-Graph / Schedule-Component algorithm, virtual-dimension (memory
window) analysis, and the loop-merging improvement pass."""

from repro.schedule.flowchart import Descriptor, Flowchart, LoopDescriptor, NodeDescriptor
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_graph_view, schedule_module
from repro.schedule.virtual import VirtualDim, virtual_dimension_report

__all__ = [
    "Descriptor",
    "Flowchart",
    "LoopDescriptor",
    "NodeDescriptor",
    "VirtualDim",
    "merge_loops",
    "schedule_graph_view",
    "schedule_module",
    "virtual_dimension_report",
]
