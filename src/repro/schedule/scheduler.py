"""The scheduling algorithm — paper section 3.3.

Two mutually recursive procedures:

* **Schedule-Graph** takes a dependency (sub)graph, finds its MSCCs, and
  concatenates each component's flowchart in producer-first order;
* **Schedule-Component** schedules one MSCC: it picks an unscheduled node
  dimension whose subrange sits in a consistent position across the component
  and whose subscript expressions are all ``I`` or ``I - constant``; deletes
  the ``I - constant`` edges (making the loop *iterative*, otherwise
  *parallel*); runs the virtual-dimension analysis for local arrays in the
  component; and recurses on the reduced subgraph.

The candidate order for "pick an unscheduled node dimension" is increasing
position, which is deterministic and reproduces the paper's choices: for the
Jacobi component the first dimension (K) is picked ("The other two cannot be
chosen because of subscript expressions 'J + 1' and 'I + 1'"), and for the
Gauss-Seidel variant K, then I, then J — all iterative (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InconsistentPositionError, ScheduleError
from repro.graph.build import build_dependency_graph
from repro.graph.depgraph import DependencyGraph, EdgeKind, GraphView
from repro.graph.labels import SubscriptClass
from repro.graph.scc import condensation_order
from repro.ps.semantics import AnalyzedModule
from repro.schedule.flowchart import (
    Descriptor,
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
    annotate_flowchart,
)
from repro.schedule.virtual import check_virtual


@dataclass
class _Context:
    graph: DependencyGraph
    windows: dict[str, dict[int, int]] = field(default_factory=dict)
    #: the Myers & Gokhale [14] extension: accept "I - m" subscripts with a
    #: symbolic offset m as deletable backward references. The generated DO
    #: loop is only correct when m >= 1 at run time; the scheduler records
    #: each assumption it makes.
    symbolic_offsets: bool = False
    assumptions: list[str] = field(default_factory=list)


def schedule_module(
    analyzed: AnalyzedModule,
    graph: DependencyGraph | None = None,
    symbolic_offsets: bool = False,
) -> Flowchart:
    """Schedule a whole module: build its dependency graph (unless given)
    and run Schedule-Graph on it. ``symbolic_offsets`` enables the [14]
    extension (subscripts ``I - m`` with symbolic m treated as backward
    references, assumed m >= 1)."""
    if graph is None:
        graph = build_dependency_graph(analyzed)
    ctx = _Context(graph, symbolic_offsets=symbolic_offsets)
    descriptors = _schedule_graph(graph.full_view(), frozenset(), ctx)
    flow = Flowchart(descriptors, windows=ctx.windows)
    flow.assumptions = list(ctx.assumptions)
    annotate_flowchart(flow, analyzed)
    return flow


def schedule_graph_view(graph: DependencyGraph) -> Flowchart:
    """Schedule an arbitrary dependency graph (used by tests and by the
    hyperplane pipeline on transformed components)."""
    ctx = _Context(graph)
    descriptors = _schedule_graph(graph.full_view(), frozenset(), ctx)
    return Flowchart(descriptors, windows=ctx.windows)


# ---------------------------------------------------------------------------
# Schedule-Graph
# ---------------------------------------------------------------------------


def _schedule_graph(
    view: GraphView, scheduled: frozenset[int], ctx: _Context
) -> list[Descriptor]:
    flowchart: list[Descriptor] = []
    for comp in condensation_order(view):
        comp_view = view.restrict_nodes(comp)
        flowchart.extend(_schedule_component(comp_view, scheduled, ctx))
    return flowchart


# ---------------------------------------------------------------------------
# Schedule-Component
# ---------------------------------------------------------------------------


def _schedule_component(
    view: GraphView, scheduled: frozenset[int], ctx: _Context
) -> list[Descriptor]:
    nodes = view.nodes()

    # Step 1: a single data node produces a null schedule (declarations are
    # emitted separately by the code generator).
    if len(nodes) == 1 and nodes[0].is_data:
        return []

    # Step 2: pick an unscheduled node dimension.
    max_rank = max(n.rank for n in nodes)
    candidates = [d for d in range(max_rank) if d not in scheduled]

    if not candidates:
        if len(nodes) == 1:
            # Step 2b: all dimensions scheduled, single (equation) node.
            return [NodeDescriptor(nodes[0])]
        # Step 2a: "signal error and return: the equations cannot be
        # scheduled by this algorithm."
        raise ScheduleError(
            f"no unscheduled dimensions remain for component "
            f"{{{', '.join(n.id for n in nodes)}}}"
        )

    reasons: list[str] = []
    for d in candidates:
        ok, reason = _dimension_schedulable(view, d, ctx)
        if not ok:
            reasons.append(f"dim {d}: {reason}")
            continue
        return [_schedule_dimension(view, d, scheduled, ctx)]

    if len(nodes) == 1 and nodes[0].is_equation and not view.edges():
        # A singleton equation with no recursive edges but exhausted usable
        # dims cannot occur (every dim is schedulable when there are no
        # edges) — defensive.
        return [NodeDescriptor(nodes[0])]  # pragma: no cover

    detail = "; ".join(reasons)
    if any("inconsistent position" in r for r in reasons):
        raise InconsistentPositionError(
            f"cannot schedule component {{{', '.join(n.id for n in nodes)}}}: {detail}"
        )
    raise ScheduleError(
        f"cannot schedule component {{{', '.join(n.id for n in nodes)}}}: {detail}"
    )


def _deletable(info, ctx: _Context) -> bool:
    """Is this subscript a backward reference whose edge step 4 deletes?"""
    if info.cls is SubscriptClass.OFFSET:
        return True
    return ctx.symbolic_offsets and info.symbolic_offset is not None


def _acceptable(info, ctx: _Context) -> bool:
    """Step-3 admissibility of a subscript in the scheduled dimension."""
    if info.cls in (SubscriptClass.IDENTITY, SubscriptClass.OFFSET):
        return True
    return ctx.symbolic_offsets and info.symbolic_offset is not None


def _dimension_schedulable(view: GraphView, d: int, ctx: _Context) -> tuple[bool, str]:
    """Step 3 verification for dimension position ``d``."""
    nodes = view.nodes()

    # The subrange must exist at position d in each node of the component.
    for n in nodes:
        if n.rank <= d:
            return False, f"node {n.id} has no dimension {d}"

    # All equations must agree on the loop subrange at position d.
    eq_nodes = [n for n in nodes if n.is_equation]
    if not eq_nodes:
        return False, "component has no equation node"
    first = eq_nodes[0].equation.dims[d].subrange  # type: ignore[union-attr]
    for n in eq_nodes[1:]:
        sub = n.equation.dims[d].subrange  # type: ignore[union-attr]
        if not first.bounds_equal(sub):
            return False, (
                f"equations disagree on the subrange of dimension {d} "
                f"({first.name} vs {sub.name})"
            )

    # Edge-label verification: only "I" / "I - constant" at position d, and
    # the scheduled index variable may not appear at any other position (the
    # footnote's A[I,J] = A[I,J-1] + A[J,I] inconsistency).
    for edge in view.edges():
        if edge.kind is not EdgeKind.DATA:
            continue
        eq_owner = view.graph.nodes[edge.src if edge.is_lhs else edge.dst]
        assert eq_owner.is_equation
        dim_index = eq_owner.equation.dims[d].index  # type: ignore[union-attr]
        for info in edge.subscripts:
            if info.array_pos == d:
                if not _acceptable(info, ctx):
                    return False, (
                        f"subscript {info.describe()!r} at position {d} on "
                        f"{edge.src} -> {edge.dst} is not 'I' or 'I - constant'"
                    )
                if info.eq_dim != d:
                    return False, (
                        f"inconsistent position: index {info.index!r} of "
                        f"dimension {info.eq_dim} appears at position {d} "
                        f"on {edge.src} -> {edge.dst}"
                    )
            elif dim_index in info.indices:
                return False, (
                    f"inconsistent position: dimension-{d} index "
                    f"{dim_index!r} appears at position {info.array_pos} "
                    f"on {edge.src} -> {edge.dst}"
                )
    return True, ""


def _schedule_dimension(
    view: GraphView, d: int, scheduled: frozenset[int], ctx: _Context
) -> LoopDescriptor:
    """Steps 4-8 for a validated dimension position."""
    eq_node = next(n for n in view.nodes() if n.is_equation)
    dim = eq_node.equation.dims[d]  # type: ignore[union-attr]

    # Step 4: delete "I - constant" (and, with the [14] extension enabled,
    # "I - m") edges in dimension d.
    deleted: set[int] = set()
    for edge in view.edges():
        if edge.kind is not EdgeKind.DATA:
            continue
        for info in edge.subscripts:
            if info.array_pos == d and _deletable(info, ctx):
                if info.symbolic_offset is not None:
                    note = (
                        f"assumed {info.symbolic_offset} >= 1 for subscript "
                        f"{info.describe()!r} on {edge.src} -> {edge.dst}"
                    )
                    if note not in ctx.assumptions:
                        ctx.assumptions.append(note)
                deleted.add(edge.id)
                break
    iterative = bool(deleted)

    # Virtual-dimension analysis (section 3.4) — on the component as it was
    # *before* edge deletion, for each local-variable data node in it.
    windows: dict[str, tuple[int, int]] = {}
    for node in view.nodes():
        if node.is_data:
            window = check_virtual(ctx.graph, node.id, d, view.node_ids)
            if window is not None:
                windows[node.id] = (d, window)
                ctx.windows.setdefault(node.id, {})[d] = window

    # Steps 5-8: mark scheduled, create the descriptor, recurse, concatenate.
    body = _schedule_graph(view.without_edges(deleted), scheduled | {d}, ctx)
    return LoopDescriptor(
        subrange=dim.subrange,
        index=dim.index,
        parallel=not iterative,
        body=body,
        windows=windows,
    )
