"""Loop-merging improvement pass.

The paper concedes its algorithm "performs poorly in ... combining into a
single loop those equations which though not recursively related,
nevertheless depend on the same subscript(s)" and lists "improvement of the
scheduler to better merge iterative loops" as future work, citing Lu [11]
for a merging (but DO-only) scheduler. This pass supplies that improvement
as a separate, ablatable transformation on the flowchart.

Two *adjacent* loops merge when they agree on keyword, index variable and
subrange bounds, and every dependence from an array defined under the first
loop into an equation under the second is elementwise in the merged
dimension:

* for a ``DOALL``-``DOALL`` merge the reference must be exactly ``I``
  (identity) at the merged position — iterations are unordered, so reading a
  neighbour would race;
* for a ``DO``-``DO`` merge ``I - c`` is also safe, because the merged loop
  still runs low-to-high, so the referenced element was produced ``c``
  iterations earlier (the same footnote-3 argument the paper uses for edge
  deletion).

Merging is applied bottom-up and repeatedly until a fixed point.
"""

from __future__ import annotations

from repro.graph.depgraph import DependencyGraph, EdgeKind
from repro.graph.labels import SubscriptClass
from repro.ps.ast import Name
from repro.schedule.flowchart import Descriptor, Flowchart, LoopDescriptor, NodeDescriptor


def merge_loops(flowchart: Flowchart, graph: DependencyGraph) -> Flowchart:
    """Return a new flowchart with adjacent compatible loops merged."""
    merged = _merge_list(flowchart.descriptors, graph)
    return Flowchart(merged, windows=dict(flowchart.windows))


def _merge_list(descs: list[Descriptor], graph: DependencyGraph) -> list[Descriptor]:
    out: list[Descriptor] = []
    for d in descs:
        if isinstance(d, LoopDescriptor):
            d = LoopDescriptor(
                d.subrange,
                d.index,
                d.parallel,
                _merge_list(d.body, graph),
                dict(d.windows),
            )
        out.append(d)

    _bubble_nodes(out, graph)
    changed = True
    while changed:
        changed = False
        for i in range(len(out) - 1):
            a, b = out[i], out[i + 1]
            if (
                isinstance(a, LoopDescriptor)
                and isinstance(b, LoopDescriptor)
                and _can_merge(a, b, graph)
            ):
                fused = LoopDescriptor(
                    a.subrange,
                    a.index,
                    a.parallel,
                    _merge_list(a.body + b.body, graph),
                    {**a.windows, **b.windows},
                )
                out[i : i + 2] = [fused]
                changed = True
                break
    return out


def _bubble_nodes(out: list[Descriptor], graph: DependencyGraph) -> None:
    """Move plain equation nodes leftwards past loops they do not depend on,
    so mergeable loops separated only by independent initialisations (e.g.
    ``Q[1] = 1.0`` between two recurrence loops) become adjacent."""
    changed = True
    while changed:
        changed = False
        for i in range(len(out) - 1):
            a, b = out[i], out[i + 1]
            if (
                isinstance(a, LoopDescriptor)
                and isinstance(b, NodeDescriptor)
                and b.node.is_equation
                and _independent_of_loop(b, a, graph)
            ):
                out[i], out[i + 1] = b, a
                changed = True
                break


def _independent_of_loop(
    node: NodeDescriptor, loop: LoopDescriptor, graph: DependencyGraph
) -> bool:
    """True when ``node`` consumes nothing produced under ``loop``."""
    produced = {
        t.name for eq_node in _equations_under(loop) for t in eq_node.equation.targets
    }
    eq = node.node.equation
    reads = {r.name for r in eq.refs} | set(eq.bound_uses)
    return not (reads & produced)


def _equations_under(desc: Descriptor) -> list:
    if isinstance(desc, NodeDescriptor):
        return [desc.node] if desc.node.is_equation else []
    out = []
    for d in desc.body:
        out.extend(_equations_under(d))
    return out


def _can_merge(a: LoopDescriptor, b: LoopDescriptor, graph: DependencyGraph) -> bool:
    if a.parallel != b.parallel:
        return False
    if a.index != b.index:
        return False
    if not a.subrange.bounds_equal(b.subrange):
        return False

    eqs_a = _equations_under(a)
    eqs_b = _equations_under(b)
    if not eqs_a or not eqs_b:
        return False

    # Arrays defined under loop a, with the position at which the merged
    # index appears in their defining target subscripts.
    defpos: dict[str, int] = {}
    for eq_node in eqs_a:
        eq = eq_node.equation
        for target in eq.targets:
            for pos, sub in enumerate(target.subscripts):
                if isinstance(sub, Name) and sub.ident == a.index:
                    if target.name in defpos and defpos[target.name] != pos:
                        return False  # ambiguous definition position
                    defpos[target.name] = pos

    labels_b = {eq_node.id for eq_node in eqs_b}
    for name, pos in defpos.items():
        for edge in graph.out_edges(name):
            if edge.kind is not EdgeKind.DATA or edge.dst not in labels_b:
                continue
            if pos >= len(edge.subscripts):
                return False
            info = edge.subscripts[pos]
            if info.cls is SubscriptClass.IDENTITY and info.index == a.index:
                pass
            elif (
                not a.parallel
                and info.cls is SubscriptClass.OFFSET
                and info.index == a.index
            ):
                pass
            else:
                return False
            # The merged index must not appear at any other position.
            for other in edge.subscripts:
                if other.array_pos != pos and a.index in other.indices:
                    return False
    return True
