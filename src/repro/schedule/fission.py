"""Loop fission: split a multi-unit loop body along its dependence
structure (Aubert et al., arXiv 2206.08760, adapted to the paper's
flowchart IR).

The scheduler never builds fissionable bodies itself — it emits one loop
per strongly connected component — but the loop-*merging* improvement pass
(:mod:`repro.schedule.merge`), hand-built flowcharts, and generated
programs all produce loops whose bodies mix independent pieces: a
recurrence sharing a ``DO`` with an unrelated reduction, a module call
riding along with pure DOALL arithmetic. One such unit poisons the whole
nest down to the scalar evaluator. Fission is the planner-priced inverse
of merging: partition the body's direct child descriptors ("units") into
minimal groups by the loop-carried/loop-independent dependence structure
(the condensation of the unit dependence graph restricted to the nest),
replicate the enclosing loop once per group in topological order, and let
the planner price each replica independently — an all-DOALL piece regains
nest/collapse/native span kernels, a lone recurrence piece regains the
blocked ``scan``, and sibling replicas over one subrange regain
``pipeline`` decoupling.

Legality is all-or-nothing per unit pair, classified at the writer's
carry position (the subscript position where the loop index appears bare
in the write):

* a read of an earlier unit's array at ``index + delta`` with
  ``delta <= 0`` is an ordinary (possibly carried) flow dependence — the
  reader's group runs after the writer's;
* a read *textually before* the write at ``delta < 0`` is a backward
  carried flow — the writer's group must complete first, which fission
  may legally express by reordering the replicas;
* a loop-independent anti dependence (the read textually precedes the
  write of the same row) pins the textual order;
* forward references (``delta > 0``), output dependences (two units
  writing one array), reads through subrange *bounds*, and any read the
  subscript classifier cannot prove put the pair in one group — merging
  is always safe, and a condensation that collapses to a single group
  rejects the split entirely.

``DO`` groups whose every intra-group carried read is identity
(``delta == 0``) are *promoted* to ``DOALL`` replicas — the parallelism
the merge buried is recovered, not invented: iterations write disjoint
rows and read only completed or external data.

Splits are structural (window-mode independent) with a per-mode hazard:
windowed (virtual-dimension) storage rotates planes as the loop advances,
so splitting the interleaving would read rotated-away rows — window mode
rejects the split for any nest touching windowed arrays.

Verdicts are memoized on the flowchart (``annotate_flowchart`` fills them
eagerly for scheduler output; merged flowcharts — which are never
re-annotated — fill them lazily on first planner contact, always in the
parent process, before any worker pool forks). Replica descriptors share
the original body's descriptor objects and are addressed by *marker
paths*: ``loop_path + (-1, k)`` names replica ``k`` of the loop at
``loop_path`` — the ``-1`` component (never a valid child index) routes
``Flowchart.descriptor_at`` through the split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ps.ast import Name, names_in
from repro.ps.types import ArrayType
from repro.schedule.flowchart import (
    Descriptor,
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
    loop_chunk_safe,
    loop_collapse_safe,
)

#: the marker component of a replica path (never a valid child index)
FISSION_MARKER = -1


@dataclass(frozen=True)
class FissionSplit:
    """A legal fission of one loop into replica loops.

    ``pieces[k]`` is the replica at marker path ``path + (-1, k)``; its
    body holds the *shared* original unit descriptors of ``groups[k]`` in
    textual order. ``promoted[k]`` records a DO group that became a DOALL
    replica. ``mode_hazard`` maps ``use_windows`` to ``None`` (usable) or
    the hazard that rejects the split in that mode."""

    path: tuple[int, ...]
    pieces: tuple[LoopDescriptor, ...]
    groups: tuple[tuple[int, ...], ...]
    promoted: tuple[bool, ...]
    mode_hazard: dict[bool, str | None] = field(compare=False)

    @property
    def parts(self) -> int:
        return len(self.pieces)

    def usable(self, use_windows: bool) -> bool:
        return self.mode_hazard[bool(use_windows)] is None

    def describe(self) -> list[str]:
        """Per-piece display strings for plan provenance."""
        return [
            f"{piece.keyword}({', '.join(_unit_labels(piece.body))})"
            for piece in self.pieces
        ]


def _unit_labels(units: list[Descriptor]) -> list[str]:
    labels: list[str] = []
    for u in units:
        if isinstance(u, NodeDescriptor):
            labels.append(u.label)
        else:
            labels.extend(eq.label for eq in u.nested_equations())
    return labels


@dataclass
class _UnitFacts:
    """Dependence facts for one body unit, aggregated over its nest."""

    #: array name -> subscript position where the loop index appears bare
    writes: dict[str, int] = field(default_factory=dict)
    #: array name -> one entry per textual read: [(index, delta)] per pos
    reads: dict[str, list[list[tuple[str | None, int | None]]]] = field(
        default_factory=dict
    )
    #: names read with unknowable positions (subrange bounds, bound edges)
    bound_reads: set[str] = field(default_factory=set)
    #: every name referenced anywhere in the unit (window-hazard check)
    touched: set[str] = field(default_factory=set)
    labels: tuple[str, ...] = ()


def _depgraph(analyzed):
    from repro.schedule.pipeline_stages import _depgraph as shared

    return shared(analyzed)


def _unit_facts(
    unit: Descriptor, index: str, analyzed
) -> _UnitFacts | str:
    """The dependence facts of one unit, or a rejection reason string."""
    from repro.graph.depgraph import EdgeKind

    g = _depgraph(analyzed)
    facts = _UnitFacts()
    labels: list[str] = []
    if isinstance(unit, NodeDescriptor):
        descs: list[Descriptor] = [unit]
    else:
        descs = [unit, *unit.nested_descriptors()]
    for d in descs:
        if isinstance(d, LoopDescriptor):
            for bound in (d.subrange.lo, d.subrange.hi):
                for name in names_in(bound):
                    facts.bound_reads.add(name)
                    facts.touched.add(name)
            continue
        if not d.node.is_equation:
            return f"{d.label}: data declaration in the loop body"
        eq = d.node.equation
        if eq.atomic:
            return f"{eq.label}: atomic equation"
        labels.append(eq.label)
        for target in eq.targets:
            name = target.name
            facts.touched.add(name)
            sym = analyzed.symbol(name)
            if not isinstance(sym.type, ArrayType):
                return f"{eq.label}: scalar target {name}"
            if len(target.subscripts) != sym.type.rank:
                return f"{eq.label}: partial-rank write of {name}"
            carry = None
            for pos, sub in enumerate(target.subscripts):
                if isinstance(sub, Name) and sub.ident == index:
                    if carry is not None:
                        return (
                            f"{eq.label}: {index} in two subscript "
                            f"positions of {name}"
                        )
                    carry = pos
                elif index in names_in(sub):
                    return (
                        f"{eq.label}: non-bare use of {index} in a "
                        f"write subscript of {name}"
                    )
            if carry is None:
                return (
                    f"{eq.label}: write of {name} does not advance "
                    f"with {index}"
                )
            if facts.writes.setdefault(name, carry) != carry:
                return (
                    f"{eq.label}: inconsistent carry position for {name}"
                )
        for bname in eq.bound_uses:
            facts.bound_reads.add(bname)
            facts.touched.add(bname)
        for edge in g.in_edges(eq.label):
            if edge.kind is EdgeKind.BOUND:
                facts.bound_reads.add(edge.src)
                facts.touched.add(edge.src)
                continue
            if edge.kind is not EdgeKind.DATA or edge.is_lhs:
                continue
            facts.touched.add(edge.src)
            facts.reads.setdefault(edge.src, []).append(
                [(info.index, info.delta) for info in edge.subscripts]
            )
    facts.labels = tuple(labels)
    return facts


def _classify_reads(
    reader: _UnitFacts, name: str, carry: int, index: str
) -> tuple[bool, bool]:
    """(any read with delta < 0, any read not provably delta <= 0) over
    every textual read of ``name`` in ``reader`` at the writer's carry
    position. Bound reads are never provable."""
    lagged = False
    unproven = name in reader.bound_reads
    for pairs in reader.reads.get(name, []):
        if carry >= len(pairs):
            unproven = True
            continue
        read_index, delta = pairs[carry]
        if read_index != index or delta is None or delta > 0:
            unproven = True
        elif delta < 0:
            lagged = True
    return lagged, unproven


def _unit_edges(
    facts: list[_UnitFacts], index: str
) -> list[set[int]]:
    """Ordering edges between units: ``edges[a]`` holds every unit that
    must run in a group at or after ``a``'s. Unprovable pairs get edges
    both ways (they condense into one group)."""
    n = len(facts)
    edges: list[set[int]] = [set() for _ in range(n)]

    def both(a: int, b: int) -> None:
        edges[a].add(b)
        edges[b].add(a)

    for a in range(n):
        for b in range(a + 1, n):
            for name, carry in facts[a].writes.items():
                if name in facts[b].writes:
                    both(a, b)  # output dependence
                    continue
                if (
                    name in facts[b].reads
                    or name in facts[b].bound_reads
                ):
                    lagged, unproven = _classify_reads(
                        facts[b], name, carry, index
                    )
                    if unproven:
                        both(a, b)
                    else:
                        edges[a].add(b)  # flow, delta <= 0
            for name, carry in facts[b].writes.items():
                if name in facts[a].writes:
                    continue  # already handled as an output dependence
                if (
                    name in facts[a].reads
                    or name in facts[a].bound_reads
                ):
                    lagged, unproven = _classify_reads(
                        facts[a], name, carry, index
                    )
                    if unproven:
                        both(a, b)
                    elif lagged:
                        # Backward carried flow only when *every* read lags
                        # (delta < 0) — a same-row (delta == 0) anti
                        # dependence pins the textual order, and mixing
                        # both directions interlocks the pair. unproven is
                        # False here, so every read indexes cleanly.
                        deltas = [
                            pairs[carry][1]
                            for pairs in facts[a].reads.get(name, [])
                        ]
                        if all(d < 0 for d in deltas):
                            edges[b].add(a)
                        else:
                            both(a, b)
                    else:
                        edges[a].add(b)  # anti dependence: keep order
    return edges


def _condense(edges: list[set[int]]) -> list[list[int]]:
    """Strongly connected components of the unit graph in a topological
    order of the condensation (iterative Tarjan; ties broken by smallest
    member offset for determinism). Members stay in textual order."""
    n = len(edges)
    order = [0] * n
    low = [0] * n
    on_stack = [False] * n
    comp = [-1] * n
    visited = [False] * n
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [1]

    for root in range(n):
        if visited[root]:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                visited[v] = True
                order[v] = low[v] = counter[0]
                counter[0] += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            succs = sorted(edges[v])
            while pi < len(succs):
                w = succs[pi]
                pi += 1
                if not visited[w]:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], order[w])
            if advanced:
                continue
            work.pop()
            if low[v] == order[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = len(sccs)
                    scc.append(w)
                    if w == v:
                        break
                scc.sort()
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])

    # Kahn topological order over the condensation, smallest member first.
    m = len(sccs)
    cedges: list[set[int]] = [set() for _ in range(m)]
    indeg = [0] * m
    for a in range(n):
        for b in edges[a]:
            ca, cb = comp[a], comp[b]
            if ca != cb and cb not in cedges[ca]:
                cedges[ca].add(cb)
                indeg[cb] += 1
    ready = sorted(
        (c for c in range(m) if indeg[c] == 0), key=lambda c: sccs[c][0]
    )
    out: list[list[int]] = []
    while ready:
        c = ready.pop(0)
        out.append(sccs[c])
        freed = []
        for d in cedges[c]:
            indeg[d] -= 1
            if indeg[d] == 0:
                freed.append(d)
        ready = sorted(ready + freed, key=lambda c: sccs[c][0])
    return out


def _group_promotes(
    group: list[int], facts: list[_UnitFacts], index: str
) -> bool:
    """A DO group promotes to DOALL when every in-group read of every
    in-group-written array is exactly identity at the carry position —
    iterations then write disjoint rows and read only completed data."""
    written = {
        name: facts[u].writes[name] for u in group for name in facts[u].writes
    }
    for u in group:
        f = facts[u]
        for name, carry in written.items():
            if name in f.bound_reads:
                return False
            for pairs in f.reads.get(name, []):
                if carry >= len(pairs) or pairs[carry] != (index, 0):
                    return False
    return True


def _analyze_loop(
    loop: LoopDescriptor, path: tuple[int, ...], analyzed, flowchart: Flowchart
) -> FissionSplit | str:
    """A legal split of ``loop``, or the rejection reason."""
    units = loop.body
    facts: list[_UnitFacts] = []
    for unit in units:
        f = _unit_facts(unit, loop.index, analyzed)
        if isinstance(f, str):
            return f
        facts.append(f)
    edges = _unit_edges(facts, loop.index)
    groups = _condense(edges)
    if len(groups) < 2:
        return "carried dependences interlock the body into one group"

    touched = set().union(*(f.touched for f in facts))
    windowed = sorted(
        name for name in touched if flowchart.window_of(name)
    )
    mode_hazard: dict[bool, str | None] = {
        False: None,
        True: (
            f"windowed array {windowed[0]} in the nest" if windowed else None
        ),
    }

    pieces: list[LoopDescriptor] = []
    promoted: list[bool] = []
    for group in groups:
        promote = not loop.parallel and _group_promotes(
            group, facts, loop.index
        )
        piece = LoopDescriptor(
            loop.subrange,
            loop.index,
            loop.parallel or promote,
            [units[u] for u in group],
            dict(loop.windows),
        )
        pieces.append(piece)
        promoted.append(promote)
    split = FissionSplit(
        path=path,
        pieces=tuple(pieces),
        groups=tuple(tuple(g) for g in groups),
        promoted=tuple(promoted),
        mode_hazard=mode_hazard,
    )
    # Fill the replicas' safety caches for both window modes up front, the
    # same eager discipline annotate_flowchart applies to the main tree
    # (and, for the process backends, before any pool forks).
    for piece in pieces:
        if piece.parallel:
            for use_windows in (False, True):
                loop_chunk_safe(
                    piece, analyzed, flowchart.windows, use_windows
                )
                loop_collapse_safe(
                    piece, analyzed, flowchart.windows, use_windows
                )
    return split


def fission_splits(
    analyzed, flowchart: Flowchart
) -> dict[tuple[int, ...], FissionSplit]:
    """Every legal split in the flowchart, keyed by loop path. Memoized on
    the flowchart (structural — window-mode validity lives on each split);
    rejection reasons for considered multi-unit loops are memoized
    alongside for plan provenance."""
    memo = getattr(flowchart, "_fission_splits", None)
    if memo is not None:
        return memo
    splits: dict[tuple[int, ...], FissionSplit] = {}
    rejects: dict[tuple[int, ...], str] = {}

    def walk(descs: list[Descriptor], prefix: tuple[int, ...]) -> None:
        for i, d in enumerate(descs):
            if not isinstance(d, LoopDescriptor):
                continue
            path = prefix + (i,)
            if len(d.body) >= 2:
                result = _analyze_loop(d, path, analyzed, flowchart)
                if isinstance(result, str):
                    rejects[path] = result
                else:
                    splits[path] = result
            walk(d.body, path)

    walk(flowchart.descriptors, ())
    flowchart._fission_rejects = rejects
    flowchart._fission_splits = splits
    return splits


def fission_split(
    analyzed, flowchart: Flowchart, desc: LoopDescriptor, use_windows: bool
) -> FissionSplit | None:
    """The usable split for one loop in one window mode, or None."""
    splits = fission_splits(analyzed, flowchart)
    path = flowchart.path_of(desc)
    if path is None:
        return None
    split = splits.get(path)
    if split is None or not split.usable(use_windows):
        return None
    return split


def fission_reject(
    analyzed, flowchart: Flowchart, desc: LoopDescriptor, use_windows: bool
) -> str | None:
    """Why a *considered* loop (two or more body units) has no usable
    split in this mode — None for unconsidered or successfully split
    loops. Feeds the planner's rejected-transform provenance."""
    splits = fission_splits(analyzed, flowchart)
    path = flowchart.path_of(desc)
    if path is None:
        return None
    split = splits.get(path)
    if split is not None:
        return split.mode_hazard[bool(use_windows)]
    return getattr(flowchart, "_fission_rejects", {}).get(path)
