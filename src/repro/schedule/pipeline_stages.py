"""Stage partitioning for DSWP-style pipeline execution.

The scheduler fuses every recurrence into one maximal strongly connected
component, so a single ``DO`` loop's body is always one SCC — decoupling
*inside* a loop is vacuous. What the condensation DAG does expose is runs
of **consecutive sibling loops over the same iteration space**: a scan
(``DO``) feeding a consumer (``DOALL``), coupled recurrences feeding a
reduction sweep, a Gauss–Seidel line sweep feeding per-row diagnostics.
Flowchart order is a topological order of the condensation, so inter-loop
dependences only ever flow forward through such a run — exactly the shape
DSWP decouples into stages over bounded hand-off queues.

This module finds those runs and partitions them into stages:

* a ``DO`` loop (cyclic SCC) becomes a **sequential** stage — one worker
  advances it in iteration order, block by block;
* a ``DOALL`` loop (acyclic SCC) becomes a **replicated** stage — blocks
  are farmed to several workers once the upstream frontier passes them;
* adjacent ``DOALL`` loops coalesce into one replicated stage when every
  dependence between them is *identity* (row ``i`` reads only row ``i``),
  so one block hand-off covers both.

A run is only usable when every loop is **stage-safe**: each nested
equation writes full-rank arrays whose subscripts use the run index in
exactly one *bare* position (the array's carry position — the axis the
hand-off frontier advances along), and every read of an array produced
earlier in the run hits its carry position at ``index + delta`` with
``delta <= 0`` (rows at or before the frontier). Anything else — forward
references, index-free carry reads, windowed arrays, atomics, scalar
targets — truncates the run before the offending loop; a run that keeps
fewer than two stages is dropped. All-or-nothing, mirroring the native
tier's degradation contract: no partition means the planner prices the
loops exactly as before.

Verdicts are precomputed for both window modes by ``annotate_flowchart``
and cached on the flowchart, mirroring the chunk-safety precompute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ps.ast import Name, expr_equal
from repro.ps.types import ArrayType
from repro.schedule.flowchart import (
    Descriptor,
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
    loop_chunk_safe,
)


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: ``kind`` is ``"sequential"`` or ``"replicated"``;
    ``members`` are offsets into the owning group's loop run; ``labels``
    are the equation labels the stage evaluates (for display)."""

    kind: str
    members: tuple[int, ...]
    labels: tuple[str, ...]


@dataclass(frozen=True)
class PipelineGroup:
    """A maximal partitionable run of consecutive sibling loops.

    ``start`` is the offset of the first loop within its sibling list;
    ``loops`` the run itself, ``stages`` its partition (at least two)."""

    start: int
    loops: tuple[LoopDescriptor, ...]
    stages: tuple[StageSpec, ...]

    @property
    def size(self) -> int:
        return len(self.loops)

    def kinds(self) -> str:
        return "+".join(
            "seq" if s.kind == "sequential" else f"par[{len(s.members)}]"
            for s in self.stages
        )


@dataclass
class _LoopFacts:
    """Per-loop dependence facts the run scan consumes: which arrays the
    nest writes (with their carry positions) and which it reads (with the
    per-position ``(index, delta)`` classification of every textual read)."""

    writes: dict[str, int] = field(default_factory=dict)  # array -> carry pos
    #: array -> one entry per textual read: [(index, delta)] per position
    reads: dict[str, list[list[tuple[str | None, int | None]]]] = field(
        default_factory=dict
    )
    labels: tuple[str, ...] = ()


def _depgraph(analyzed):
    """The module dependence graph, built lazily and cached — the scheduler
    builds one transiently; stage analysis re-derives it once per module."""
    g = getattr(analyzed, "_pipeline_depgraph", None)
    if g is None:
        from repro.graph.build import build_dependency_graph

        g = build_dependency_graph(analyzed)
        analyzed._pipeline_depgraph = g
    return g


def _loop_facts(
    loop: LoopDescriptor, analyzed, flowchart: Flowchart, use_windows: bool
) -> _LoopFacts | None:
    """Stage-safety analysis for one loop; None when the loop cannot be a
    pipeline stage at all (which truncates any run at this sibling)."""
    from repro.graph.depgraph import EdgeKind

    g = _depgraph(analyzed)
    index = loop.index
    facts = _LoopFacts()
    labels: list[str] = []
    for d in loop.nested_descriptors():
        if isinstance(d, LoopDescriptor):
            continue
        assert isinstance(d, NodeDescriptor)
        if not d.node.is_equation:
            return None  # data declarations inside the nest
        eq = d.node.equation
        if eq.atomic:
            return None
        labels.append(eq.label)
        for target in eq.targets:
            sym = analyzed.symbol(target.name)
            if not isinstance(sym.type, ArrayType):
                return None  # scalar target: no carry axis to advance
            if len(target.subscripts) != sym.type.rank:
                return None
            if use_windows and flowchart.window_of(target.name):
                return None  # windowed planes are overwritten behind the frontier
            carry = None
            for pos, sub in enumerate(target.subscripts):
                if isinstance(sub, Name) and sub.ident == index:
                    if carry is not None:
                        return None  # run index in two positions
                    carry = pos
                elif _mentions(sub, index):
                    return None  # non-bare use of the run index
            if carry is None:
                return None  # the write does not advance with the run index
            if facts.writes.setdefault(target.name, carry) != carry:
                return None  # inconsistent carry position across writes
        # Reads, classified once by the dependence graph build.
        for edge in g.in_edges(eq.label):
            if edge.kind is not EdgeKind.DATA or edge.is_lhs:
                continue
            name = edge.src
            if use_windows and flowchart.window_of(name):
                return None  # frontier rows may be window-rotated away
            facts.reads.setdefault(name, []).append(
                [(info.index, info.delta) for info in edge.subscripts]
            )
    facts.labels = tuple(labels)
    return facts


def _mentions(expr, ident: str) -> bool:
    from repro.ps.ast import names_in

    return ident in names_in(expr)


def _carry_read_ok(
    facts: _LoopFacts, name: str, carry: int, index: str
) -> bool:
    """Every textual read of ``name`` in this loop's nest must hit the
    producer's carry position at ``index + delta`` with ``delta <= 0``."""
    for pairs in facts.reads.get(name, []):
        if carry >= len(pairs):
            return False  # index-free / partial reference: frontier unknown
        read_index, delta = pairs[carry]
        if read_index != index or delta is None or delta > 0:
            return False
    return True


def _bounds_equal(a: LoopDescriptor, b: LoopDescriptor) -> bool:
    return expr_equal(a.subrange.lo, b.subrange.lo) and expr_equal(
        a.subrange.hi, b.subrange.hi
    )


def _stage_partition(
    loops: list[LoopDescriptor],
    facts: list[_LoopFacts],
) -> tuple[StageSpec, ...]:
    """Coalesce the run into stages. ``DO`` loops stand alone; adjacent
    ``DOALL`` loops merge while every dependence between them is identity
    (``delta == 0``) at the producer's carry position — a lagged read needs
    a real frontier between the loops, i.e. a stage boundary."""
    stages: list[StageSpec] = []
    current: list[int] = []

    def flush() -> None:
        if current:
            labels: list[str] = []
            for m in current:
                labels.extend(facts[m].labels)
            stages.append(StageSpec("replicated", tuple(current), tuple(labels)))
            current.clear()

    for j, loop in enumerate(loops):
        if not loop.parallel:
            flush()
            stages.append(StageSpec("sequential", (j,), facts[j].labels))
            continue
        if current and not _identity_only(loops, facts, current, j):
            flush()
        current.append(j)
    flush()
    return tuple(stages)


def _identity_only(
    loops: list[LoopDescriptor],
    facts: list[_LoopFacts],
    current: list[int],
    j: int,
) -> bool:
    """True when loop ``j`` reads the arrays written by the stage under
    construction only at identity (``delta == 0``) carry offsets."""
    consumer = facts[j]
    index = loops[j].index
    for m in current:
        for name, carry in facts[m].writes.items():
            for pairs in consumer.reads.get(name, []):
                if carry >= len(pairs):
                    return False
                read_index, delta = pairs[carry]
                if read_index != index or delta != 0:
                    return False
    return True


def partition_siblings(
    siblings: list[Descriptor],
    analyzed,
    flowchart: Flowchart,
    use_windows: bool,
) -> list[PipelineGroup]:
    """All pipeline groups in one sibling list, left to right. Non-loop
    siblings, bound mismatches, and stage-unsafe loops break runs; runs
    that partition into fewer than two stages are dropped."""
    groups: list[PipelineGroup] = []
    i = 0
    n = len(siblings)
    while i < n:
        d = siblings[i]
        if not isinstance(d, LoopDescriptor):
            i += 1
            continue
        run: list[LoopDescriptor] = []
        run_facts: list[_LoopFacts] = []
        written: dict[str, tuple[int, int]] = {}  # array -> (producer, carry)
        j = i
        while j < n:
            cand = siblings[j]
            if not isinstance(cand, LoopDescriptor):
                break
            if run and not _bounds_equal(run[0], cand):
                break
            if cand.parallel and not loop_chunk_safe(
                cand, analyzed, flowchart.windows, use_windows
            ):
                break
            f = _loop_facts(cand, analyzed, flowchart, use_windows)
            if f is None:
                break
            # Single writer per array within the run.
            if any(name in written for name in f.writes):
                break
            # Every read of an upstream run array must track the frontier.
            ok = True
            for name, (_producer, carry) in written.items():
                if name in f.reads and not _carry_read_ok(
                    f, name, carry, cand.index
                ):
                    ok = False
                    break
            if not ok:
                break
            run.append(cand)
            run_facts.append(f)
            for name, carry in f.writes.items():
                written[name] = (len(run) - 1, carry)
            j += 1
        if len(run) >= 2:
            stages = _stage_partition(run, run_facts)
            if len(stages) >= 2:
                groups.append(
                    PipelineGroup(start=i, loops=tuple(run), stages=stages)
                )
                i += len(run)
                continue
        # No group here: re-scan from the next sibling (a shorter run
        # starting later may still partition).
        i += 1
    return groups


def pipeline_groups(
    analyzed,
    flowchart: Flowchart,
    use_windows: bool,
) -> dict[tuple[int, ...], list[PipelineGroup]]:
    """Every pipeline group in the flowchart, keyed by the path of the
    owning sibling list's container (``()`` for the top level, a loop path
    for a ``DO`` body). Only always-sequential contexts are scanned — the
    top level and (recursively) the bodies of ``DO`` loops — because a
    pipeline must never launch from inside a worker already running on the
    pool. Cached on the flowchart per window mode."""
    memo = getattr(flowchart, "_pipeline_groups", None)
    if memo is None:
        memo = {}
        flowchart._pipeline_groups = memo
    key = bool(use_windows)
    if key in memo:
        return memo[key]

    # Fission replica runs are sibling lists too: the replicas of a split
    # loop share one subrange, so a recurrence piece feeding a DOALL piece
    # is exactly the DSWP shape. They live at marker containers
    # ``loop_path + (-1,)`` (lazy import: fission also rides the
    # dependence-graph machinery).
    from repro.schedule.fission import fission_splits

    splits = fission_splits(analyzed, flowchart)
    found: dict[tuple[int, ...], list[PipelineGroup]] = {}

    def scan(siblings: list[Descriptor], prefix: tuple[int, ...]) -> None:
        groups = partition_siblings(siblings, analyzed, flowchart, use_windows)
        if groups:
            found[prefix] = groups
        for k, d in enumerate(siblings):
            if not isinstance(d, LoopDescriptor):
                continue
            split = splits.get((*prefix, k))
            if split is not None and split.usable(use_windows):
                pieces = list(split.pieces)
                fgroups = partition_siblings(
                    pieces, analyzed, flowchart, use_windows
                )
                if fgroups:
                    found[(*prefix, k, -1)] = fgroups
                for kk, piece in enumerate(pieces):
                    if not piece.parallel:
                        scan(piece.body, (*prefix, k, -1, kk))
            if not d.parallel:
                scan(d.body, (*prefix, k))

    scan(flowchart.descriptors, ())
    memo[key] = found
    return found


def group_starting_at(
    analyzed,
    flowchart: Flowchart,
    container: tuple[int, ...],
    offset: int,
    use_windows: bool,
) -> PipelineGroup | None:
    """The group whose run starts at ``offset`` within the sibling list at
    ``container``, if any."""
    for group in pipeline_groups(analyzed, flowchart, use_windows).get(
        container, []
    ):
        if group.start == offset:
            return group
    return None
