"""Flowchart IR (paper section 3.2, Figure 4).

"The flowchart is simply a list of descriptors. A descriptor may indicate
either a dependency graph node or a subrange type. ... A subrange type
descriptor also contains a list of descriptors which are contained within
the scope of the loop. Thus the flowchart is a recursive structure which
reflects the nesting structure of the generated program."

A :class:`LoopDescriptor` records whether "an iterative loop [is] to be
generated from this subrange or ... a parallel loop" — printed as ``DO`` and
``DOALL`` to match Figures 5–7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.graph.depgraph import Node
from repro.ps.types import SubrangeType


@dataclass
class NodeDescriptor:
    """A dependency-graph node: the code generator emits the data item's
    declaration or the equation's assignment statement."""

    node: Node

    @property
    def label(self) -> str:
        return self.node.id

    def pretty_lines(self, indent: int = 0) -> list[str]:
        return ["    " * indent + self.node.id]

    def shape(self):
        return self.node.id


@dataclass
class LoopDescriptor:
    """A subrange-type descriptor: a ``for`` loop over the subrange, either
    iterative (``DO``) or parallel (``DOALL``), with nested descriptors."""

    subrange: SubrangeType
    index: str
    parallel: bool
    body: list["Descriptor"] = field(default_factory=list)
    #: arrays whose dimension scheduled by this loop is virtual:
    #: data-node id -> (dimension position, window size)
    windows: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def keyword(self) -> str:
        return "DOALL" if self.parallel else "DO"

    # -- chunkable-subrange metadata (parallel execution backends) ------------

    def nested_descriptors(self) -> Iterator["Descriptor"]:
        """Every descriptor in this loop's nest, pre-order, self excluded."""
        stack: list[Descriptor] = list(reversed(self.body))
        while stack:
            d = stack.pop()
            yield d
            if isinstance(d, LoopDescriptor):
                stack.extend(reversed(d.body))

    def nested_loops(self) -> list["LoopDescriptor"]:
        return [d for d in self.nested_descriptors() if isinstance(d, LoopDescriptor)]

    def nested_equations(self) -> list:
        """The analyzed equations inside this nest (the chunk workload)."""
        return [
            d.node.equation
            for d in self.nested_descriptors()
            if isinstance(d, NodeDescriptor) and d.node.is_equation
        ]

    def nest_indices(self) -> set[str]:
        """Index variables bound anywhere in this nest (self included)."""
        return {self.index} | {loop.index for loop in self.nested_loops()}

    @property
    def chunkable(self) -> bool:
        """Whether a backend may split this subrange into independently
        executed chunks: the loop must be parallel (``DOALL`` iterations are
        semantically unordered) and its nest must contain only equations and
        nested loops — a data-declaration node would be re-emitted per chunk.
        Backends still apply their own semantic checks (scalar targets,
        windowed dimensions) on top of this structural one."""
        if not self.parallel:
            return False
        return all(
            not isinstance(d, NodeDescriptor) or d.node.is_equation
            for d in self.nested_descriptors()
        )

    def pretty_lines(self, indent: int = 0) -> list[str]:
        pad = "    " * indent
        lines = [f"{pad}{self.keyword} {self.index} ("]
        for d in self.body:
            lines.extend(d.pretty_lines(indent + 1))
        lines.append(f"{pad})")
        return lines

    def shape(self):
        return (self.keyword, self.index, [d.shape() for d in self.body])


Descriptor = Union[NodeDescriptor, LoopDescriptor]


def split_range(lo: int, hi: int, parts: int) -> list[tuple[int, int]]:
    """Split the inclusive subrange ``[lo, hi]`` into at most ``parts``
    balanced contiguous subranges (sizes differ by at most one) — the chunk
    shape the parallel execution backends hand to their workers."""
    n = hi - lo + 1
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    spans: list[tuple[int, int]] = []
    start = lo
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size - 1))
        start += size
    return spans


@dataclass
class Flowchart:
    """The scheduler's output for one module (or one component)."""

    descriptors: list[Descriptor] = field(default_factory=list)
    #: virtual-dimension summary: data-node id -> {dim position: window}
    windows: dict[str, dict[int, int]] = field(default_factory=dict)
    #: run-time assumptions recorded by scheduler extensions (e.g. the [14]
    #: symbolic-offset rule assumes each offset variable is >= 1)
    assumptions: list[str] = field(default_factory=list)

    def pretty(self) -> str:
        lines: list[str] = []
        for d in self.descriptors:
            lines.extend(d.pretty_lines())
        return "\n".join(lines)

    def shape(self) -> list:
        """Nested-tuple shape for structural comparison in tests:
        ``("DO", "K", [("DOALL", "I", [...])])``."""
        return [d.shape() for d in self.descriptors]

    # -- traversal helpers ----------------------------------------------------

    def walk(self) -> Iterator[Descriptor]:
        stack: list[Descriptor] = list(reversed(self.descriptors))
        while stack:
            d = stack.pop()
            yield d
            if isinstance(d, LoopDescriptor):
                stack.extend(reversed(d.body))

    def loops(self) -> list[LoopDescriptor]:
        return [d for d in self.walk() if isinstance(d, LoopDescriptor)]

    def equation_labels(self) -> list[str]:
        return [
            d.node.id
            for d in self.walk()
            if isinstance(d, NodeDescriptor) and d.node.is_equation
        ]

    def loop_kinds(self) -> list[tuple[str, str]]:
        """(keyword, index) of every loop, pre-order — a quick fingerprint."""
        return [(loop.keyword, loop.index) for loop in self.loops()]

    def window_of(self, name: str) -> dict[int, int]:
        return self.windows.get(name, {})
