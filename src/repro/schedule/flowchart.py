"""Flowchart IR (paper section 3.2, Figure 4).

"The flowchart is simply a list of descriptors. A descriptor may indicate
either a dependency graph node or a subrange type. ... A subrange type
descriptor also contains a list of descriptors which are contained within
the scope of the loop. Thus the flowchart is a recursive structure which
reflects the nesting structure of the generated program."

A :class:`LoopDescriptor` records whether "an iterative loop [is] to be
generated from this subrange or ... a parallel loop" — printed as ``DO`` and
``DOALL`` to match Figures 5-7.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.graph.depgraph import Node
from repro.ps.ast import Call, names_in, walk_expr
from repro.ps.types import ArrayType, SubrangeType


@dataclass
class NodeDescriptor:
    """A dependency-graph node: the code generator emits the data item's
    declaration or the equation's assignment statement."""

    node: Node

    @property
    def label(self) -> str:
        return self.node.id

    def pretty_lines(self, indent: int = 0) -> list[str]:
        return ["    " * indent + self.node.id]

    def shape(self):
        return self.node.id


@dataclass
class LoopDescriptor:
    """A subrange-type descriptor: a ``for`` loop over the subrange, either
    iterative (``DO``) or parallel (``DOALL``), with nested descriptors."""

    subrange: SubrangeType
    index: str
    parallel: bool
    body: list[Descriptor] = field(default_factory=list)
    #: arrays whose dimension scheduled by this loop is virtual:
    #: data-node id -> (dimension position, window size)
    windows: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: precomputed chunk-safety verdicts keyed by ``use_windows`` — filled at
    #: flowchart-build time by :func:`annotate_flowchart` (or lazily by the
    #: execution backends) so wavefront execution never re-derives them
    chunk_safety: dict[bool, bool] = field(default_factory=dict, repr=False, compare=False)
    #: precomputed collapse-safety verdicts (may the perfect DOALL chain
    #: rooted here be flattened and chunked as one iteration space?), same
    #: keying and fill discipline as :attr:`chunk_safety`
    collapse_safety: dict[bool, bool] = field(default_factory=dict, repr=False, compare=False)

    @property
    def keyword(self) -> str:
        return "DOALL" if self.parallel else "DO"

    # -- chunkable-subrange metadata (parallel execution backends) ------------

    def nested_descriptors(self) -> Iterator[Descriptor]:
        """Every descriptor in this loop's nest, pre-order, self excluded."""
        stack: list[Descriptor] = list(reversed(self.body))
        while stack:
            d = stack.pop()
            yield d
            if isinstance(d, LoopDescriptor):
                stack.extend(reversed(d.body))

    def nested_loops(self) -> list[LoopDescriptor]:
        return [d for d in self.nested_descriptors() if isinstance(d, LoopDescriptor)]

    def nested_equations(self) -> list:
        """The analyzed equations inside this nest (the chunk workload)."""
        return [
            d.node.equation
            for d in self.nested_descriptors()
            if isinstance(d, NodeDescriptor) and d.node.is_equation
        ]

    def nest_indices(self) -> set[str]:
        """Index variables bound anywhere in this nest (self included)."""
        return {self.index} | {loop.index for loop in self.nested_loops()}

    @property
    def chunkable(self) -> bool:
        """Whether a backend may split this subrange into independently
        executed chunks: the loop must be parallel (``DOALL`` iterations are
        semantically unordered) and its nest must contain only equations and
        nested loops — a data-declaration node would be re-emitted per chunk.
        Backends still apply their own semantic checks (scalar targets,
        windowed dimensions) on top of this structural one."""
        if not self.parallel:
            return False
        return all(
            not isinstance(d, NodeDescriptor) or d.node.is_equation
            for d in self.nested_descriptors()
        )

    def pretty_lines(self, indent: int = 0) -> list[str]:
        pad = "    " * indent
        lines = [f"{pad}{self.keyword} {self.index} ("]
        for d in self.body:
            lines.extend(d.pretty_lines(indent + 1))
        lines.append(f"{pad})")
        return lines

    def shape(self):
        return (self.keyword, self.index, [d.shape() for d in self.body])


Descriptor = NodeDescriptor | LoopDescriptor


# -- execution metadata -------------------------------------------------------
#
# The parallel backends need two safety verdicts per wavefront: whether an
# equation may be evaluated as one vector operation, and whether a DOALL nest
# may be split across concurrent workers. Both are static properties of the
# analyzed module and the flowchart, so they are derived once here — eagerly
# by the scheduler via :func:`annotate_flowchart`, or lazily on first use —
# instead of being re-derived on every wavefront execution.


def equation_vector_safe(eq) -> bool:
    """A module call blocks vectorisation only when its arguments mention the
    equation's index variables (then each element needs its own call). The
    verdict is cached on the equation."""
    if eq.vector_safe is None:
        from repro.ps.semantics import is_builtin

        safe = True
        index_names = set(eq.index_names)
        for n in walk_expr(eq.rhs):
            if isinstance(n, Call) and not is_builtin(n.func):
                for a in n.args:
                    if names_in(a) & index_names:
                        safe = False
                        break
            if not safe:
                break
        eq.vector_safe = safe
    return eq.vector_safe


def collapse_chain(
    desc: LoopDescriptor,
) -> tuple[list[LoopDescriptor], list[Descriptor]]:
    """The perfectly nested DOALL chain rooted at ``desc`` and the body
    below it: each chain loop's body is exactly one parallel loop until the
    innermost, whose body is the returned descriptor list. A chain of
    length 1 means there is nothing to collapse — ``desc`` stands alone."""
    chain = [desc]
    body = desc.body
    while (
        len(body) == 1
        and isinstance(body[0], LoopDescriptor)
        and body[0].parallel
    ):
        chain.append(body[0])
        body = body[0].body
    return chain, body


def compute_collapse_safety(
    desc: LoopDescriptor,
    analyzed,
    window_map: dict[str, dict[int, int]],
    use_windows: bool,
) -> bool:
    """Whether the DOALL chain rooted at ``desc`` may be *collapsed*: the
    flattened iteration space split into contiguous flat chunks executed
    concurrently. Requires a chain of at least two perfectly nested DOALLs
    (one loop alone is plain chunking), the root's chunk-safety verdict
    (which already covers every nested write and windowed dimension against
    the whole nest's index set), and *rectangularity*: an inner chain
    loop's bounds must not reference an outer chain index — delinearizing a
    flat offset needs every inner extent to be iteration-invariant."""
    chain, _body = collapse_chain(desc)
    if len(chain) < 2:
        return False
    if not loop_chunk_safe(desc, analyzed, window_map, use_windows):
        return False
    chain_indices = {loop.index for loop in chain}
    for loop in chain[1:]:
        bound_names = names_in(loop.subrange.lo) | names_in(loop.subrange.hi)
        if bound_names & chain_indices:
            return False
    return True


def loop_collapse_safe(
    desc: LoopDescriptor,
    analyzed,
    window_map: dict[str, dict[int, int]],
    use_windows: bool,
) -> bool:
    """The cached collapse-safety verdict, computing it on a cache miss."""
    use_windows = bool(use_windows)
    cached = desc.collapse_safety.get(use_windows)
    if cached is None:
        cached = compute_collapse_safety(desc, analyzed, window_map, use_windows)
        desc.collapse_safety[use_windows] = cached
    return cached


def compute_chunk_safety(
    desc: LoopDescriptor,
    analyzed,
    window_map: dict[str, dict[int, int]],
    use_windows: bool,
) -> bool:
    """Whether a DOALL nest may be split across concurrently executing
    workers. Beyond the structural :attr:`LoopDescriptor.chunkable` check,
    every equation must write only array elements (a scalar target would be
    an interpreter-state race), must not be atomic (atomic equations rebind
    whole arrays), and no windowed dimension of a target may be subscripted
    by a nest index (two chunks could then alias one window plane)."""
    if not desc.chunkable:
        return False
    indices = desc.nest_indices()
    for eq in desc.nested_equations():
        if eq.atomic:
            return False
        for target in eq.targets:
            sym = analyzed.symbol(target.name)
            if not isinstance(sym.type, ArrayType):
                return False
            if use_windows:
                wins = window_map.get(target.name, {})
                for d in wins:
                    if d < len(target.subscripts) and (
                        names_in(target.subscripts[d]) & indices
                    ):
                        return False
    return True


def loop_chunk_safe(
    desc: LoopDescriptor,
    analyzed,
    window_map: dict[str, dict[int, int]],
    use_windows: bool,
) -> bool:
    """The cached chunk-safety verdict, computing it on a cache miss."""
    use_windows = bool(use_windows)
    cached = desc.chunk_safety.get(use_windows)
    if cached is None:
        cached = compute_chunk_safety(desc, analyzed, window_map, use_windows)
        desc.chunk_safety[use_windows] = cached
    return cached


def annotate_flowchart(flowchart: Flowchart, analyzed) -> None:
    """Precompute every loop's chunk-safety (both window modes), every
    equation's vector-safety, and the pipeline stage partition at
    flowchart-build time."""
    for desc in flowchart.walk():
        if isinstance(desc, LoopDescriptor):
            for use_windows in (False, True):
                loop_chunk_safe(desc, analyzed, flowchart.windows, use_windows)
                loop_collapse_safe(desc, analyzed, flowchart.windows, use_windows)
            for eq in desc.nested_equations():
                equation_vector_safe(eq)
        elif desc.node.is_equation:
            equation_vector_safe(desc.node.equation)
    # Fission candidates first (pipeline and scan recognition extend over
    # the replica loops), then pipeline stage partitioning and scan shapes
    # (lazy imports: all three consume the dependence graph machinery,
    # which must not become a schedule-time import cycle).
    from repro.schedule.fission import fission_splits
    from repro.schedule.pipeline_stages import pipeline_groups
    from repro.schedule.scan_detect import scan_loops

    fission_splits(analyzed, flowchart)
    for use_windows in (False, True):
        pipeline_groups(analyzed, flowchart, use_windows)
        scan_loops(analyzed, flowchart, use_windows)


def split_range(lo: int, hi: int, parts: int) -> list[tuple[int, int]]:
    """Split the inclusive subrange ``[lo, hi]`` into at most ``parts``
    balanced contiguous subranges (sizes differ by at most one) — the chunk
    shape the parallel execution backends hand to their workers."""
    n = hi - lo + 1
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    spans: list[tuple[int, int]] = []
    start = lo
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size - 1))
        start += size
    return spans


def outermost_parallel_loops(descriptors) -> list[LoopDescriptor]:
    """The outermost parallel loops met on a scalar walk of
    ``descriptors`` — exactly the nests that can dispatch a fused nest
    kernel (inner loops of a span or nest never dispatch their own). One
    rule, shared by the kernel cache's pre-fork warm-up and the offline
    artifact export."""
    out: list[LoopDescriptor] = []
    for d in descriptors:
        if not isinstance(d, LoopDescriptor):
            continue
        if d.parallel:
            out.append(d)
        else:
            out.extend(outermost_parallel_loops(d.body))
    return out


@dataclass
class Flowchart:
    """The scheduler's output for one module (or one component)."""

    descriptors: list[Descriptor] = field(default_factory=list)
    #: virtual-dimension summary: data-node id -> {dim position: window}
    windows: dict[str, dict[int, int]] = field(default_factory=dict)
    #: run-time assumptions recorded by scheduler extensions (e.g. the [14]
    #: symbolic-offset rule assumes each offset variable is >= 1)
    assumptions: list[str] = field(default_factory=list)

    def pretty(self) -> str:
        lines: list[str] = []
        for d in self.descriptors:
            lines.extend(d.pretty_lines())
        return "\n".join(lines)

    def shape(self) -> list:
        """Nested-tuple shape for structural comparison in tests:
        ``("DO", "K", [("DOALL", "I", [...])])``."""
        return [d.shape() for d in self.descriptors]

    # -- traversal helpers ----------------------------------------------------

    def walk(self) -> Iterator[Descriptor]:
        stack: list[Descriptor] = list(reversed(self.descriptors))
        while stack:
            d = stack.pop()
            yield d
            if isinstance(d, LoopDescriptor):
                stack.extend(reversed(d.body))

    def loops(self) -> list[LoopDescriptor]:
        return [d for d in self.walk() if isinstance(d, LoopDescriptor)]

    def equation_labels(self) -> list[str]:
        return [
            d.node.id
            for d in self.walk()
            if isinstance(d, NodeDescriptor) and d.node.is_equation
        ]

    def loop_kinds(self) -> list[tuple[str, str]]:
        """(keyword, index) of every loop, pre-order — a quick fingerprint."""
        return [(loop.keyword, loop.index) for loop in self.loops()]

    def window_of(self, name: str) -> dict[int, int]:
        return self.windows.get(name, {})

    def path_of(self, target: Descriptor) -> tuple[int, ...] | None:
        """The child-index path of ``target`` in the descriptor tree — a
        picklable descriptor handle the process backend sends to persistent
        workers (which resolve it against their inherited flowchart).

        Fission replica loops (which live outside the main tree but share
        its body descriptors) resolve to *marker paths*
        ``loop_path + (-1, k)``; the inner descriptors themselves resolve
        to their main-tree paths."""

        def search(descs: list[Descriptor], prefix: tuple[int, ...]):
            for i, d in enumerate(descs):
                if d is target:
                    return prefix + (i,)
                if isinstance(d, LoopDescriptor):
                    found = search(d.body, prefix + (i,))
                    if found is not None:
                        return found
            return None

        found = search(self.descriptors, ())
        if found is not None:
            return found
        for lpath, split in getattr(self, "_fission_splits", {}).items():
            for k, piece in enumerate(split.pieces):
                if piece is target:
                    return lpath + (-1, k)
        return None

    def descriptor_at(self, path: tuple[int, ...]) -> Descriptor:
        """The descriptor named by a :meth:`path_of` path. A ``-1``
        component routes through the memoized fission split of the loop at
        the preceding prefix: ``path[:i] + (-1, k)`` is replica ``k`` of
        that loop, and further components descend into its body."""
        descs = self.descriptors
        desc: Descriptor | None = None
        i = 0
        while i < len(path):
            c = path[i]
            if c == -1:
                prefix = tuple(path[:i])
                split = getattr(self, "_fission_splits", {}).get(prefix)
                if split is None:
                    raise LookupError(f"no fission split at {prefix!r}")
                desc = split.pieces[path[i + 1]]
                descs = desc.body
                i += 2
                continue
            desc = descs[c]
            descs = desc.body if isinstance(desc, LoopDescriptor) else []
            i += 1
        if desc is None:
            raise IndexError("empty descriptor path")
        return desc
