"""Virtual-dimension (memory window) analysis — paper section 3.4.

"A data node dimension is *virtual* if the dimension is mapped to a 'window'
of elements, and the width of the window is smaller than the PS declared
size."

The scheduler marks the dimension being scheduled virtual for a local
variable ``Nr`` in component ``Mi`` when **each** edge from ``Nr`` to an
equation node is in one or both of these forms:

1. the edge has subscript expression ``I`` or ``I - constant`` in the
   dimension being scheduled, and the target is in ``Mi``;
2. the edge goes to a node outside the component, and its subscript
   expression in that dimension is the *upper bound* of the subrange defining
   the dimension (only the last element escapes the loop).

The window size is ``1 + max offset`` over the form-1 edges — two planes for
the paper's Jacobi array ``A`` (offsets {1}), three for the transformed
``A'`` of section 4 (offsets {1, 2}).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.depgraph import DependencyGraph, EdgeKind
from repro.graph.labels import SubscriptClass
from repro.ps.symbols import SymbolKind


@dataclass
class VirtualDim:
    node_id: str
    dim: int
    window: int
    declared: str  # human-readable declared extent, e.g. "1 .. maxK"


def check_virtual(
    graph: DependencyGraph,
    node_id: str,
    dim: int,
    component: frozenset[str],
) -> int | None:
    """Return the window size if dimension ``dim`` of ``node_id`` is virtual
    with respect to ``component``, else None. Only local variables (not
    inputs or results) are eligible — inputs are caller-allocated and the
    result must be materialised in full."""
    node = graph.node(node_id)
    if node.symbol is None or node.symbol.kind is not SymbolKind.VAR:
        return None
    if dim >= node.rank:
        return None

    max_offset = 0
    for edge in graph.out_edges(node_id):
        if edge.kind is not EdgeKind.DATA:
            continue
        target = graph.node(edge.dst)
        if not target.is_equation:
            continue
        if dim >= len(edge.subscripts):
            return None
        info = edge.subscripts[dim]
        if edge.dst in component:
            # form 1: "I" or "I - constant" into the component
            if info.cls is SubscriptClass.IDENTITY:
                continue
            if info.cls is SubscriptClass.OFFSET:
                assert info.offset is not None
                max_offset = max(max_offset, info.offset)
                continue
            return None
        # form 2: leaves the component via the subrange's upper bound
        if info.is_upper_bound:
            continue
        return None
    return 1 + max_offset


def virtual_dimension_report(
    graph: DependencyGraph, components: list[frozenset[str]]
) -> list[VirtualDim]:
    """Evaluate the virtual test for *every* dimension of every local array
    inside its MSCC — used for the W1 (window) experiment table. The
    scheduler itself only records the dimension actually being scheduled
    while the array is still in the component, exactly as published."""
    out: list[VirtualDim] = []
    for comp in components:
        for node_id in sorted(comp):
            node = graph.node(node_id)
            if not node.is_data or node.symbol is None:
                continue
            for dim in range(node.rank):
                window = check_virtual(graph, node_id, dim, comp)
                if window is not None:
                    sub = node.dims[dim].subrange
                    from repro.ps.printer import format_expression

                    declared = (
                        f"{format_expression(sub.lo)} .. {format_expression(sub.hi)}"
                    )
                    out.append(VirtualDim(node_id, dim, window, declared))
    return out
