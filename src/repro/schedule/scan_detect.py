"""Scan/reduction recognition over sequential ``DO`` loops.

The paper's scheduler stops at the DO/DOALL split: a carried dependence
makes the loop iterative and that is the end of the story. Farzan's
divide-and-conquer synthesis (arXiv 1904.01031) recovers parallelism for
the two shapes that dominate in practice:

* **associative scans** ``x[i] = x[i-1] OP b_i`` for ``OP`` in
  ``+ * min max`` (a reduction is the same loop where only the last
  element is consumed — the execution is identical, so both classify as
  ``kind == "scan"``);
* **first-order linear recurrences** ``x[i] = a_i * x[i-1] + b_i`` with
  loop-varying coefficients: the ``(a, b)`` pairs compose associatively
  (``(a2, b2) . (a1, b1) = (a2*a1, a2*b1 + b2)``), so block summaries
  parallelize the same way.

Recognition is all-or-nothing: one carried equation, carry distance
exactly 1, no module calls, no windowed storage in play. Anything else
keeps the in-order walk. Verdicts are precomputed per window mode at
flowchart-build time (mirroring ``pipeline_groups``) and memoized on the
flowchart so planner, kernel cache, and backends all see one analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ps.ast import (
    BinOp,
    Call,
    Expr,
    Index,
    IntLit,
    Name,
    UnOp,
    expr_equal,
    names_in,
    walk_expr,
)
from repro.ps.types import ArrayType
from repro.schedule.flowchart import Flowchart, LoopDescriptor, NodeDescriptor

#: associative operators the scan kernels implement
SCAN_OPS = ("+", "*", "min", "max")


@dataclass(frozen=True)
class ScanInfo:
    """The classification of one recognized ``DO`` loop.

    ``kind == "scan"``: ``target[i] = target[i-1] OP b_expr``.
    ``kind == "linrec"``: ``target[i] = a_expr * target[i-1] + b_expr``.
    ``b_expr``/``a_expr`` never mention ``target``; both may reference the
    loop index. ``is_float`` flags element type ``real`` — parallelizing
    a float ``+``/``*`` scan reassociates rounding and is gated behind
    ``ExecutionOptions.allow_reassoc`` (min/max stay exact).
    """

    kind: str
    op: str | None
    target: str
    label: str
    is_float: bool
    b_expr: Expr
    a_expr: Expr | None = None


def _classify(analyzed, flowchart: Flowchart, desc: LoopDescriptor,
              use_windows: bool) -> ScanInfo | None:
    if desc.parallel or len(desc.body) != 1:
        return None
    body = desc.body[0]
    if not isinstance(body, NodeDescriptor) or not body.node.is_equation:
        return None
    eq = body.node.equation
    if eq.atomic or len(eq.targets) != 1:
        return None
    if eq.index_names != [desc.index]:
        return None
    target = eq.targets[0]
    try:
        sym = analyzed.symbol(target.name)
    except KeyError:
        return None
    if not isinstance(sym.type, ArrayType) or sym.type.rank != 1:
        return None
    from repro.codegen.clower import kind_of_type

    try:
        elem_kind = kind_of_type(sym.type)
    except ValueError:
        return None
    if elem_kind not in ("int", "real"):
        return None
    subs = target.subscripts
    if len(subs) != 1 or not isinstance(subs[0], Name) or subs[0].ident != desc.index:
        return None
    # Module calls anywhere in the body poison the loop: the scan kernels
    # cannot re-enter the interpreter mid-block.
    from repro.ps.semantics import is_builtin

    for node in walk_expr(eq.rhs):
        if isinstance(node, Call) and not is_builtin(node.func):
            return None
    if use_windows:
        referenced = {target.name} | names_in(eq.rhs)
        for name in referenced:
            if flowchart.window_of(name):
                return None

    carry = Index(Name(target.name), [BinOp("-", Name(desc.index), IntLit(1))])
    is_float = elem_kind == "real"

    def is_carry(e: Expr) -> bool:
        return expr_equal(e, carry)

    def target_free(e: Expr) -> bool:
        return target.name not in names_in(e)

    def info(kind: str, op: str | None, b: Expr, a: Expr | None = None) -> ScanInfo:
        return ScanInfo(kind, op, target.name, eq.label, is_float, b, a)

    rhs = eq.rhs
    if isinstance(rhs, Call) and rhs.func in ("min", "max") and len(rhs.args) == 2:
        x, y = rhs.args
        if is_carry(x) and target_free(y):
            return info("scan", rhs.func, y)
        if is_carry(y) and target_free(x):
            return info("scan", rhs.func, x)
        return None
    if not isinstance(rhs, BinOp):
        return None
    if rhs.op in ("+", "*"):
        for c, other in ((rhs.left, rhs.right), (rhs.right, rhs.left)):
            if is_carry(c) and target_free(other):
                return info("scan", rhs.op, other)
        if rhs.op == "+":
            # x[i-1] buried one level down inside a product: linear recurrence.
            for mul, other in ((rhs.left, rhs.right), (rhs.right, rhs.left)):
                if (isinstance(mul, BinOp) and mul.op == "*"
                        and target_free(other)):
                    for c, coeff in ((mul.left, mul.right), (mul.right, mul.left)):
                        if is_carry(c) and target_free(coeff):
                            return info("linrec", None, other, coeff)
        return None
    if rhs.op == "-" and is_carry(rhs.left) and target_free(rhs.right):
        # x - b is x + (-b): reuse the additive scan kernels.
        return info("scan", "+", UnOp("-", rhs.right))
    return None


def scan_loops(analyzed, flowchart: Flowchart,
               use_windows: bool) -> dict[tuple[int, ...], ScanInfo]:
    """Every recognized ``DO`` loop keyed by its descriptor path, memoized
    per window mode on the flowchart (same discipline as
    ``pipeline_groups``)."""
    memo = getattr(flowchart, "_scan_loops", None)
    if memo is None:
        memo = {}
        flowchart._scan_loops = memo
    key = bool(use_windows)
    if key in memo:
        return memo[key]
    found: dict[tuple[int, ...], ScanInfo] = {}
    for desc in flowchart.loops():
        if desc.parallel:
            continue
        info = _classify(analyzed, flowchart, desc, key)
        if info is not None:
            path = flowchart.path_of(desc)
            if path is not None:
                found[path] = info
    # Fission replicas: a split can leave a lone recurrence in its own
    # replica loop, which is exactly the shape the scan engine wants.
    # Replicas key by their marker paths (lazy import: fission also rides
    # the dependence-graph machinery).
    from repro.schedule.fission import fission_splits

    for lpath, split in fission_splits(analyzed, flowchart).items():
        if not split.usable(key):
            continue
        for k, piece in enumerate(split.pieces):
            if piece.parallel:
                continue
            info = _classify(analyzed, flowchart, piece, key)
            if info is not None:
                found[lpath + (-1, k)] = info
    memo[key] = found
    return found


def scan_info(analyzed, flowchart: Flowchart, desc: LoopDescriptor,
              use_windows: bool) -> ScanInfo | None:
    """The :class:`ScanInfo` for one loop, or ``None`` if unrecognized."""
    path = flowchart.path_of(desc)
    if path is None:
        return None
    return scan_loops(analyzed, flowchart, use_windows).get(path)
