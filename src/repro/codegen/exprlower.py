"""Shared expression lowering: normalised PS expressions -> Python source.

Both code paths that turn equations into executable Python — the whole-module
generator (:mod:`repro.codegen.pygen`) and the runtime kernel emitter
(:mod:`repro.runtime.kernels.emit`) — walk the same AST and agree on the
skeleton of the translation (literals, operator spellings, parenthesisation).
Factoring the walk here guarantees they cannot drift apart structurally: a
dialect only overrides the *hooks* (name resolution, array references,
builtin calls, and the handful of operators whose runtime semantics differ
between scalar Python, NumPy, and the reference evaluator).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.ps.ast import (
    BinOp,
    BoolLit,
    Call,
    Expr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    Name,
    RealLit,
    UnOp,
)

#: Operators whose Python spelling is shared by every dialect.
INFIX_OPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "=": "==",
    "<>": "!=",
}


class ExprLowerer:
    """The shared walk. Subclasses provide a dialect via the hook methods.

    The default hook implementations lower to plain scalar Python (lazy
    ``if``, ``and``/``or`` short-circuit, ``//`` and ``%``), which is the
    dialect the whole-module Python generator needs.
    """

    #: exception type raised on unsupported constructs
    error_type: type[ReproError] = ReproError

    def error(self, message: str) -> ReproError:
        return self.error_type(message)

    # -- the walk ----------------------------------------------------------

    def lower(self, expr: Expr) -> str:
        if isinstance(expr, IntLit):
            return str(expr.value)
        if isinstance(expr, RealLit):
            return repr(expr.value)
        if isinstance(expr, BoolLit):
            return "True" if expr.value else "False"
        if isinstance(expr, Name):
            return self.lower_name(expr.ident)
        if isinstance(expr, Index):
            if isinstance(expr.base, Name):
                return self.lower_array_ref(expr.base.ident, expr.subscripts)
            raise self.error("indexing of computed values is not supported")
        if isinstance(expr, BinOp):
            return self.lower_binop(expr)
        if isinstance(expr, UnOp):
            return self.lower_unop(expr)
        if isinstance(expr, IfExpr):
            return self.lower_if(expr)
        if isinstance(expr, Call):
            return self.lower_call(expr)
        if isinstance(expr, FieldRef):
            raise self.error("record fields are not supported")
        raise self.error(f"cannot lower {type(expr).__name__}")

    # -- dialect hooks -----------------------------------------------------

    def lower_name(self, ident: str) -> str:
        raise NotImplementedError

    def lower_array_ref(self, name: str, subscripts: list[Expr]) -> str:
        raise NotImplementedError

    def lower_call(self, expr: Call) -> str:
        raise NotImplementedError

    def lower_binop(self, expr: BinOp) -> str:
        left = self.lower(expr.left)
        right = self.lower(expr.right)
        op = expr.op
        if op == "/":
            return self.lower_div(left, right)
        if op == "div":
            return self.lower_floordiv(left, right)
        if op == "mod":
            return self.lower_mod(left, right)
        if op in ("and", "or"):
            return self.lower_logical(op, left, right)
        return f"({left} {INFIX_OPS[op]} {right})"

    def lower_unop(self, expr: UnOp) -> str:
        operand = self.lower(expr.operand)
        if expr.op == "not":
            return self.lower_not(operand)
        return f"({expr.op}{operand})"

    # The operators below differ between dialects (scalar Python vs NumPy vs
    # the reference evaluator's runtime dispatch); the defaults are the plain
    # scalar-Python forms used by the whole-module generator.

    def lower_div(self, left: str, right: str) -> str:
        return f"({left} / {right})"

    def lower_floordiv(self, left: str, right: str) -> str:
        return f"({left} // {right})"

    def lower_mod(self, left: str, right: str) -> str:
        return f"({left} % {right})"

    def lower_logical(self, op: str, left: str, right: str) -> str:
        return f"({left} {op} {right})"

    def lower_not(self, operand: str) -> str:
        return f"(not {operand})"

    def lower_if(self, expr: IfExpr) -> str:
        return (
            f"({self.lower(expr.then)} if {self.lower(expr.cond)} "
            f"else {self.lower(expr.orelse)})"
        )
