"""Identifier mangling shared by the code generators."""

from __future__ import annotations

_C_KEYWORDS = {
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if", "int",
    "long", "register", "return", "short", "signed", "sizeof", "static",
    "struct", "switch", "typedef", "union", "unsigned", "void", "volatile",
    "while",
}

_PY_KEYWORDS = {
    "False", "None", "True", "and", "as", "assert", "async", "await",
    "break", "class", "continue", "def", "del", "elif", "else", "except",
    "finally", "for", "from", "global", "if", "import", "in", "is",
    "lambda", "nonlocal", "not", "or", "pass", "raise", "return", "try",
    "while", "with", "yield", "np",
}


def c_name(name: str) -> str:
    mangled = name.replace(".", "_").replace("'", "p")
    if mangled in _C_KEYWORDS:
        mangled += "_"
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def py_name(name: str) -> str:
    mangled = name.replace(".", "_").replace("'", "p")
    if mangled in _PY_KEYWORDS:
        mangled += "_"
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled
