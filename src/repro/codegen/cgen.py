"""C code generation (paper section 3.4 and the code-generator component).

"The code generation phase generates C declarations and assignment
statements. For each variable ... an equivalent C declaration is generated.
Then, using the flowchart, the code generator emits for loops and assignment
statements." Loops carry the iterative/concurrent annotation; a concurrent
loop additionally gets an OpenMP pragma so the output compiles into a real
parallel program on a modern toolchain.

Virtual dimensions are allocated as windows and indexed modulo the window
size, "directing the code generator to allocate only two instances rather
than maxK instances".
"""

from __future__ import annotations

from repro.codegen.clower import C_PRELUDE
from repro.codegen.naming import c_name
from repro.errors import CodegenError
from repro.ps.ast import (
    BinOp,
    BoolLit,
    Call,
    Expr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    Name,
    RealLit,
    UnOp,
)
from repro.ps.printer import format_expression
from repro.ps.semantics import AnalyzedModule
from repro.ps.symbols import SymbolKind
from repro.ps.types import ArrayType, BoolType, IntType, RealType, SubrangeType
from repro.schedule.flowchart import Descriptor, Flowchart, LoopDescriptor, NodeDescriptor
from repro.schedule.scheduler import schedule_module

_C_TYPES = {"real": "double", "int": "long", "bool": "int"}

_BUILTIN_C = {
    "abs": "fabs",
    "sqrt": "sqrt",
    "sin": "sin",
    "cos": "cos",
    "tan": "tan",
    "exp": "exp",
    "ln": "log",
    "log": "log",
    # NaN-propagating helpers from the shared C prelude: np.minimum /
    # np.maximum propagate NaN, C's fmin/fmax suppress it.
    "min": "ps_min",
    "max": "ps_max",
    "floor": "floor",
    "ceil": "ceil",
    "trunc": "trunc",
    "round": "round",
}


class CGenerator:
    def __init__(
        self,
        analyzed: AnalyzedModule,
        flowchart: Flowchart | None = None,
        use_windows: bool = True,
        emit_openmp: bool = True,
    ):
        self.analyzed = analyzed
        self.flowchart = flowchart or schedule_module(analyzed)
        self.use_windows = use_windows
        self.emit_openmp = emit_openmp
        self.lines: list[str] = []
        self.indent = 0
        self._extent_vars: dict[str, list[str]] = {}  # array -> extent var names

    # -- emission helpers -----------------------------------------------------

    def _emit(self, text: str = "") -> None:
        self.lines.append(("    " * self.indent + text) if text else "")

    def _ctype(self, t) -> str:
        if t == RealType:
            return "double"
        if t == BoolType:
            return "int"
        if t == IntType or isinstance(t, SubrangeType):
            return "long"
        from repro.ps.types import EnumType

        if isinstance(t, EnumType):
            return "int"
        raise CodegenError(f"no C type for {t}")

    # -- top level -----------------------------------------------------------

    def generate(self) -> str:
        mod = self.analyzed.module
        self._emit(f"/* Generated from PS module {mod.name} (Gokhale-1987 scheduler). */")
        self._emit("#include <stdlib.h>")
        for line in C_PRELUDE.splitlines():
            self._emit(line)
        self._emit()
        self._signature()
        self._emit("{")
        self.indent += 1
        self._declarations()
        self._emit()
        for desc in self.flowchart.descriptors:
            self._descriptor(desc)
        self._frees()
        self.indent -= 1
        self._emit("}")
        return "\n".join(self.lines) + "\n"

    def _signature(self) -> None:
        mod = self.analyzed.module
        params = []
        for p in mod.params:
            sym = self.analyzed.symbol(p.name)
            if isinstance(sym.type, ArrayType):
                params.append(f"const {self._ctype(sym.type.element)} *{c_name(p.name)}")
            else:
                params.append(f"{self._ctype(sym.type)} {c_name(p.name)}")
        for r in mod.results:
            sym = self.analyzed.symbol(r.name)
            if isinstance(sym.type, ArrayType):
                params.append(f"{self._ctype(sym.type.element)} *{c_name(r.name)}")
            else:
                params.append(f"{self._ctype(sym.type)} *{c_name(r.name)}")
        args = ",\n    ".join(params) if params else "void"
        self._emit(f"void {c_name(mod.name)}(")
        self._emit(f"    {args})")

    def _declarations(self) -> None:
        """Extent variables for every array dimension plus local arrays
        (window-allocated where the scheduler marked dimensions virtual)."""
        for sym in self.analyzed.table.symbols.values():
            if not isinstance(sym.type, ArrayType):
                if sym.kind is SymbolKind.VAR:
                    self._emit(f"{self._ctype(sym.type)} {c_name(sym.name)};")
                continue
            names = []
            for d, sub in enumerate(sym.type.dims):
                lo = self._expr(sub.lo)
                hi = self._expr(sub.hi)
                lo_var = f"{c_name(sym.name)}_lo{d}"
                ext_var = f"{c_name(sym.name)}_n{d}"
                self._emit(f"const long {lo_var} = {lo};")
                self._emit(f"const long {ext_var} = ({hi}) - ({lo}) + 1;")
                names.append(ext_var)
            self._extent_vars[sym.name] = names
            if sym.kind is SymbolKind.VAR:
                windows = self._windows_of(sym.name)
                dims = []
                for d, ext in enumerate(names):
                    if d in windows:
                        self._emit(
                            f"/* dimension {d} of {sym.name} is virtual: "
                            f"window of {windows[d]} */"
                        )
                        dims.append(str(windows[d]))
                    else:
                        dims.append(ext)
                size = " * ".join(dims)
                ctype = self._ctype(sym.type.element)
                self._emit(
                    f"{ctype} *{c_name(sym.name)} = "
                    f"({ctype} *)malloc(sizeof({ctype}) * {size});"
                )

    def _frees(self) -> None:
        self._emit()
        for sym in self.analyzed.table.symbols.values():
            if sym.kind is SymbolKind.VAR and isinstance(sym.type, ArrayType):
                self._emit(f"free({c_name(sym.name)});")

    def _windows_of(self, name: str) -> dict[int, int]:
        return self.flowchart.window_of(name) if self.use_windows else {}

    # -- flowchart walking ----------------------------------------------------

    def _descriptor(self, desc: Descriptor) -> None:
        if isinstance(desc, NodeDescriptor):
            if desc.node.is_equation:
                self._equation(desc.node.equation)
            return
        assert isinstance(desc, LoopDescriptor)
        idx = c_name(desc.index)
        lo = self._expr(desc.subrange.lo)
        hi = self._expr(desc.subrange.hi)
        if desc.parallel:
            self._emit("/* concurrent for */")
            if self.emit_openmp:
                self._emit("#pragma omp parallel for")
        else:
            self._emit("/* iterative for */")
        self._emit(f"for (long {idx} = {lo}; {idx} <= {hi}; {idx}++) {{")
        self.indent += 1
        for d in desc.body:
            self._descriptor(d)
        self.indent -= 1
        self._emit("}")

    def _equation(self, eq) -> None:
        if eq.atomic:
            raise CodegenError(
                f"{eq.label}: multi-result module calls are not supported by "
                f"the C generator"
            )
        self._emit(f"/* {eq.label}: {format_expression(eq.rhs)[:60]} */")
        target = eq.targets[0]
        sym = self.analyzed.symbol(target.name)
        value = self._expr(eq.rhs)
        if isinstance(sym.type, ArrayType):
            ref = self._array_ref(target.name, target.subscripts)
            self._emit(f"{ref} = {value};")
        elif sym.kind is SymbolKind.RESULT:
            self._emit(f"*{c_name(target.name)} = {value};")
        else:
            self._emit(f"{c_name(target.name)} = {value};")

    # -- expressions ------------------------------------------------------------

    def _array_ref(self, name: str, subscripts: list[Expr]) -> str:
        sym = self.analyzed.symbol(name)
        assert isinstance(sym.type, ArrayType)
        windows = self._windows_of(name) if sym.kind is SymbolKind.VAR else {}
        exts = self._extent_vars[name]
        parts = []
        for d, sub in enumerate(subscripts):
            rel = f"(({self._expr(sub)}) - {c_name(name)}_lo{d})"
            if d in windows:
                rel = f"({rel} % {windows[d]})"
            parts.append(rel)
        # Row-major flattening.
        flat = parts[0]
        for d in range(1, len(parts)):
            dim_size = str(windows[d]) if d in windows else exts[d]
            flat = f"({flat} * {dim_size} + {parts[d]})"
        return f"{c_name(name)}[{flat}]"

    def _expr(self, expr: Expr) -> str:
        if isinstance(expr, IntLit):
            return str(expr.value)
        if isinstance(expr, RealLit):
            return repr(expr.value)
        if isinstance(expr, BoolLit):
            return "1" if expr.value else "0"
        if isinstance(expr, Name):
            sym = self.analyzed.table.symbol(expr.ident)
            if sym is not None and sym.kind is SymbolKind.RESULT and not isinstance(
                sym.type, ArrayType
            ):
                return f"(*{c_name(expr.ident)})"
            if expr.ident in self.analyzed.table.enum_members:
                _, ordinal = self.analyzed.table.enum_members[expr.ident]
                return str(ordinal)
            return c_name(expr.ident)
        if isinstance(expr, Index):
            if isinstance(expr.base, Name) and self.analyzed.table.symbol(
                expr.base.ident
            ):
                return self._array_ref(expr.base.ident, expr.subscripts)
            raise CodegenError("indexing of computed values is not supported in C")
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, UnOp):
            op = {"-": "-", "+": "+", "not": "!"}[expr.op]
            return f"({op}{self._expr(expr.operand)})"
        if isinstance(expr, IfExpr):
            return (
                f"({self._expr(expr.cond)} ? {self._expr(expr.then)} "
                f": {self._expr(expr.orelse)})"
            )
        if isinstance(expr, Call):
            if expr.func in _BUILTIN_C:
                args = ", ".join(self._expr(a) for a in expr.args)
                return f"{_BUILTIN_C[expr.func]}({args})"
            raise CodegenError(
                f"module call {expr.func!r} is not supported by the "
                f"single-module C generator"
            )
        if isinstance(expr, FieldRef):
            raise CodegenError("record fields are not supported by the C generator")
        raise CodegenError(f"cannot generate C for {type(expr).__name__}")

    def _binop(self, expr: BinOp) -> str:
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        op = expr.op
        if op == "/":
            return f"((double)({left}) / (double)({right}))"
        # PS div/mod are *floored* (the reference evaluator follows Python);
        # C's native / and % truncate toward zero, which disagrees on
        # negative operands — the dormant generator emitted them anyway.
        if op == "div":
            return f"ps_fdiv({left}, {right})"
        if op == "mod":
            return f"ps_mod({left}, {right})"
        c_op = {
            "+": "+",
            "-": "-",
            "*": "*",
            "=": "==",
            "<>": "!=",
            "<": "<",
            "<=": "<=",
            ">": ">",
            ">=": ">=",
            "and": "&&",
            "or": "||",
        }[op]
        return f"({left} {c_op} {right})"


def generate_c(
    analyzed: AnalyzedModule,
    flowchart: Flowchart | None = None,
    use_windows: bool = True,
    emit_openmp: bool = True,
) -> str:
    """Emit annotated C for a scheduled module."""
    return CGenerator(analyzed, flowchart, use_windows, emit_openmp).generate()
