"""Python code generation: a standalone function per module.

The generated function mirrors the flowchart exactly (``DO`` and ``DOALL``
both become ``for`` loops, annotated in comments), allocates virtual
dimensions as windows, and uses NumPy arrays with origin-shifted indexing.
It is exec'd and cross-checked against the interpreter in the tests —
generated code and reference semantics must agree bit for bit.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.codegen.exprlower import ExprLowerer
from repro.codegen.naming import py_name
from repro.errors import CodegenError
from repro.ps.ast import Call, Expr
from repro.ps.semantics import AnalyzedModule, is_builtin
from repro.ps.symbols import SymbolKind
from repro.ps.types import ArrayType, BoolType, RealType
from repro.schedule.flowchart import (
    Descriptor,
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
)
from repro.schedule.scheduler import schedule_module

_BUILTIN_PY = {
    "abs": "abs",
    "sqrt": "math.sqrt",
    "sin": "math.sin",
    "cos": "math.cos",
    "tan": "math.tan",
    "exp": "math.exp",
    "ln": "math.log",
    "log": "math.log",
    "min": "min",
    "max": "max",
    "floor": "math.floor",
    "ceil": "math.ceil",
    "trunc": "math.trunc",
    "round": "round",
}


class _PygenLowerer(ExprLowerer):
    """The whole-module dialect: plain scalar Python over ``math``, mangled
    identifiers, and origin-shifted (optionally windowed) array indexing."""

    error_type = CodegenError

    def __init__(self, generator: PyGenerator):
        self.generator = generator

    def lower_name(self, ident: str) -> str:
        table = self.generator.analyzed.table
        if ident in table.enum_members:
            _, ordinal = table.enum_members[ident]
            return str(ordinal)
        return py_name(ident)

    def lower_array_ref(self, name: str, subscripts: list[Expr]) -> str:
        if not self.generator.analyzed.table.symbol(name):
            raise self.error("indexing of computed values is not supported")
        return self.generator._array_ref(name, subscripts)

    def lower_call(self, expr: Call) -> str:
        if is_builtin(expr.func):
            args = ", ".join(self.lower(a) for a in expr.args)
            return f"{_BUILTIN_PY[expr.func]}({args})"
        raise self.error(
            f"module call {expr.func!r} is not supported by the "
            f"single-module Python generator"
        )


class PyGenerator:
    def __init__(
        self,
        analyzed: AnalyzedModule,
        flowchart: Flowchart | None = None,
        use_windows: bool = True,
    ):
        self.analyzed = analyzed
        self.flowchart = flowchart or schedule_module(analyzed)
        self.use_windows = use_windows
        self.lines: list[str] = []
        self.indent = 0
        self.lowerer = _PygenLowerer(self)

    def _emit(self, text: str = "") -> None:
        self.lines.append(("    " * self.indent + text) if text else "")

    def generate(self) -> str:
        mod = self.analyzed.module
        fname = py_name(mod.name)
        params = ", ".join(py_name(p.name) for p in mod.params)
        self._emit("import math")
        self._emit("import numpy as np")
        self._emit()
        self._emit(f"def {fname}({params}):")
        self.indent += 1
        self._emit(f'"""Generated from PS module {mod.name}."""')
        self._declarations()
        for desc in self.flowchart.descriptors:
            self._descriptor(desc)
        results = ", ".join(py_name(r.name) for r in mod.results)
        self._emit(f"return {results}")
        self.indent -= 1
        return "\n".join(self.lines) + "\n"

    def _dtype(self, t) -> str:
        if t == RealType:
            return "np.float64"
        if t == BoolType:
            return "np.bool_"
        return "np.int64"

    def _declarations(self) -> None:
        for sym in self.analyzed.table.symbols.values():
            if not isinstance(sym.type, ArrayType):
                continue
            name = py_name(sym.name)
            for d, sub in enumerate(sym.type.dims):
                self._emit(f"{name}_lo{d} = {self._expr(sub.lo)}")
                self._emit(
                    f"{name}_n{d} = ({self._expr(sub.hi)}) - ({self._expr(sub.lo)}) + 1"
                )
            if sym.kind is SymbolKind.PARAM:
                continue
            windows = self._windows_of(sym.name)
            dims = []
            for d in range(sym.type.rank):
                if d in windows:
                    dims.append(str(windows[d]))
                else:
                    dims.append(f"{name}_n{d}")
            if windows:
                self._emit(
                    f"# window allocation: "
                    + ", ".join(f"dim {d} -> {w} planes" for d, w in windows.items())
                )
            self._emit(
                f"{name} = np.zeros(({', '.join(dims)},), dtype={self._dtype(sym.type.element)})"
            )

    def _windows_of(self, name: str) -> dict[int, int]:
        if not self.use_windows:
            return {}
        sym = self.analyzed.symbol(name)
        if sym.kind is not SymbolKind.VAR:
            return {}
        return self.flowchart.window_of(name)

    def _descriptor(self, desc: Descriptor) -> None:
        if isinstance(desc, NodeDescriptor):
            if desc.node.is_equation:
                self._equation(desc.node.equation)
            return
        assert isinstance(desc, LoopDescriptor)
        idx = py_name(desc.index)
        lo = self._expr(desc.subrange.lo)
        hi = self._expr(desc.subrange.hi)
        kind = "DOALL (concurrent)" if desc.parallel else "DO (iterative)"
        self._emit(f"# {kind}")
        self._emit(f"for {idx} in range({lo}, ({hi}) + 1):")
        self.indent += 1
        if not desc.body:
            self._emit("pass")
        for d in desc.body:
            self._descriptor(d)
        self.indent -= 1

    def _equation(self, eq) -> None:
        if eq.atomic:
            raise CodegenError(
                f"{eq.label}: multi-result module calls are not supported by "
                f"the Python generator"
            )
        self._emit(f"# {eq.label}")
        target = eq.targets[0]
        sym = self.analyzed.symbol(target.name)
        value = self._expr(eq.rhs)
        if isinstance(sym.type, ArrayType):
            self._emit(f"{self._array_ref(target.name, target.subscripts)} = {value}")
        else:
            self._emit(f"{py_name(target.name)} = {value}")

    def _array_ref(self, name: str, subscripts: list[Expr]) -> str:
        pname = py_name(name)
        windows = self._windows_of(name)
        parts = []
        for d, sub in enumerate(subscripts):
            rel = f"({self._expr(sub)}) - {pname}_lo{d}"
            if d in windows:
                rel = f"({rel}) % {windows[d]}"
            parts.append(rel)
        return f"{pname}[{', '.join(parts)}]"

    def _expr(self, expr: Expr) -> str:
        return self.lowerer.lower(expr)


def generate_python(
    analyzed: AnalyzedModule,
    flowchart: Flowchart | None = None,
    use_windows: bool = True,
) -> str:
    """Emit standalone Python source for a scheduled module."""
    return PyGenerator(analyzed, flowchart, use_windows).generate()


def compile_python(
    analyzed: AnalyzedModule,
    flowchart: Flowchart | None = None,
    use_windows: bool = True,
) -> Callable:
    """Generate, exec, and return the module as a callable."""
    source = generate_python(analyzed, flowchart, use_windows)
    namespace: dict = {}
    exec(compile(source, f"<pygen:{analyzed.name}>", "exec"), namespace)
    return namespace[py_name(analyzed.name)]
