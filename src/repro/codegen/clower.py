"""Shared C expression lowering: normalised PS expressions -> C statements.

The native kernel tier (:mod:`repro.runtime.kernels.native`) and the
whole-module C generator (:mod:`repro.codegen.cgen`) both translate PS
expressions to C. The pieces they must agree on live here:

* :data:`C_PRELUDE` — the runtime helper functions every generated
  translation unit includes. ``ps_fdiv``/``ps_mod`` implement *floored*
  integer division and modulo (PS ``div``/``mod`` follow the reference
  evaluator, i.e. Python semantics — C's truncated ``/``/``%`` disagree on
  negative operands); ``ps_div`` replicates the scalar evaluator's
  division-by-zero rule (signed infinity); ``ps_min``/``ps_max`` propagate
  NaN exactly like ``np.minimum``/``np.maximum`` (C's ``fmin``/``fmax``
  *suppress* NaN instead).
* :class:`CExprLowerer` — a statement-emitting dialect of the shared
  expression walk (:class:`repro.codegen.exprlower.ExprLowerer`). Unlike
  the string-only dialects, this one may emit *statements* into the current
  block: a conditional lowers to a real ``if``/``else`` so the untaken
  branch is never evaluated (the reference evaluator's lazy semantics —
  a C ternary would do, but range-checked array reads need statements), and
  ``and``/``or`` short-circuit the same way.

Bit-exactness ground rules baked in here: only operations whose IEEE-754
behaviour is identical between NumPy and C are emitted (add/sub/mul/div,
sqrt, fabs, floored div/mod, NaN-propagating min/max, floor/ceil/trunc and
half-even round via ``nearbyint``). Transcendental builtins (sin, cos, tan,
exp, ln/log) are rejected: NumPy's SIMD implementations are not guaranteed
to round identically to libm, and the native tier must agree with the
evaluator bit for bit. Compilations must disable FP contraction
(``-ffp-contract=off``) — see :data:`C_FLAGS`.
"""

from __future__ import annotations

from repro.codegen.exprlower import ExprLowerer
from repro.ps.ast import (
    BinOp,
    BoolLit,
    Call,
    Expr,
    IfExpr,
    Index,
    IntLit,
    Name,
    RealLit,
    UnOp,
)
from repro.ps.types import (
    ArrayType,
    BoolType,
    EnumType,
    IntType,
    RealType,
    SubrangeType,
)

#: compile flags any bit-exact build of generated C must use: no FMA
#: contraction, no fast-math reassociation, and defined two's-complement
#: wraparound for signed integers (``-fwrapv``) — NumPy int64 arithmetic
#: wraps, and without the flag signed overflow is undefined behaviour
C_FLAGS = ("-O2", "-fPIC", "-ffp-contract=off", "-fno-fast-math", "-fwrapv")

#: storage C types per PS element kind (NumPy dtypes: float64/int64/bool_)
C_STORAGE_TYPES = {"real": "double", "int": "int64_t", "bool": "uint8_t"}

#: computation C types per PS value kind
C_VALUE_TYPES = {"real": "double", "int": "int64_t", "bool": "int64_t"}

#: builtins the bit-exact C dialect supports, per operand kind; everything
#: else (transcendentals, whose NumPy SIMD rounding may differ from libm)
#: must stay on the Python tiers
NATIVE_BUILTINS = {
    "abs", "sqrt", "min", "max", "floor", "ceil", "trunc", "round",
}

C_PRELUDE = """\
#include <math.h>
#include <stdint.h>
typedef int64_t i64;

/* PS '/' with the scalar evaluator's semantics: IEEE division, except a
   zero divisor yields a signed infinity (sign taken from the dividend;
   NaN compares false against 0 and lands on -inf, like Python). */
static double ps_div(double a, double b) {
    if (b != 0.0) return a / b;
    return a >= 0.0 ? INFINITY : -INFINITY;
}
/* Floored integer division/modulo (Python semantics; C truncates). */
static i64 ps_fdiv(i64 a, i64 b) {
    i64 q = a / b;
    if ((a % b) != 0 && ((a < 0) != (b < 0))) q--;
    return q;
}
static i64 ps_mod(i64 a, i64 b) {
    i64 r = a % b;
    if (r != 0 && ((a < 0) != (b < 0))) r += b;
    return r;
}
/* NaN-propagating min/max (np.minimum/np.maximum; fmin/fmax suppress). */
static double ps_min(double a, double b) {
    if (a != a) return a;
    if (b != b) return b;
    return a < b ? a : b;
}
static double ps_max(double a, double b) {
    if (a != a) return a;
    if (b != b) return b;
    return a > b ? a : b;
}
static i64 ps_min_i(i64 a, i64 b) { return a < b ? a : b; }
static i64 ps_max_i(i64 a, i64 b) { return a > b ? a : b; }
static i64 ps_abs_i(i64 a) { return a < 0 ? -a : a; }
"""


def kind_of_type(t) -> str:
    """"real" | "int" | "bool" for a PS scalar type (arrays: element)."""
    if isinstance(t, ArrayType):
        t = t.element
    if t == RealType:
        return "real"
    if t == BoolType:
        return "bool"
    if t == IntType or isinstance(t, (SubrangeType, EnumType)):
        return "int"
    raise ValueError(f"no C kind for {t}")


class CExprLowerer(ExprLowerer):
    """Statement-emitting C dialect of the shared expression walk.

    ``lower(expr)`` returns a C rvalue string, possibly after appending
    statements to :attr:`lines` (array-reference range checks, ``if``/
    ``else`` blocks, short-circuit logicals). Subclasses supply symbol
    resolution via :meth:`lower_name` / :meth:`lower_array_ref` (which may
    call :meth:`stmt` and :meth:`fresh` themselves).

    The lowerer also *types* every expression (:meth:`kind`) so that C's
    static typing reproduces the evaluator's dynamic dispatch: integer
    ``div``/``mod`` pick the floored helpers, ``abs``/``min``/``max`` pick
    the width-correct variant, and conditionals declare a temp of the
    joined branch type.
    """

    def __init__(self, analyzed, index_names: set[str]):
        self.analyzed = analyzed
        self.index_names = set(index_names)
        self.lines: list[str] = []
        self.indent = 1
        self._tmp = 0

    # -- emission helpers --------------------------------------------------

    def stmt(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def fresh(self, prefix: str = "_t") -> str:
        self._tmp += 1
        return f"{prefix}{self._tmp}"

    def truth(self, code: str, expr: Expr) -> str:
        """A C condition with Python truthiness (NaN is truthy)."""
        if self.kind(expr) == "bool":
            return f"({code})"
        return f"(({code}) != 0)"

    # -- static typing -----------------------------------------------------

    def kind(self, expr: Expr) -> str:
        """"real" | "int" | "bool" — the value kind ``expr`` evaluates to."""
        if isinstance(expr, IntLit):
            return "int"
        if isinstance(expr, RealLit):
            return "real"
        if isinstance(expr, BoolLit):
            return "bool"
        if isinstance(expr, Name):
            if expr.ident in self.index_names:
                return "int"
            sym = self.analyzed.table.symbol(expr.ident)
            if sym is not None:
                return kind_of_type(sym.type)
            if expr.ident in self.analyzed.table.enum_members:
                return "int"
            raise self.error(f"unbound name {expr.ident!r}")
        if isinstance(expr, Index):
            if not isinstance(expr.base, Name):
                raise self.error("indexing of computed values")
            sym = self.analyzed.table.symbol(expr.base.ident)
            if sym is None or not isinstance(sym.type, ArrayType):
                raise self.error(f"not an array: {expr.base.ident!r}")
            return kind_of_type(sym.type)
        if isinstance(expr, BinOp):
            if expr.op in ("<", "<=", ">", ">=", "=", "<>", "and", "or"):
                return "bool"
            if expr.op == "/":
                return "real"
            if expr.op in ("div", "mod"):
                return self._join(expr.left, expr.right)
            return self._join(expr.left, expr.right)
        if isinstance(expr, UnOp):
            if expr.op == "not":
                return "bool"
            k = self.kind(expr.operand)
            return "int" if k == "bool" else k
        if isinstance(expr, IfExpr):
            a, b = self.kind(expr.then), self.kind(expr.orelse)
            if a == b:
                return a
            if {a, b} <= {"real", "int"}:
                return "real"
            return "real" if "real" in (a, b) else "int"
        if isinstance(expr, Call):
            return self.call_kind(expr)
        raise self.error(f"cannot type {type(expr).__name__}")

    def _join(self, left: Expr, right: Expr) -> str:
        a, b = self.kind(left), self.kind(right)
        if "real" in (a, b):
            return "real"
        return "int"

    def call_kind(self, expr: Call) -> str:
        fn = expr.func
        if fn in ("floor", "ceil", "trunc", "round"):
            return "int"
        if fn == "sqrt":
            return "real"
        if fn in ("abs", "min", "max"):
            ks = [self.kind(a) for a in expr.args]
            return "real" if "real" in ks else "int"
        raise self.error(f"builtin {fn!r} is not bit-exact in C")

    def value_ctype(self, expr: Expr) -> str:
        return C_VALUE_TYPES[self.kind(expr)]

    # -- dialect hooks -----------------------------------------------------

    def lower_div(self, left: str, right: str) -> str:
        return f"ps_div((double)({left}), (double)({right}))"

    def _int_only(self, op: str, expr_l, expr_r) -> None:
        if self.kind(expr_l) == "real" or self.kind(expr_r) == "real":
            raise self.error(f"{op!r} on real operands is not supported in C")

    def lower_binop(self, expr) -> str:
        # div/mod need operand *types*, which the string-level hooks cannot
        # see — intercept here and delegate everything else to the walk.
        if expr.op in ("div", "mod"):
            self._int_only(expr.op, expr.left, expr.right)
            left = self.lower(expr.left)
            right = self.lower(expr.right)
            helper = "ps_fdiv" if expr.op == "div" else "ps_mod"
            return f"{helper}({left}, {right})"
        return super().lower_binop(expr)

    def lower_logical(self, op: str, left: str, right: str) -> str:
        raise AssertionError("handled in lower_binop via statements")

    def lower_binop_logical(self, expr) -> str:
        tmp = self.fresh("_b")
        left = self.lower(expr.left)
        self.stmt(f"int64_t {tmp} = {self.truth(left, expr.left)};")
        opener = f"if ({tmp}) {{" if expr.op == "and" else f"if (!{tmp}) {{"
        self.stmt(opener)
        self.indent += 1
        right = self.lower(expr.right)
        self.stmt(f"{tmp} = {self.truth(right, expr.right)};")
        self.indent -= 1
        self.stmt("}")
        return tmp

    def lower(self, expr: Expr) -> str:
        if isinstance(expr, BinOp) and expr.op in ("and", "or"):
            return self.lower_binop_logical(expr)
        return super().lower(expr)

    def lower_not(self, operand: str) -> str:
        return f"(!({operand} != 0))"

    def lower_if(self, expr: IfExpr) -> str:
        """A real ``if``/``else`` block: the untaken branch (and its range
        checks) is never evaluated — the reference lazy semantics."""
        ctype = C_VALUE_TYPES[self.kind(expr)]
        tmp = self.fresh("_v")
        self.stmt(f"{ctype} {tmp};")
        cond = self.lower(expr.cond)
        self.stmt(f"if {self.truth(cond, expr.cond)} {{")
        self.indent += 1
        then = self.lower(expr.then)
        self.stmt(f"{tmp} = ({ctype})({then});")
        self.indent -= 1
        self.stmt("} else {")
        self.indent += 1
        orelse = self.lower(expr.orelse)
        self.stmt(f"{tmp} = ({ctype})({orelse});")
        self.indent -= 1
        self.stmt("}")
        return tmp

    def lower_call(self, expr: Call) -> str:
        from repro.ps.semantics import is_builtin

        fn = expr.func
        if not is_builtin(fn):
            raise self.error(f"module call {fn!r} cannot run natively")
        if fn not in NATIVE_BUILTINS:
            raise self.error(f"builtin {fn!r} is not bit-exact in C")
        args = [self.lower(a) for a in expr.args]
        kinds = [self.kind(a) for a in expr.args]
        if fn == "abs":
            if kinds[0] == "real":
                return f"fabs({args[0]})"
            return f"ps_abs_i({args[0]})"
        if fn == "sqrt":
            return f"sqrt((double)({args[0]}))"
        if fn in ("min", "max"):
            if "real" in kinds:
                helper = "ps_min" if fn == "min" else "ps_max"
                return (
                    f"{helper}((double)({args[0]}), (double)({args[1]}))"
                )
            helper = "ps_min_i" if fn == "min" else "ps_max_i"
            return f"{helper}({args[0]}, {args[1]})"
        # floor/ceil/trunc/round: NumPy computes in float64 then casts to
        # int64 — mirror the double round-trip exactly. nearbyint under the
        # default rounding mode is round-half-even, matching np.round.
        cfn = {"floor": "floor", "ceil": "ceil", "trunc": "trunc",
               "round": "nearbyint"}[fn]
        return f"(i64){cfn}((double)({args[0]}))"

    def lower_name(self, ident: str) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def lower_array_ref(self, name, subscripts):  # pragma: no cover
        raise NotImplementedError
