"""Code generation from flowcharts.

``cgen`` emits the paper's artifact: C declarations and loops, each loop
annotated iterative/concurrent, with window allocation for virtual
dimensions. ``pygen`` emits an executable Python function used to cross-
check the interpreter (and to give downstream users standalone code).
"""

from repro.codegen.cgen import generate_c
from repro.codegen.pygen import compile_python, generate_python

__all__ = ["compile_python", "generate_c", "generate_python"]
