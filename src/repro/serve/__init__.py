"""The serve layer: a compile-once/run-many :class:`Session` and the
daemon/client pair that puts one behind a socket (``repro serve`` /
``repro client``). See :mod:`repro.serve.session` for the amortization
story and :mod:`repro.serve.wire` for the protocol."""

from repro.serve.client import ReproClient
from repro.serve.daemon import DaemonThread, ReproDaemon
from repro.serve.session import Session, SessionStats, fill_random_arrays

__all__ = [
    "DaemonThread",
    "ReproClient",
    "ReproDaemon",
    "Session",
    "SessionStats",
    "fill_random_arrays",
]
