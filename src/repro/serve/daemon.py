"""The ``repro serve`` daemon: a :class:`~repro.serve.session.Session`
behind a socket.

The asyncio loop owns only the transport — accept, read a line, write a
line. Every request body executes in a thread pool against one shared
warm session, so concurrent clients overlap wherever the session allows
(always for planning and in-process backends; process-pool runs serialise
on their backend). Two pressure valves bound a burst of clients:

* ``max_inflight`` requests execute at once (a semaphore over the
  executor), and
* at most ``max_queue`` more may wait; beyond that the daemon answers
  ``Overloaded`` immediately instead of buffering unboundedly.

Wire protocol: one JSON object per line (see :mod:`repro.serve.wire`).
Requests carry ``op`` plus op-specific fields; every response is either
``{"ok": true, "result": ...}`` or a structured error. A malformed line
gets a ``BadRequest`` error and the connection stays open — one bad
request must not kill a client's pipeline.

Supported ops: ``ping``, ``modules``, ``describe``, ``stats``, ``plan``,
``warm``, ``run``, ``shutdown``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
from typing import Any

from repro.errors import ReproError, SessionError
from repro.runtime.executor import ExecutionOptions
from repro.serve import wire
from repro.serve.session import Session, fill_random_arrays


class ReproDaemon:
    """Serve one warm :class:`Session` over TCP or a unix socket.

    Synchronous construction; :meth:`serve_forever` runs the asyncio loop
    until :meth:`request_shutdown` (or a client ``shutdown`` op). The
    session is owned: closing the daemon closes it, tearing down worker
    pools and unlinking every shared-memory segment.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: str | None = None,
        max_inflight: int = 8,
        max_queue: int = 32,
    ):
        self.session = session
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.max_inflight = max(1, int(max_inflight))
        self.max_queue = max(0, int(max_queue))
        self._sem = asyncio.Semaphore(self.max_inflight)
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_inflight,
            thread_name_prefix="repro-serve",
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._ready = threading.Event()
        self.address: tuple[str, int] | str | None = None

    # -- request handling --------------------------------------------------

    def _handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Execute one request synchronously (runs on the executor)."""
        op = request.get("op")
        if op == "ping":
            return wire.ok("pong")
        if op == "modules":
            return wire.ok(self.session.modules())
        if op == "stats":
            return wire.ok(self.session.stats().to_dict())
        if op == "describe":
            return wire.ok(self.session.describe(self._module_of(request)))
        if op == "plan":
            module = self._module_of(request)
            sizes = wire.decode_mapping(request.get("sizes") or {})
            plan = self.session.plan(module, sizes, **self._overrides(request))
            return wire.ok(
                {
                    "backend": plan.backend,
                    "workers": plan.workers,
                    "cycles": plan.cycles,
                    "strategies": [
                        list(pair) for pair in plan.strategies()
                    ],
                }
            )
        if op == "warm":
            module = request.get("module")
            if module is not None and not isinstance(module, str):
                raise _BadRequest("'module' must be a string")
            sizes = wire.decode_mapping(request.get("sizes") or {})
            report = self.session.warm(
                module, sizes or None, **self._overrides(request)
            )
            return wire.ok(report)
        if op == "run":
            module = self._module_of(request)
            raw = request.get("args")
            if not isinstance(raw, dict):
                raise _BadRequest("'args' must be an object")
            args = wire.decode_mapping(raw)
            if request.get("fill"):
                fill_random_arrays(
                    self.session.result_for(module).analyzed,
                    args,
                    seed=int(request.get("seed", 0)),
                )
            out = self.session.run(module, args, **self._overrides(request))
            return wire.ok(wire.encode_mapping(out))
        raise _BadRequest(f"unknown op {op!r}")

    def _module_of(self, request: dict[str, Any]) -> str:
        module = request.get("module")
        if not isinstance(module, str):
            raise _BadRequest("request needs a string 'module' field")
        if module not in self.session.modules():
            raise _UnknownModule(
                f"unknown module {module!r} "
                f"(serving: {', '.join(self.session.modules()) or 'none'})"
            )
        return module

    @staticmethod
    def _overrides(request: dict[str, Any]) -> dict[str, Any]:
        overrides = request.get("execution") or {}
        if not isinstance(overrides, dict):
            raise _BadRequest("'execution' must be an object of option overrides")
        try:
            ExecutionOptions.resolve(None, **overrides)
        except TypeError as exc:
            raise _BadRequest(str(exc)) from None
        return overrides

    # -- connection loop ---------------------------------------------------

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # over-long line or peer reset: nothing sane to answer on
                    break
                if not line:
                    break
                response = await self._respond(line)
                if response is _SHUTDOWN:
                    writer.write(_dumps(wire.ok("shutting down")))
                    await writer.drain()
                    self.request_shutdown()
                    break
                writer.write(_dumps(response))
                await writer.drain()
        except asyncio.CancelledError:
            pass  # daemon shutting down while this connection idled
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _respond(self, line: bytes) -> Any:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return wire.error("BadRequest", f"malformed JSON: {exc}")
        if not isinstance(request, dict):
            return wire.error("BadRequest", "request must be a JSON object")
        if request.get("op") == "shutdown":
            return _SHUTDOWN
        with self._pending_lock:
            if self._pending >= self.max_inflight + self.max_queue:
                return wire.error(
                    "Overloaded",
                    f"{self._pending} requests already in flight or queued "
                    f"(max {self.max_inflight} + {self.max_queue})",
                )
            self._pending += 1
        try:
            async with self._sem:
                loop = asyncio.get_running_loop()
                try:
                    return await loop.run_in_executor(
                        self._executor, self._handle, request
                    )
                except _DaemonReject as exc:
                    return wire.error(exc.kind, str(exc))
                except ReproError as exc:
                    return wire.error(type(exc).__name__, str(exc))
                except Exception as exc:  # a bug, but the wire stays clean
                    return wire.error(
                        "InternalError", f"{type(exc).__name__}: {exc}"
                    )
        finally:
            with self._pending_lock:
                self._pending -= 1

    # -- lifecycle ---------------------------------------------------------

    async def _start(self) -> None:
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._serve_client, path=self.unix_path, limit=wire.MAX_LINE
            )
            self.address = self.unix_path
        else:
            self._server = await asyncio.start_server(
                self._serve_client, self.host, self.port, limit=wire.MAX_LINE
            )
            sock = self._server.sockets[0].getsockname()
            self.address = (sock[0], sock[1])
            self.port = sock[1]
        self._loop = asyncio.get_running_loop()
        self._ready.set()

    async def _run(self) -> None:
        await self._start()
        try:
            async with self._server:
                await self._shutdown.wait()
        finally:
            self.close()

    def serve_forever(self) -> None:
        """Run the daemon until shutdown. Blocks the calling thread."""
        try:
            asyncio.run(self._run())
        finally:
            self._ready.set()  # unblock wait_ready() even on startup failure

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the daemon is accepting connections (or failed)."""
        return self._ready.wait(timeout)

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop; safe from any thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._shutdown.set)
        else:
            self._shutdown.set()

    def close(self) -> None:
        """Tear down the executor and the owned session (pools + shm)."""
        self._executor.shutdown(wait=True)
        self.session.close()


class _DaemonReject(Exception):
    kind = "BadRequest"


class _BadRequest(_DaemonReject):
    kind = "BadRequest"


class _UnknownModule(_DaemonReject):
    kind = "UnknownModule"


_SHUTDOWN = object()


def _dumps(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


class DaemonThread:
    """A daemon running on a background thread — the in-process harness
    tests and benchmarks use, and ``with`` support for scripts::

        with DaemonThread(session, unix_path=sock) as daemon:
            client = ReproClient(unix_path=sock)
    """

    def __init__(self, session: Session, **kwargs: Any):
        self.daemon = ReproDaemon(session, **kwargs)
        self._thread = threading.Thread(
            target=self.daemon.serve_forever, daemon=True
        )

    def __enter__(self) -> ReproDaemon:
        self.start()
        return self.daemon

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> ReproDaemon:
        self._thread.start()
        if not self.daemon.wait_ready(timeout=30):
            raise SessionError("serve daemon failed to start within 30s")
        if self.daemon.address is None:
            raise SessionError("serve daemon failed to bind")
        return self.daemon

    def join(self, timeout: float | None = None) -> None:
        """Block until the daemon thread exits (a client ``shutdown`` op or
        :meth:`stop` from another thread) — how ``repro serve`` waits."""
        self._thread.join(timeout)

    def stop(self, timeout: float = 30) -> None:
        self.daemon.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise SessionError("serve daemon did not stop cleanly")
