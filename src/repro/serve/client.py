"""A small synchronous client for the serve daemon.

One socket, one request/response line at a time — a deliberately boring
transport so the interesting guarantees (bit-exact results, input
isolation, structured errors) live server-side and are testable there.
Concurrency comes from using one :class:`ReproClient` per thread, exactly
how the benchmark and the daemon tests drive it.

Structured daemon errors re-raise as :class:`~repro.errors.ClientError`
with the wire ``type`` in ``.kind``, so callers can tell ``UnknownModule``
from ``Overloaded`` without string matching.
"""

from __future__ import annotations

import json
import socket
from typing import Any

import numpy as np

from repro.errors import ClientError
from repro.serve import wire


class ReproClient:
    """Connect to a ``repro serve`` daemon over TCP or a unix socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        unix_path: str | None = None,
        timeout: float | None = 60.0,
    ):
        try:
            if unix_path is not None:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(unix_path)
            elif port is not None:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
            else:
                raise ClientError("need a port or a unix_path to connect to")
        except OSError as exc:
            target = unix_path if unix_path is not None else f"{host}:{port}"
            raise ClientError(
                f"cannot connect to daemon at {target}: {exc}", "Transport"
            ) from exc
        self._file = self._sock.makefile("rb")

    # -- transport ---------------------------------------------------------

    def request(self, payload: dict[str, Any]) -> Any:
        """Send one raw request object, return the ``result`` of the
        response, raising :class:`ClientError` on a structured error."""
        try:
            self._sock.sendall(
                json.dumps(payload, separators=(",", ":")).encode() + b"\n"
            )
            line = self._file.readline(wire.MAX_LINE)
        except OSError as exc:
            raise ClientError(f"transport failure: {exc}", "Transport") from exc
        if not line:
            raise ClientError("daemon closed the connection", "Transport")
        response = json.loads(line)
        if not response.get("ok"):
            err = response.get("error") or {}
            raise ClientError(
                err.get("message", "unknown daemon error"),
                err.get("type", "ClientError"),
            )
        return response.get("result")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> ReproClient:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ops ---------------------------------------------------------------

    def ping(self) -> str:
        return self.request({"op": "ping"})

    def modules(self) -> list[str]:
        return self.request({"op": "modules"})

    def describe(self, module: str) -> dict[str, Any]:
        return self.request({"op": "describe", "module": module})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def plan(
        self,
        module: str,
        sizes: dict[str, int] | None = None,
        **execution: Any,
    ) -> dict[str, Any]:
        return self.request(
            {
                "op": "plan",
                "module": module,
                "sizes": sizes or {},
                "execution": execution,
            }
        )

    def warm(
        self,
        module: str | None = None,
        sizes: dict[str, int] | None = None,
        **execution: Any,
    ) -> dict[str, Any]:
        request: dict[str, Any] = {"op": "warm", "execution": execution}
        if module is not None:
            request["module"] = module
        if sizes:
            request["sizes"] = sizes
        return self.request(request)

    def run(
        self,
        module: str,
        args: dict[str, Any],
        fill: bool = False,
        seed: int = 0,
        **execution: Any,
    ) -> dict[str, np.ndarray | Any]:
        """Execute one request; array results come back as numpy arrays
        (float64 values round-trip bit-exactly through the JSON wire)."""
        result = self.request(
            {
                "op": "run",
                "module": module,
                "args": wire.encode_mapping(args),
                "fill": bool(fill),
                "seed": seed,
                "execution": execution,
            }
        )
        return wire.decode_mapping(result)

    def shutdown(self) -> str:
        """Ask the daemon to shut down; the connection dies with it."""
        return self.request({"op": "shutdown"})
