"""A long-lived, compile-once/run-many execution session.

Gokhale's premise is that all scheduling and parallelization work happens
at compile time and is amortized over many executions. A
:class:`~repro.core.pipeline.CompileResult` already amortizes within one
object — plan cache, kernel cache, calibration — but every ``run()`` still
instantiated (and tore down) its execution backend, so worker pools never
survived a request. A :class:`Session` owns all of it across requests:

* compiled modules, de-duplicated by source hash — loading the same source
  twice serves the same :class:`CompileResult` (and therefore the same
  warmed caches);
* the per-module plan cache / kernel cache / calibration trio, via the
  owned ``CompileResult``s;
* *persistent* execution backends: thread pools and forked process pools
  (over shared memory) are created once per ``(module, backend, workers,
  options)`` and reused by every subsequent run — only per-run resources
  (a run's shared-memory segments) are released between requests;
* warmed native kernels: :meth:`warm` compiles every reachable kernel
  (including the cffi/C tier) and optionally primes plans and pools with a
  throwaway run, so the first real request compiles nothing.

Thread safety: ``run()`` may be called concurrently from many threads (the
serve daemon does). Identical ``(module, sizes)`` plan lookups coalesce on
a per-key lock so the planner runs once; runs on a pooled process backend
serialise on the backend instance (its task/result queues multiplex one
run at a time — see ``ExecutionBackend.serialize_runs``), while in-process
backends run concurrently. Every request's inputs are copied into
run-private storage, so concurrent clients never observe each other's
arrays and client-supplied buffers are never mutated.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
from dataclasses import dataclass, fields
from typing import Any

import numpy as np

from repro.core.pipeline import CompilerOptions, CompileResult, compile_source
from repro.errors import SessionError
from repro.plan.ir import ExecutionPlan
from repro.ps.semantics import AnalyzedModule
from repro.ps.types import ArrayType, RecordType
from repro.runtime.backends import BACKENDS, instantiate_backend
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.runtime.values import array_bounds, dtype_for


#: flat field-name tuple for options cache keys — ExecutionOptions is a
#: flat dataclass of scalars, so this beats dataclasses.astuple's
#: recursive walk on the per-request path
_OPTION_FIELDS = tuple(f.name for f in fields(ExecutionOptions))


def _options_key(options: ExecutionOptions) -> tuple:
    return tuple(getattr(options, name) for name in _OPTION_FIELDS)


def fill_random_arrays(
    analyzed: AnalyzedModule,
    args: dict[str, Any],
    seed: int = 0,
) -> list[str]:
    """Fill missing array parameters of ``args`` in place with seeded
    random data shaped from the declared bounds (the scalar entries of
    ``args`` resolve symbolic bounds). Returns the filled names — shared
    by ``repro run``, ``repro client run``, and the daemon's ``fill``
    request field, so all three surfaces auto-fill identically."""
    rng = np.random.default_rng(seed)
    scalars = {
        k: int(v) for k, v in args.items() if isinstance(v, (int, np.integer))
    }
    filled: list[str] = []
    for pname in analyzed.param_names:
        if pname in args:
            continue
        sym = analyzed.symbol(pname)
        if isinstance(sym.type, ArrayType):
            bounds = array_bounds(sym.type, scalars)
            shape = tuple(hi - lo + 1 for lo, hi in bounds)
            args[pname] = rng.random(shape)
            filled.append(pname)
    return filled


def describe_module(analyzed: AnalyzedModule) -> dict[str, Any]:
    """A JSON-friendly signature of a module: what a client must send and
    what it gets back."""
    params = []
    for pname in analyzed.param_names:
        t = analyzed.symbol(pname).type
        if isinstance(t, ArrayType):
            params.append(
                {
                    "name": pname,
                    "kind": "array",
                    "rank": len(t.dims),
                    "dtype": np.dtype(dtype_for(t.element)).name,
                }
            )
        elif isinstance(t, RecordType):
            params.append({"name": pname, "kind": "record"})
        else:
            params.append({"name": pname, "kind": "scalar", "type": str(t)})
    return {
        "module": analyzed.name,
        "params": params,
        "results": list(analyzed.result_names),
    }


@dataclass
class _BackendSlot:
    """A persistent backend plus the lock that serialises runs on it when
    the backend cannot multiplex concurrent runs (process pools)."""

    backend: Any
    lock: threading.Lock | None = None


@dataclass
class SessionStats:
    """Counters a long-lived session exposes (`repro client stats`)."""

    modules: list[str]
    runs: int
    plans_built: int
    plan_requests: int
    backends: list[str]
    kernels: dict[str, dict[str, int]]

    def to_dict(self) -> dict[str, Any]:
        return {
            "modules": self.modules,
            "runs": self.runs,
            "plans_built": self.plans_built,
            "plan_requests": self.plan_requests,
            "backends": self.backends,
            "kernels": self.kernels,
        }


class Session:
    """See the module docstring. Typical use::

        with repro.Session() as session:
            session.load(source)                  # -> "Relaxation"
            session.warm("Relaxation", {"M": 64, "maxK": 8})
            out = session.run("Relaxation", {"M": 64, "maxK": 8, ...})
    """

    def __init__(
        self,
        execution: ExecutionOptions | None = None,
        compiler: CompilerOptions | None = None,
    ):
        self._execution = ExecutionOptions.resolve(execution)
        self._compiler = compiler or CompilerOptions()
        self._modules: dict[str, CompileResult] = {}
        self._by_hash: dict[str, CompileResult] = {}
        self._backends: dict[tuple, _BackendSlot] = {}
        self._plan_locks: dict[tuple, threading.Lock] = {}
        self._lock = threading.Lock()
        self._load_lock = threading.Lock()
        self._closed = False
        self._runs = 0
        self._plans_built = 0
        self._plan_requests = 0

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> Session:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear down every persistent backend (worker pools exit, every
        shared-memory segment is unlinked) and drop the loaded modules.
        Idempotent; the session refuses further work afterwards."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slots = list(self._backends.values())
            self._backends.clear()
            self._plan_locks.clear()
        for slot in slots:
            slot.backend.close()
        self._modules.clear()
        self._by_hash.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    # -- loading -----------------------------------------------------------

    def load(self, source: str, name: str | None = None) -> str:
        """Compile ``source`` into this session and return the name it is
        served under (the module's own name unless ``name`` overrides it).

        Loading is de-duplicated by source hash: the same text compiles
        once, and re-loading it returns the existing entry with all its
        warmed state. Loading *different* source under an already-served
        name is a :class:`SessionError` — a serving session must never
        silently swap the program behind a name clients are calling."""
        self._check_open()
        digest = hashlib.sha256(
            (repr(self._compiler) + "\0" + source).encode()
        ).hexdigest()
        with self._load_lock:
            result = self._by_hash.get(digest)
            if result is None:
                result = compile_source(source, self._compiler)
                self._by_hash[digest] = result
            served = name or result.analyzed.name
            existing = self._modules.get(served)
            if existing is not None and existing is not result:
                raise SessionError(
                    f"module name {served!r} is already served by a "
                    f"different source; load it under an explicit name="
                )
            self._modules[served] = result
        return served

    def load_file(self, path: str, name: str | None = None) -> str:
        with open(path, encoding="utf-8") as fh:
            return self.load(fh.read(), name=name)

    def modules(self) -> list[str]:
        return sorted(self._modules)

    def describe(self, module: str) -> dict[str, Any]:
        return describe_module(self._result(module).analyzed)

    def result_for(self, module: str) -> CompileResult:
        """The owned :class:`CompileResult` behind a served name."""
        return self._result(module)

    def _result(self, module: str) -> CompileResult:
        try:
            return self._modules[module]
        except KeyError:
            known = ", ".join(sorted(self._modules)) or "none loaded"
            raise SessionError(
                f"unknown module {module!r} (loaded: {known})"
            ) from None

    # -- planning ----------------------------------------------------------

    def plan(
        self,
        module: str,
        sizes: dict[str, int] | None = None,
        **overrides: Any,
    ) -> ExecutionPlan:
        """The cached execution plan for ``(module, sizes, options)``.

        Identical concurrent lookups coalesce: the first caller builds the
        plan under a per-key lock while the rest wait and then hit the
        module's plan cache — N clients asking for the same warm plan cost
        one planner run, not N."""
        self._check_open()
        result = self._result(module)
        options = ExecutionOptions.resolve(self._execution, **overrides)
        sizes = {
            k: int(v)
            for k, v in (sizes or {}).items()
            if isinstance(v, (int, np.integer))
        }
        key = (module, _options_key(options), tuple(sorted(sizes.items())))
        with self._lock:
            self._plan_requests += 1
            lock = self._plan_locks.get(key)
            if lock is None:
                lock = self._plan_locks[key] = threading.Lock()
        with lock:
            before = len(result._plan_cache)
            plan = result.plan(sizes, execution=options)
            if len(result._plan_cache) != before:
                with self._lock:
                    self._plans_built += 1
            return plan

    # -- execution ---------------------------------------------------------

    def run(
        self,
        module: str,
        args: dict[str, Any],
        **overrides: Any,
    ) -> dict[str, Any]:
        """Execute one request against the warm state: cached plan,
        compiled kernels, and a persistent backend. Inputs are copied into
        run-private storage (shared-memory segments on the process
        backends), so the caller's arrays are never mutated and concurrent
        requests are isolated from each other."""
        self._check_open()
        result = self._result(module)
        options = ExecutionOptions.resolve(self._execution, **overrides)
        plan = self.plan(module, args, **overrides)
        slot = self._backend_slot(module, plan, options)
        ctx = slot.lock if slot.lock is not None else contextlib.nullcontext()
        try:
            with ctx:
                out = execute_module(
                    result.analyzed,
                    args,
                    flowchart=result.flowchart,
                    options=options,
                    kernel_cache=result.kernel_cache,
                    plan=plan,
                    backend=slot.backend,
                )
        except BaseException:
            if slot.lock is not None:
                # A failed run can leave a pooled backend's queues in an
                # undefined state (a worker may have died mid-wavefront);
                # retire the pool so the next request forks a fresh one.
                self._retire_backend(slot)
            raise
        with self._lock:
            self._runs += 1
        return out

    def _backend_slot(
        self, module: str, plan: ExecutionPlan, options: ExecutionOptions
    ) -> _BackendSlot:
        cls = BACKENDS[plan.backend]
        # Pooled backends are scoped per module: forked workers hold the
        # fork-time flowchart, so their pool must only ever see that
        # module's descriptors. In-process backends are module-agnostic.
        scope = module if cls.serialize_runs else None
        key = (scope, plan.backend, plan.workers, _options_key(options))
        with self._lock:
            self._check_open()
            slot = self._backends.get(key)
            if slot is None:
                slot = _BackendSlot(
                    instantiate_backend(plan.backend, workers=plan.workers),
                    threading.Lock() if cls.serialize_runs else None,
                )
                self._backends[key] = slot
        return slot

    def _retire_backend(self, slot: _BackendSlot) -> None:
        with self._lock:
            for key, existing in list(self._backends.items()):
                if existing is slot:
                    del self._backends[key]
        try:
            slot.backend.close()
        except Exception:
            pass  # teardown of an already-broken pool is best effort

    # -- warm-up -----------------------------------------------------------

    def warm(
        self,
        module: str | None = None,
        sizes: dict[str, int] | None = None,
        prime: bool = True,
        **overrides: Any,
    ) -> dict[str, Any]:
        """Do all one-time work up front so the first request pays nothing:
        compile every reachable kernel (native C tier included), build and
        cache the plan for ``sizes``, and — when ``prime`` is true and
        ``sizes`` are given — execute one throwaway run with zero-filled
        inputs, which forks worker pools and exercises the exact request
        path. ``module=None`` warms every loaded module. Returns
        per-module kernel-cache statistics."""
        self._check_open()
        names = [module] if module is not None else self.modules()
        options = ExecutionOptions.resolve(self._execution, **overrides)
        report: dict[str, Any] = {}
        for served in names:
            result = self._result(served)
            tier = getattr(options, "kernel_tier", "native")
            if options.use_kernels and tier != "evaluator":
                result.kernel_cache.warm(options.use_windows, tier=tier)
            if sizes:
                self.plan(served, dict(sizes), **overrides)
                if prime:
                    args: dict[str, Any] = dict(sizes)
                    analyzed = result.analyzed
                    for pname in analyzed.param_names:
                        sym = analyzed.symbol(pname)
                        if isinstance(sym.type, ArrayType) and pname not in args:
                            bounds = array_bounds(
                                sym.type,
                                {
                                    k: int(v)
                                    for k, v in args.items()
                                    if isinstance(v, (int, np.integer))
                                },
                            )
                            shape = tuple(hi - lo + 1 for lo, hi in bounds)
                            args[pname] = np.zeros(
                                shape, dtype=dtype_for(sym.type.element)
                            )
                    self.run(served, args, **overrides)
            report[served] = result.kernel_cache.stats()
        return report

    # -- introspection -----------------------------------------------------

    def stats(self) -> SessionStats:
        with self._lock:
            backends = sorted(
                {slot.backend.name for slot in self._backends.values()}
            )
            runs, built, requests = (
                self._runs, self._plans_built, self._plan_requests
            )
        return SessionStats(
            modules=self.modules(),
            runs=runs,
            plans_built=built,
            plan_requests=requests,
            backends=backends,
            kernels={
                name: result.kernel_cache.stats()
                for name, result in sorted(self._modules.items())
            },
        )
