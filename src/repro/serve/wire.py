"""The serve wire format: newline-delimited JSON requests and responses.

One request per line, one response line per request::

    {"op": "run", "module": "Relaxation", "args": {"M": 4, ...}}
    {"ok": true, "result": {"newA": {"__array__": {...}}}}

Arrays travel as ``{"__array__": {"b64": ..., "shape": ..., "dtype":
"<f8"}}`` — base64 of the raw contiguous buffer with an explicit
byte-order-qualified dtype, so every value round-trips **bit-exactly**
and a 1000x1000 result costs one memcpy plus base64, not a million
float reprs. The tag keys array payloads apart from record-parameter
dicts; scalars travel as plain JSON numbers/booleans.

Hand-written clients may also send arrays as plain nested lists
(``{"__array__": [[...]], "dtype": "float64"}``): :func:`decode_value`
accepts both forms.

Errors are structured: ``{"ok": false, "error": {"type": ..., "message":
...}}`` where ``type`` is the raising exception class (``ExecutionError``,
``SessionError``, ...) or a daemon-level kind (``BadRequest``,
``UnknownModule``, ``Overloaded``).
"""

from __future__ import annotations

import base64
from typing import Any

import numpy as np

#: stream limit for one request/response line — big enough for the array
#: payloads the daemon serves, small enough to bound a hostile client
MAX_LINE = 1 << 26


def ok(result: Any) -> dict:
    return {"ok": True, "result": result}


def error(kind: str, message: str) -> dict:
    return {"ok": False, "error": {"type": kind, "message": message}}


def encode_value(value: Any) -> Any:
    """One result/argument value to its JSON form."""
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return {
            "__array__": {
                "b64": base64.b64encode(arr.tobytes()).decode("ascii"),
                "shape": list(arr.shape),
                "dtype": arr.dtype.str,
            }
        }
    if isinstance(value, np.generic):
        return value.item()
    return value


def decode_value(value: Any) -> Any:
    """The inverse of :func:`encode_value`; also accepts the nested-list
    form hand-written clients may send."""
    if isinstance(value, dict) and "__array__" in value:
        payload = value["__array__"]
        if isinstance(payload, dict):
            arr = np.frombuffer(
                base64.b64decode(payload["b64"]),
                dtype=np.dtype(payload["dtype"]),
            )
            # frombuffer views read-only memory; runs need writable arrays
            return arr.reshape(payload["shape"]).copy()
        return np.asarray(
            payload, dtype=np.dtype(value.get("dtype", "float64"))
        )
    return value


def encode_mapping(mapping: dict[str, Any]) -> dict[str, Any]:
    return {k: encode_value(v) for k, v in mapping.items()}


def decode_mapping(mapping: dict[str, Any]) -> dict[str, Any]:
    return {k: decode_value(v) for k, v in mapping.items()}
