"""PS ("Problem Specification") language front end.

The paper's substrate: a very-high-level nonprocedural dataflow language with
Pascal-like declarations and a ``define`` section of order-free equations
(Gokhale 1987, section 2). This subpackage provides the lexer, parser, AST,
type system, semantic analysis, a programmatic module builder, and a
pretty-printer able to round-trip modules such as the paper's Figure 1.
"""

from repro.ps.ast import (
    ArrayTypeExpr,
    BinOp,
    BoolLit,
    Call,
    EnumTypeExpr,
    Equation,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    LhsItem,
    Module,
    Name,
    NamedTypeExpr,
    Param,
    Program,
    RangeTypeExpr,
    RealLit,
    RecordTypeExpr,
    TypeDecl,
    UnOp,
    VarDecl,
)
from repro.ps.lexer import Lexer, tokenize
from repro.ps.parser import Parser, parse_expression, parse_module, parse_program
from repro.ps.printer import format_expression, format_module, format_program
from repro.ps.semantics import AnalyzedEquation, AnalyzedModule, analyze_module, analyze_program
from repro.ps.types import (
    ArrayType,
    BoolType,
    EnumType,
    IntType,
    RealType,
    RecordType,
    SubrangeType,
    TupleType,
)

__all__ = [
    "ArrayType",
    "ArrayTypeExpr",
    "AnalyzedEquation",
    "AnalyzedModule",
    "BinOp",
    "BoolLit",
    "BoolType",
    "Call",
    "EnumType",
    "EnumTypeExpr",
    "Equation",
    "FieldRef",
    "IfExpr",
    "Index",
    "IntLit",
    "IntType",
    "Lexer",
    "LhsItem",
    "Module",
    "Name",
    "NamedTypeExpr",
    "Param",
    "Parser",
    "Program",
    "RangeTypeExpr",
    "RealLit",
    "RealType",
    "RecordType",
    "RecordTypeExpr",
    "SubrangeType",
    "TupleType",
    "TypeDecl",
    "UnOp",
    "VarDecl",
    "analyze_module",
    "analyze_program",
    "format_expression",
    "format_module",
    "format_program",
    "parse_expression",
    "parse_module",
    "parse_program",
    "tokenize",
]
