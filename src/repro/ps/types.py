"""Semantic types for PS.

The type system mirrors the paper's description of PS data declarations:
"Standard Pascal data types are provided (primitive types, enumerations,
arrays, records)" plus subrange types whose bounds are *expressions* over
module parameters (``I, J = 0 .. M+1``). Because bounds are symbolic they
are kept as AST expressions and only evaluated at run time.

A PS array type is normalised to a flat list of subrange dimensions: the
paper notes that ``A`` "has dimensionality which is the sum of subscripts and
superscripts" even though it is declared as a nested
``array [1..maxK] of array[I,J] of real``. :func:`ArrayType.dims` therefore
contains three subranges for ``A``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.ps.ast import Expr, expr_equal

_anon_counter = itertools.count(1)


class Type:
    """Base class for all semantic types."""

    def __eq__(self, other: object) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def __hash__(self) -> int:  # types are used in dict keys by identity
        return id(self)


@dataclass(frozen=True, eq=False)
class PrimitiveType(Type):
    kind: str  # "int" | "real" | "bool"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SubrangeType):
            return self.kind == "int"
        return isinstance(other, PrimitiveType) and self.kind == other.kind

    def __hash__(self) -> int:
        return hash(self.kind)

    def __str__(self) -> str:
        return self.kind


#: Singletons used throughout the compiler.
IntType = PrimitiveType("int")
RealType = PrimitiveType("real")
BoolType = PrimitiveType("bool")


@dataclass(eq=False)
class SubrangeType(Type):
    """An integer subrange ``lo .. hi`` with symbolic bounds.

    ``name`` is the declared type name (``I``, ``J``, ``K``) or a synthetic
    ``$rangeN`` for anonymous ranges such as ``array [1..maxK] of ...``.
    The *name doubles as the index variable* when the subrange is used as an
    array dimension — PS "does not differentiate" subscripts from
    superscripts nor index variables from their range types (section 2).
    """

    name: str
    lo: Expr
    hi: Expr
    anonymous: bool = False

    @staticmethod
    def fresh(lo: Expr, hi: Expr) -> SubrangeType:
        return SubrangeType(f"$range{next(_anon_counter)}", lo, hi, anonymous=True)

    def bounds_equal(self, other: SubrangeType) -> bool:
        """Structural equality of the bound expressions."""
        return expr_equal(self.lo, other.lo) and expr_equal(self.hi, other.hi)

    def __eq__(self, other: object) -> bool:
        # A subrange is assignment-compatible with int and with any subrange
        # (Pascal semantics); *dimension* compatibility uses bounds_equal.
        return isinstance(other, (SubrangeType,)) or (
            isinstance(other, PrimitiveType) and other.kind == "int"
        )

    def __hash__(self) -> int:
        return hash("subrange")

    def __str__(self) -> str:
        return self.name if not self.anonymous else f"{self.name}(..)"


@dataclass(eq=False)
class EnumType(Type):
    name: str
    members: list[str] = field(default_factory=list)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)

    def __str__(self) -> str:
        return self.name


@dataclass(eq=False)
class ArrayType(Type):
    """Flattened array type: ``dims`` are subranges; ``element`` is a
    non-array type (nesting is normalised away)."""

    dims: list[SubrangeType]
    element: Type

    @property
    def rank(self) -> int:
        return len(self.dims)

    def drop_dims(self, n: int) -> Type:
        """Type after indexing with ``n`` subscripts (partial indexing)."""
        if n == self.rank:
            return self.element
        return ArrayType(self.dims[n:], self.element)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and self.rank == other.rank
            and all(a.bounds_equal(b) for a, b in zip(self.dims, other.dims))
            and self.element == other.element
        )

    def __hash__(self) -> int:
        return hash(("array", self.rank))

    def __str__(self) -> str:
        dims = ",".join(str(d) for d in self.dims)
        return f"array[{dims}] of {self.element}"


@dataclass(eq=False)
class RecordType(Type):
    name: str
    fields: dict[str, Type] = field(default_factory=dict)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RecordType)
            and list(self.fields) == list(other.fields)
            and all(self.fields[k] == other.fields[k] for k in self.fields)
        )

    def __hash__(self) -> int:
        return hash(("record", tuple(self.fields)))

    def __str__(self) -> str:
        inner = "; ".join(f"{k}: {v}" for k, v in self.fields.items())
        return f"record {inner} end"


@dataclass(eq=False)
class TupleType(Type):
    """The type of a multi-result module call or a multi-variable LHS."""

    elements: list[Type]

    @property
    def arity(self) -> int:
        return len(self.elements)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TupleType)
            and self.arity == other.arity
            and all(a == b for a, b in zip(self.elements, other.elements))
        )

    def __hash__(self) -> int:
        return hash(("tuple", self.arity))

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.elements) + ")"


def is_numeric(t: Type) -> bool:
    return t == IntType or t == RealType or isinstance(t, SubrangeType)


def is_integral(t: Type) -> bool:
    return t == IntType or isinstance(t, SubrangeType)


def unify_numeric(a: Type, b: Type) -> Type | None:
    """Result type of an arithmetic operation, or None if non-numeric."""
    if not (is_numeric(a) and is_numeric(b)):
        return None
    if a == RealType or b == RealType:
        return RealType
    return IntType
