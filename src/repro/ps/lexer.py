"""Hand-written lexer for PS source text."""

from __future__ import annotations

from repro.errors import LexError
from repro.ps.tokens import KEYWORDS, Token, TokenKind

_SINGLE = {
    ":": TokenKind.COLON,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACK,
    "]": TokenKind.RBRACK,
    "=": TokenKind.EQ,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
}


class Lexer:
    """Tokenizes PS source. Use :func:`tokenize` for the common case."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.source[i] if i < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    # -- token scanning -----------------------------------------------------

    def _skip_trivia(self) -> None:
        """Skip whitespace and (possibly nested) ``(* ... *)`` comments."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "(" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance()
                self._advance()
                depth = 1
                while depth > 0:
                    if self.pos >= len(self.source):
                        raise LexError("unterminated comment", start_line, start_col)
                    if self._peek() == "(" and self._peek(1) == "*":
                        self._advance()
                        self._advance()
                        depth += 1
                    elif self._peek() == "*" and self._peek(1) == ")":
                        self._advance()
                        self._advance()
                        depth -= 1
                    else:
                        self._advance()
            else:
                return

    def _number(self) -> Token:
        line, col = self.line, self.column
        text = []
        while self._peek().isdigit():
            text.append(self._advance())
        is_real = False
        # A '.' begins a fraction only if not the '..' range operator.
        if self._peek() == "." and self._peek(1) != "." and self._peek(1).isdigit():
            is_real = True
            text.append(self._advance())
            while self._peek().isdigit():
                text.append(self._advance())
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_real = True
            text.append(self._advance())
            if self._peek() in "+-":
                text.append(self._advance())
            while self._peek().isdigit():
                text.append(self._advance())
        kind = TokenKind.REAL if is_real else TokenKind.INT
        return Token(kind, "".join(text), line, col)

    def _ident(self) -> Token:
        line, col = self.line, self.column
        text = []
        while self._peek().isalnum() or self._peek() == "_":
            text.append(self._advance())
        word = "".join(text)
        kind = KEYWORDS.get(word.lower(), TokenKind.IDENT)
        return Token(kind, word, line, col)

    def next_token(self) -> Token:
        self._skip_trivia()
        line, col = self.line, self.column
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", line, col)
        ch = self._peek()
        if ch.isdigit():
            return self._number()
        if ch.isalpha() or ch == "_":
            return self._ident()
        if ch == ".":
            self._advance()
            if self._peek() == ".":
                self._advance()
                return Token(TokenKind.DOTDOT, "..", line, col)
            return Token(TokenKind.DOT, ".", line, col)
        if ch == "<":
            self._advance()
            if self._peek() == ">":
                self._advance()
                return Token(TokenKind.NE, "<>", line, col)
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.LE, "<=", line, col)
            return Token(TokenKind.LT, "<", line, col)
        if ch == ">":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.GE, ">=", line, col)
            return Token(TokenKind.GT, ">", line, col)
        if ch in _SINGLE:
            self._advance()
            return Token(_SINGLE[ch], ch, line, col)
        raise LexError(f"unexpected character {ch!r}", line, col)

    def tokens(self) -> list[Token]:
        """Scan the whole input, including the trailing EOF token."""
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out


def tokenize(source: str) -> list[Token]:
    """Tokenize PS source text (returns a list ending with an EOF token)."""
    return Lexer(source).tokens()
