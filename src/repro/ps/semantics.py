"""Semantic analysis for PS modules.

This stage turns the parse tree into the compiler's *internal form* (the
paper's "front end ... stores the entire program in an internal form"):

* declarations are resolved into semantic types (subranges keep symbolic
  bound expressions);
* every equation is given its **dimension list** — the index variables it is
  implicitly universally quantified over. Explicit dimensions come from index
  variables in the left-hand-side subscripts (``A[K,I,J]``); *implicit*
  dimensions arise when the target is still array-typed after explicit
  subscripting (``A[1] = InitialA`` is quantified over ``I`` and ``J``);
* the right-hand side is **normalised**: every reference to an array-valued
  item is completed with identity subscripts over the implicit dimensions, so
  downstream stages (dependency-graph construction, scheduling, evaluation,
  code generation) see fully-subscripted element-wise equations;
* every data reference (array or scalar) is collected for dependency-graph
  construction.

The analyzer enforces the single-assignment discipline of the language (each
non-input item defined, inputs never redefined) with the decidable-overlap
checks in :mod:`repro.ps.coverage`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.ps.ast import (
    ArrayTypeExpr,
    BinOp,
    BoolLit,
    Call,
    EnumTypeExpr,
    Equation,
    Expr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    Module,
    Name,
    NamedTypeExpr,
    Program,
    RangeTypeExpr,
    RealLit,
    RecordTypeExpr,
    TypeExpr,
    UnOp,
    walk_expr,
)
from repro.ps.symbols import Symbol, SymbolKind, SymbolTable
from repro.ps.types import (
    ArrayType,
    BoolType,
    EnumType,
    IntType,
    RealType,
    RecordType,
    SubrangeType,
    TupleType,
    Type,
    is_integral,
    is_numeric,
    unify_numeric,
)

# ---------------------------------------------------------------------------
# Builtin functions
# ---------------------------------------------------------------------------

#: name -> (arity, kind) where kind selects the result-type rule:
#:   "real"   numeric args, real result
#:   "same"   numeric args, unified numeric result
#:   "int"    numeric args, int result
_BUILTINS: dict[str, tuple[int, str]] = {
    "abs": (1, "same"),
    "sqrt": (1, "real"),
    "sin": (1, "real"),
    "cos": (1, "real"),
    "tan": (1, "real"),
    "exp": (1, "real"),
    "ln": (1, "real"),
    "log": (1, "real"),
    "min": (2, "same"),
    "max": (2, "same"),
    "floor": (1, "int"),
    "ceil": (1, "int"),
    "trunc": (1, "int"),
    "round": (1, "int"),
}


def is_builtin(name: str) -> bool:
    return name in _BUILTINS


# ---------------------------------------------------------------------------
# Analyzed structures
# ---------------------------------------------------------------------------


@dataclass
class EquationDim:
    """One dimension an equation is quantified over."""

    index: str  # index variable name (the subrange's name, or synthetic)
    subrange: SubrangeType
    implicit: bool = False

    def __repr__(self) -> str:  # pragma: no cover
        tag = "~" if self.implicit else ""
        return f"{tag}{self.index}"


@dataclass
class Reference:
    """A reference to a data item inside an equation's right-hand side (or
    inside a subscript). ``subscripts`` are the normalised, full subscripts —
    empty for scalar references."""

    name: str
    subscripts: list[Expr]
    fieldpath: tuple[str, ...] = ()
    explicit: int = 0  # how many subscripts were written in the source

    @property
    def is_scalar(self) -> bool:
        return not self.subscripts and not self.fieldpath


@dataclass
class AnalyzedTarget:
    """A left-hand-side target with normalised subscripts."""

    name: str
    subscripts: list[Expr]
    explicit: int = 0


@dataclass
class AnalyzedEquation:
    source: Equation
    label: str
    dims: list[EquationDim]
    targets: list[AnalyzedTarget]
    rhs: Expr  # normalised right-hand side
    refs: list[Reference]
    bound_uses: list[str]  # symbols referenced by the dims' subrange bounds
    calls: list[str]
    rhs_type: Type
    atomic: bool = False  # multi-target module-call equations execute wholesale
    #: cached vectorisation-safety verdict, filled at flowchart-build time
    #: (or lazily on first use) — see ``repro.schedule.flowchart``
    vector_safe: bool | None = None

    @property
    def index_names(self) -> list[str]:
        return [d.index for d in self.dims]


@dataclass
class AnalyzedModule:
    module: Module
    table: SymbolTable
    equations: list[AnalyzedEquation]
    warnings: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.module.name

    def symbol(self, name: str) -> Symbol:
        sym = self.table.symbol(name)
        if sym is None:
            raise KeyError(name)
        return sym

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.module.params]

    @property
    def result_names(self) -> list[str]:
        return [r.name for r in self.module.results]


@dataclass
class AnalyzedProgram:
    modules: dict[str, AnalyzedModule]

    def __getitem__(self, name: str) -> AnalyzedModule:
        return self.modules[name]


# ---------------------------------------------------------------------------
# Type resolution
# ---------------------------------------------------------------------------


class _TypeResolver:
    def __init__(self, table: SymbolTable):
        self.table = table

    def resolve(self, te: TypeExpr, name_hint: str | None = None) -> Type:
        if isinstance(te, NamedTypeExpr):
            if te.name == "int":
                return IntType
            if te.name == "real":
                return RealType
            if te.name == "bool":
                return BoolType
            sub = self.table.subrange(te.name)
            if sub is not None:
                return sub
            if te.name in self.table.enums:
                return self.table.enums[te.name]  # type: ignore[return-value]
            if te.name in self.table.records:
                return self.table.records[te.name]
            raise SemanticError(f"unknown type {te.name!r}", te.line, te.column)
        if isinstance(te, RangeTypeExpr):
            if name_hint:
                return SubrangeType(name_hint, te.lo, te.hi)
            return SubrangeType.fresh(te.lo, te.hi)
        if isinstance(te, ArrayTypeExpr):
            dims = [self._resolve_dim(d) for d in te.dims]
            element = self.resolve(te.element)
            if isinstance(element, ArrayType):
                # Flatten: the paper's A has "dimensionality which is the sum
                # of subscripts and superscripts".
                dims = dims + element.dims
                element = element.element
            return ArrayType(dims, element)
        if isinstance(te, RecordTypeExpr):
            fields: dict[str, Type] = {}
            for names, fte in te.fields:
                ftype = self.resolve(fte)
                for n in names:
                    if n in fields:
                        raise SemanticError(f"duplicate record field {n!r}", te.line)
                    fields[n] = ftype
            return RecordType(name_hint or "$record", fields)
        if isinstance(te, EnumTypeExpr):
            return EnumType(name_hint or "$enum", list(te.members))
        raise SemanticError(f"unsupported type expression {type(te).__name__}", te.line)

    def _resolve_dim(self, te: TypeExpr) -> SubrangeType:
        t = self.resolve(te)
        if not isinstance(t, SubrangeType):
            raise SemanticError(
                f"array dimension must be a subrange, got {t}", te.line, te.column
            )
        return t


# ---------------------------------------------------------------------------
# Module analysis
# ---------------------------------------------------------------------------


class ModuleAnalyzer:
    def __init__(self, module: Module, signatures: dict[str, tuple[list[Type], list[Type]]]):
        self.module = module
        self.signatures = signatures
        self.table = SymbolTable()
        self.resolver = _TypeResolver(self.table)
        self.warnings: list[str] = []

    # -- declarations ---------------------------------------------------------

    def _declare_types(self) -> None:
        for decl in self.module.typedecls:
            te = decl.typeexpr
            if isinstance(te, RangeTypeExpr):
                for name in decl.names:
                    self.table.declare_subrange(
                        SubrangeType(name, te.lo, te.hi), decl.line
                    )
            elif isinstance(te, EnumTypeExpr):
                for name in decl.names:
                    self.table.declare_enum(
                        name, EnumType(name, list(te.members)), decl.line
                    )
            elif isinstance(te, RecordTypeExpr):
                for name in decl.names:
                    rec = self.resolver.resolve(te, name_hint=name)
                    self.table.declare_record(name, rec, decl.line)
            elif isinstance(te, NamedTypeExpr):
                # alias of an existing type
                resolved = self.resolver.resolve(te)
                for name in decl.names:
                    if isinstance(resolved, SubrangeType):
                        self.table.declare_subrange(
                            SubrangeType(name, resolved.lo, resolved.hi), decl.line
                        )
                    elif isinstance(resolved, EnumType):
                        self.table.declare_enum(name, resolved, decl.line)
                    else:
                        self.table.declare_record(name, resolved, decl.line)
            elif isinstance(te, ArrayTypeExpr):
                for name in decl.names:
                    self.table.declare_record(name, self.resolver.resolve(te), decl.line)
            else:
                raise SemanticError("unsupported type declaration", decl.line)

    def _declare_data(self) -> None:
        for p in self.module.params:
            self.table.declare_symbol(
                p.name, SymbolKind.PARAM, self.resolver.resolve(p.typeexpr), p.line
            )
        for r in self.module.results:
            self.table.declare_symbol(
                r.name, SymbolKind.RESULT, self.resolver.resolve(r.typeexpr), r.line
            )
        for decl in self.module.vardecls:
            t = self.resolver.resolve(decl.typeexpr)
            for name in decl.names:
                self.table.declare_symbol(name, SymbolKind.VAR, t, decl.line)

    def _validate_bounds(self) -> None:
        """Names inside subrange bounds must be integral data items."""
        seen: list[SubrangeType] = list(self.table.subranges.values())
        for sym in self.table.symbols.values():
            if isinstance(sym.type, ArrayType):
                seen.extend(sym.type.dims)
        for sub in seen:
            for bound in (sub.lo, sub.hi):
                for node in walk_expr(bound):
                    if isinstance(node, Name):
                        sym = self.table.symbol(node.ident)
                        if sym is None:
                            raise SemanticError(
                                f"unknown name {node.ident!r} in bound of subrange "
                                f"{sub.name!r}",
                                node.line,
                                node.column,
                            )
                        if not is_integral(sym.type):
                            raise SemanticError(
                                f"bound of subrange {sub.name!r} uses non-integer "
                                f"{node.ident!r}",
                                node.line,
                                node.column,
                            )

    # -- equations ------------------------------------------------------------

    def analyze(self) -> AnalyzedModule:
        self._declare_types()
        self._declare_data()
        self._validate_bounds()
        equations = [self._analyze_equation(eq) for eq in self.module.equations]
        analyzed = AnalyzedModule(self.module, self.table, equations, self.warnings)
        from repro.ps.coverage import check_coverage  # cycle-free local import

        check_coverage(analyzed)
        return analyzed

    def _analyze_equation(self, eq: Equation) -> AnalyzedEquation:
        if len(eq.lhs) > 1:
            return self._analyze_atomic_equation(eq)

        item = eq.lhs[0]
        sym = self._target_symbol(item.name, eq)
        dims: list[EquationDim] = []
        explicit_subs: list[Expr] = []
        used_index: set[str] = set()

        # Explicit subscripts: index variables or index-free expressions.
        arr_dims = sym.type.dims if isinstance(sym.type, ArrayType) else []
        if item.subscripts and not isinstance(sym.type, ArrayType):
            raise SemanticError(
                f"{item.name!r} is not an array but is subscripted", item.line
            )
        if len(item.subscripts) > len(arr_dims):
            raise SemanticError(
                f"too many subscripts for {item.name!r}", item.line
            )
        for sub in item.subscripts:
            if isinstance(sub, Name) and self.table.subrange(sub.ident) is not None:
                if sub.ident in used_index:
                    raise SemanticError(
                        f"index variable {sub.ident!r} appears twice on the "
                        f"left-hand side",
                        sub.line,
                    )
                used_index.add(sub.ident)
                dims.append(EquationDim(sub.ident, self.table.subrange(sub.ident)))
                explicit_subs.append(sub)
            else:
                # Must be an index-free integral expression (e.g. A[1], A[maxK]).
                self._check_constant_subscript(sub)
                explicit_subs.append(sub)

        # Implicit dimensions: whatever array extent remains.
        remaining: list[SubrangeType] = list(arr_dims[len(item.subscripts):])
        implicit_dims: list[EquationDim] = []
        for p, sub_t in enumerate(remaining):
            name = sub_t.name
            if sub_t.anonymous or name in used_index or any(d.index == name for d in dims):
                name = f"_i{len(item.subscripts) + p}"
            used_index.add(name)
            implicit_dims.append(EquationDim(name, sub_t, implicit=True))
        dims = dims + implicit_dims

        target_subs = explicit_subs + [
            Name(d.index, line=eq.line) for d in implicit_dims
        ]
        target = AnalyzedTarget(item.name, target_subs, explicit=len(item.subscripts))

        checker = _ExprChecker(self, dims)
        rhs_type, rhs = checker.check(eq.rhs)

        # The element type the RHS must produce.
        if isinstance(sym.type, ArrayType):
            expected: Type = sym.type.element
        else:
            expected = sym.type
        self._require_assignable(expected, rhs_type, eq)

        bound_uses = self._dim_bound_uses(dims)
        return AnalyzedEquation(
            source=eq,
            label=eq.label,
            dims=dims,
            targets=[target],
            rhs=rhs,
            refs=checker.refs,
            bound_uses=bound_uses,
            calls=checker.calls,
            rhs_type=rhs_type,
        )

    def _analyze_atomic_equation(self, eq: Equation) -> AnalyzedEquation:
        """Multi-target equations: ``x, y = SomeModule(...)``. Targets must be
        unsubscripted; the equation executes wholesale (no loops)."""
        targets: list[AnalyzedTarget] = []
        for item in eq.lhs:
            if item.subscripts:
                raise SemanticError(
                    "targets of a multi-variable equation must not be "
                    "subscripted",
                    item.line,
                )
            self._target_symbol(item.name, eq)
            targets.append(AnalyzedTarget(item.name, [], explicit=0))
        checker = _ExprChecker(self, dims=[], scalarize=False)
        rhs_type, rhs = checker.check(eq.rhs)
        if not isinstance(rhs_type, TupleType) or rhs_type.arity != len(targets):
            raise SemanticError(
                f"left-hand side has {len(eq.lhs)} targets but the right-hand "
                f"side has type {rhs_type}",
                eq.line,
            )
        for item, t in zip(eq.lhs, rhs_type.elements):
            sym = self.table.symbol(item.name)
            assert sym is not None
            self._require_assignable(sym.type, t, eq)
        return AnalyzedEquation(
            source=eq,
            label=eq.label,
            dims=[],
            targets=targets,
            rhs=rhs,
            refs=checker.refs,
            bound_uses=[],
            calls=checker.calls,
            rhs_type=rhs_type,
            atomic=True,
        )

    # -- helpers ----------------------------------------------------------------

    def _target_symbol(self, name: str, eq: Equation) -> Symbol:
        sym = self.table.symbol(name)
        if sym is None:
            raise SemanticError(f"undeclared target {name!r}", eq.line)
        if sym.kind is SymbolKind.PARAM:
            raise SemanticError(
                f"input parameter {name!r} cannot be defined (single "
                f"assignment)",
                eq.line,
            )
        return sym

    def _check_constant_subscript(self, sub: Expr) -> None:
        for node in walk_expr(sub):
            if isinstance(node, Name):
                if self.table.subrange(node.ident) is not None:
                    raise SemanticError(
                        f"left-hand-side subscript may be an index variable or "
                        f"an index-free expression; {node.ident!r} mixes both",
                        node.line,
                    )
                sym = self.table.symbol(node.ident)
                if sym is None or not is_integral(sym.type):
                    raise SemanticError(
                        f"invalid name {node.ident!r} in left-hand-side "
                        f"subscript",
                        node.line,
                    )

    def _require_assignable(self, expected: Type, actual: Type, eq: Equation) -> None:
        if expected == actual:
            return
        if expected == RealType and (actual == IntType or is_integral(actual)):
            return  # implicit int -> real widening
        raise SemanticError(
            f"type mismatch in {eq.label}: expected {expected}, got {actual}",
            eq.line,
        )

    def _dim_bound_uses(self, dims: list[EquationDim]) -> list[str]:
        uses: list[str] = []
        for d in dims:
            for bound in (d.subrange.lo, d.subrange.hi):
                for node in walk_expr(bound):
                    if isinstance(node, Name) and self.table.symbol(node.ident):
                        if node.ident not in uses:
                            uses.append(node.ident)
        return uses


# ---------------------------------------------------------------------------
# Expression checking + normalisation
# ---------------------------------------------------------------------------


class _ExprChecker:
    """Type-checks an expression and rewrites it into normalised form:
    array references gain identity subscripts over the equation's implicit
    dimensions so that every normalised expression is element-wise."""

    def __init__(self, owner: ModuleAnalyzer, dims: list[EquationDim], scalarize: bool = True):
        self.owner = owner
        self.table = owner.table
        self.dims = dims
        self.scalarize = scalarize
        self.refs: list[Reference] = []
        self.calls: list[str] = []

    def _dim(self, name: str) -> EquationDim | None:
        for d in self.dims:
            if d.index == name:
                return d
        return None

    def _implicit_dims(self) -> list[EquationDim]:
        return [d for d in self.dims if d.implicit]

    # The main entry: returns (type, normalised expression).
    def check(self, expr: Expr) -> tuple[Type, Expr]:
        t, e = self._check(expr)
        return t, e

    def _check(self, expr: Expr) -> tuple[Type, Expr]:
        if isinstance(expr, IntLit):
            return IntType, expr
        if isinstance(expr, RealLit):
            return RealType, expr
        if isinstance(expr, BoolLit):
            return BoolType, expr
        if isinstance(expr, Name):
            return self._check_name(expr)
        if isinstance(expr, Index):
            return self._check_index(expr)
        if isinstance(expr, FieldRef):
            return self._check_fieldref(expr, [])
        if isinstance(expr, Call):
            return self._check_call(expr)
        if isinstance(expr, BinOp):
            return self._check_binop(expr)
        if isinstance(expr, UnOp):
            return self._check_unop(expr)
        if isinstance(expr, IfExpr):
            return self._check_if(expr)
        raise SemanticError(f"unsupported expression {type(expr).__name__}", expr.line)

    # -- leaves -----------------------------------------------------------------

    def _check_name(self, expr: Name) -> tuple[Type, Expr]:
        d = self._dim(expr.ident)
        if d is not None:
            return d.subrange, expr
        sym = self.table.symbol(expr.ident)
        if sym is not None:
            return self._reference(sym, expr, [], ())
        if expr.ident in self.table.enum_members:
            enum_type, _ = self.table.enum_members[expr.ident]
            return enum_type, expr  # type: ignore[return-value]
        if self.table.subrange(expr.ident) is not None:
            raise SemanticError(
                f"index variable {expr.ident!r} is not bound by the left-hand "
                f"side of this equation",
                expr.line,
                expr.column,
            )
        raise SemanticError(f"undeclared name {expr.ident!r}", expr.line, expr.column)

    def _check_index(self, expr: Index) -> tuple[Type, Expr]:
        # Normalise subscripts first.
        checked_subs: list[Expr] = []
        for sub in expr.subscripts:
            st, se = self._check(sub)
            if not is_integral(st):
                raise SemanticError(
                    f"subscript must be integral, got {st}", sub.line, sub.column
                )
            checked_subs.append(se)

        base = expr.base
        if isinstance(base, Name):
            sym = self.table.symbol(base.ident)
            if sym is not None:
                return self._reference(sym, expr, checked_subs, ())
            raise SemanticError(
                f"cannot subscript {base.ident!r}", expr.line, expr.column
            )
        if isinstance(base, FieldRef):
            return self._check_fieldref(base, checked_subs)
        if isinstance(base, Call):
            ctype, cexpr = self._check_call(base)
            return self._index_value(ctype, cexpr, checked_subs, expr)
        raise SemanticError("unsupported indexing base", expr.line, expr.column)

    def _check_fieldref(self, expr: FieldRef, pending_subs: list[Expr]) -> tuple[Type, Expr]:
        # Walk down to the root name collecting the field path.
        path: list[str] = []
        node: Expr = expr
        while isinstance(node, FieldRef):
            path.append(node.fieldname)
            node = node.base
        path.reverse()
        if not isinstance(node, Name):
            raise SemanticError("field selection requires a named record", expr.line)
        sym = self.table.symbol(node.ident)
        if sym is None:
            raise SemanticError(f"undeclared name {node.ident!r}", node.line)
        t: Type = sym.type
        for f in path:
            if not isinstance(t, RecordType) or f not in t.fields:
                raise SemanticError(f"no field {f!r} in {t}", expr.line)
            t = t.fields[f]
        return self._reference(sym, expr, pending_subs, tuple(path), known_type=t)

    def _reference(
        self,
        sym: Symbol,
        node: Expr,
        subscripts: list[Expr],
        fieldpath: tuple[str, ...],
        known_type: Type | None = None,
    ) -> tuple[Type, Expr]:
        """Record a data reference, appending implicit identity subscripts if
        an array extent remains and scalarisation is on."""
        t = known_type if known_type is not None else sym.type
        if subscripts and not isinstance(t, ArrayType):
            raise SemanticError(f"{sym.name!r} is not an array", node.line)
        if isinstance(t, ArrayType):
            if len(subscripts) > t.rank:
                raise SemanticError(
                    f"too many subscripts for {sym.name!r}", node.line
                )
            result = t.drop_dims(len(subscripts))
        else:
            result = t

        norm_subs = list(subscripts)
        if self.scalarize and isinstance(result, ArrayType):
            implicit = self._implicit_dims()
            if len(implicit) != result.rank:
                raise SemanticError(
                    f"array-valued reference to {sym.name!r} has rank "
                    f"{result.rank} but the equation has {len(implicit)} "
                    f"implicit dimension(s)",
                    node.line,
                )
            for d, sub_t in zip(implicit, result.dims):
                if not d.subrange.bounds_equal(sub_t):
                    self.owner.warnings.append(
                        f"implicit dimension {d.index} and array "
                        f"{sym.name!r} dimension have different declared "
                        f"bounds"
                    )
                norm_subs.append(Name(d.index, line=node.line))
            result = (
                result.element if len(norm_subs) == t.rank else t.drop_dims(len(norm_subs))
            )

        # Build the normalised node.
        if isinstance(node, Index):
            base = node.base
        else:
            base = node
        norm: Expr
        if norm_subs:
            norm = Index(base, norm_subs, line=node.line, column=node.column)
        else:
            norm = base
        self.refs.append(
            Reference(
                sym.name,
                norm_subs,
                fieldpath=fieldpath,
                explicit=len(subscripts),
            )
        )
        return result, norm

    def _index_value(
        self, t: Type, value: Expr, subscripts: list[Expr], node: Index
    ) -> tuple[Type, Expr]:
        """Indexing a computed value (a call result)."""
        if not isinstance(t, ArrayType):
            raise SemanticError("cannot subscript a non-array value", node.line)
        if len(subscripts) > t.rank:
            raise SemanticError("too many subscripts", node.line)
        result = t.drop_dims(len(subscripts))
        norm_subs = list(subscripts)
        if self.scalarize and isinstance(result, ArrayType):
            implicit = self._implicit_dims()
            if len(implicit) != result.rank:
                raise SemanticError(
                    "array-valued call result does not match the equation's "
                    "implicit dimensions",
                    node.line,
                )
            for d in implicit:
                norm_subs.append(Name(d.index, line=node.line))
            result = t.drop_dims(len(norm_subs))
        return result, Index(value, norm_subs, line=node.line, column=node.column)

    # -- calls --------------------------------------------------------------------

    def _check_call(self, expr: Call) -> tuple[Type, Expr]:
        is_module_call = expr.func not in _BUILTINS
        args: list[Expr] = []
        arg_types: list[Type] = []
        for a in expr.args:
            if is_module_call:
                # Module arguments pass whole arrays — suppress the
                # element-wise rewriting while checking them.
                saved = self.scalarize
                self.scalarize = False
                try:
                    at, ae = self._check(a)
                finally:
                    self.scalarize = saved
            else:
                at, ae = self._check(a)
            arg_types.append(at)
            args.append(ae)
        norm = Call(expr.func, args, line=expr.line, column=expr.column)

        if expr.func in _BUILTINS:
            arity, kind = _BUILTINS[expr.func]
            if len(args) != arity:
                raise SemanticError(
                    f"builtin {expr.func!r} takes {arity} argument(s)", expr.line
                )
            for at in arg_types:
                if not is_numeric(at):
                    raise SemanticError(
                        f"builtin {expr.func!r} requires numeric arguments",
                        expr.line,
                    )
            if kind == "real":
                return RealType, norm
            if kind == "int":
                return IntType, norm
            out: Type = IntType
            for at in arg_types:
                u = unify_numeric(out, at)
                assert u is not None
                out = u
            return out, norm

        sig = self.owner.signatures.get(expr.func)
        if sig is None:
            raise SemanticError(f"unknown function or module {expr.func!r}", expr.line)
        param_types, result_types = sig
        if len(arg_types) != len(param_types):
            raise SemanticError(
                f"module {expr.func!r} takes {len(param_types)} argument(s), "
                f"got {len(arg_types)}",
                expr.line,
            )
        for i, (at, pt) in enumerate(zip(arg_types, param_types)):
            if not self._arg_compatible(pt, at):
                raise SemanticError(
                    f"argument {i + 1} of {expr.func!r}: expected {pt}, got {at}",
                    expr.line,
                )
        self.calls.append(expr.func)
        if len(result_types) == 1:
            rt = result_types[0]
            if self.scalarize and isinstance(rt, ArrayType):
                # An array-valued call result in element-wise context is
                # indexed over the equation's implicit dimensions.
                implicit = self._implicit_dims()
                if len(implicit) != rt.rank:
                    raise SemanticError(
                        f"array result of {expr.func!r} has rank {rt.rank} "
                        f"but the equation has {len(implicit)} implicit "
                        f"dimension(s)",
                        expr.line,
                    )
                subs: list[Expr] = [Name(d.index, line=expr.line) for d in implicit]
                return rt.element, Index(norm, subs, line=expr.line)
            return rt, norm
        return TupleType(list(result_types)), norm

    @staticmethod
    def _arg_compatible(expected: Type, actual: Type) -> bool:
        if expected == actual:
            return True
        if expected == RealType and (actual == IntType or is_integral(actual)):
            return True
        if isinstance(expected, ArrayType) and isinstance(actual, ArrayType):
            return expected.rank == actual.rank and expected.element == actual.element
        return False

    # -- operators ------------------------------------------------------------------

    def _check_binop(self, expr: BinOp) -> tuple[Type, Expr]:
        lt, le = self._check(expr.left)
        rt, re_ = self._check(expr.right)
        norm = BinOp(expr.op, le, re_, line=expr.line, column=expr.column)
        op = expr.op
        if op in ("+", "-", "*"):
            u = unify_numeric(lt, rt)
            if u is None:
                raise SemanticError(f"operator {op!r} requires numeric operands", expr.line)
            return u, norm
        if op == "/":
            if unify_numeric(lt, rt) is None:
                raise SemanticError("'/' requires numeric operands", expr.line)
            return RealType, norm
        if op in ("div", "mod"):
            if not (is_integral(lt) and is_integral(rt)):
                raise SemanticError(f"{op!r} requires integer operands", expr.line)
            return IntType, norm
        if op in ("=", "<>"):
            if unify_numeric(lt, rt) is None and lt != rt:
                raise SemanticError(
                    f"operands of {op!r} must be comparable ({lt} vs {rt})",
                    expr.line,
                )
            return BoolType, norm
        if op in ("<", "<=", ">", ">="):
            ok = unify_numeric(lt, rt) is not None or (
                isinstance(lt, EnumType) and lt == rt
            )
            if not ok:
                raise SemanticError(f"operands of {op!r} must be ordered", expr.line)
            return BoolType, norm
        if op in ("and", "or"):
            if lt != BoolType or rt != BoolType:
                raise SemanticError(f"operands of {op!r} must be bool", expr.line)
            return BoolType, norm
        raise SemanticError(f"unknown operator {op!r}", expr.line)

    def _check_unop(self, expr: UnOp) -> tuple[Type, Expr]:
        t, e = self._check(expr.operand)
        norm = UnOp(expr.op, e, line=expr.line, column=expr.column)
        if expr.op in ("-", "+"):
            if not is_numeric(t):
                raise SemanticError("unary sign requires a numeric operand", expr.line)
            return (IntType if is_integral(t) else RealType), norm
        if expr.op == "not":
            if t != BoolType:
                raise SemanticError("'not' requires a bool operand", expr.line)
            return BoolType, norm
        raise SemanticError(f"unknown unary operator {expr.op!r}", expr.line)

    def _check_if(self, expr: IfExpr) -> tuple[Type, Expr]:
        ct, ce = self._check(expr.cond)
        if ct != BoolType:
            raise SemanticError("'if' condition must be bool", expr.line)
        tt, te = self._check(expr.then)
        et, ee = self._check(expr.orelse)
        norm = IfExpr(ce, te, ee, line=expr.line, column=expr.column)
        if tt == et:
            return tt, norm
        u = unify_numeric(tt, et)
        if u is None:
            raise SemanticError(
                f"'if' branches have incompatible types ({tt} vs {et})", expr.line
            )
        return u, norm


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _signature_of(analyzed: AnalyzedModule) -> tuple[list[Type], list[Type]]:
    params = [
        analyzed.table.symbol(p).type  # type: ignore[union-attr]
        for p in analyzed.param_names
    ]
    results = [
        analyzed.table.symbol(r).type  # type: ignore[union-attr]
        for r in analyzed.result_names
    ]
    return params, results


def analyze_program(program: Program) -> AnalyzedProgram:
    """Analyze all modules. A module may call any module defined *before* it
    in the program (no forward references, no recursion between modules)."""
    signatures: dict[str, tuple[list[Type], list[Type]]] = {}
    modules: dict[str, AnalyzedModule] = {}
    for mod in program.modules:
        if mod.name in modules:
            raise SemanticError(f"duplicate module {mod.name!r}", mod.line)
        analyzed = ModuleAnalyzer(mod, signatures).analyze()
        modules[mod.name] = analyzed
        signatures[mod.name] = _signature_of(analyzed)
    return AnalyzedProgram(modules)


def analyze_module(module: Module, program: AnalyzedProgram | None = None) -> AnalyzedModule:
    """Analyze a single module; ``program`` supplies callable modules."""
    signatures: dict[str, tuple[list[Type], list[Type]]] = {}
    if program is not None:
        signatures = {name: _signature_of(m) for name, m in program.modules.items()}
    return ModuleAnalyzer(module, signatures).analyze()
