"""Recursive-descent parser for PS.

Grammar (see the paper, section 2, and Figure 1 for the concrete style)::

    program     := module+
    module      := IDENT ':' 'module' '(' [params] ')' ':'
                   '[' results ']' ';' sections 'end' IDENT ';'
    params      := param (';' param)*
    param       := IDENT ':' typeexpr
    results     := param (';' param)*
    sections    := ['type' typedecl+] ['var' vardecl+] 'define' equation+
    typedecl    := namelist '=' typeexpr ';'
    vardecl     := namelist ':' typeexpr ';'
    equation    := lhsitem (',' lhsitem)* '=' expr ';'
    lhsitem     := IDENT ['[' exprlist ']']
    typeexpr    := 'array' '[' dims ']' 'of' typeexpr
                 | 'record' fields 'end'
                 | '(' namelist ')'
                 | 'int' | 'real' | 'bool'
                 | expr '..' expr
                 | IDENT
    dims        := dim (',' dim)*
    dim         := IDENT | expr '..' expr

    expr        := disj
    disj        := conj ('or' conj)*
    conj        := rel ('and' rel)*
    rel         := add [('='|'<>'|'<'|'<='|'>'|'>=') add]
    add         := mul (('+'|'-') mul)*
    mul         := unary (('*'|'/'|'div'|'mod') unary)*
    unary       := ('-'|'+'|'not') unary | postfix
    postfix     := primary ('[' exprlist ']' | '.' IDENT)*
    primary     := INT | REAL | 'true' | 'false' | '(' expr ')'
                 | 'if' expr 'then' expr 'else' expr
                 | IDENT ['(' exprlist ')']
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.ps.ast import (
    ArrayTypeExpr,
    BinOp,
    BoolLit,
    Call,
    EnumTypeExpr,
    Equation,
    Expr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    LhsItem,
    Module,
    Name,
    NamedTypeExpr,
    Param,
    Program,
    RangeTypeExpr,
    RealLit,
    RecordTypeExpr,
    TypeDecl,
    TypeExpr,
    UnOp,
    VarDecl,
)
from repro.ps.lexer import tokenize
from repro.ps.tokens import Token, TokenKind

_REL_OPS = {
    TokenKind.EQ: "=",
    TokenKind.NE: "<>",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}
_ADD_OPS = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MUL_OPS = {
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.DIV: "div",
    TokenKind.MOD: "mod",
}
_PRIMITIVE_KINDS = {
    TokenKind.INT_TYPE: "int",
    TokenKind.REAL_TYPE: "real",
    TokenKind.BOOL_TYPE: "bool",
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- cursor helpers -----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def _at(self, kind: TokenKind) -> bool:
        return self.cur.kind is kind

    def _advance(self) -> Token:
        tok = self.cur
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind) -> Token:
        if not self._at(kind):
            raise ParseError(
                f"expected {kind.value!r}, found {self.cur.text or self.cur.kind.value!r}",
                self.cur.line,
                self.cur.column,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        return self._advance() if self._at(kind) else None

    # -- program / module ---------------------------------------------------

    def parse_program(self) -> Program:
        tok = self.cur
        modules = [self.parse_module()]
        while not self._at(TokenKind.EOF):
            modules.append(self.parse_module())
        return Program(modules, line=tok.line, column=tok.column)

    def parse_module(self) -> Module:
        name_tok = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.COLON)
        self._expect(TokenKind.MODULE)
        self._expect(TokenKind.LPAREN)
        params: list[Param] = []
        if not self._at(TokenKind.RPAREN):
            params = self._param_list()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.COLON)
        self._expect(TokenKind.LBRACK)
        results = self._param_list()
        self._expect(TokenKind.RBRACK)
        self._expect(TokenKind.SEMI)

        typedecls: list[TypeDecl] = []
        vardecls: list[VarDecl] = []
        if self._accept(TokenKind.TYPE):
            while self._at(TokenKind.IDENT):
                typedecls.append(self._typedecl())
        if self._accept(TokenKind.VAR):
            while self._at(TokenKind.IDENT):
                vardecls.append(self._vardecl())
        self._expect(TokenKind.DEFINE)
        equations: list[Equation] = []
        while not self._at(TokenKind.END):
            equations.append(self._equation(len(equations) + 1))
        self._expect(TokenKind.END)
        end_tok = self._expect(TokenKind.IDENT)
        if end_tok.text != name_tok.text:
            raise ParseError(
                f"module {name_tok.text!r} terminated by 'end {end_tok.text}'",
                end_tok.line,
                end_tok.column,
            )
        self._expect(TokenKind.SEMI)
        return Module(
            name=name_tok.text,
            params=params,
            results=results,
            typedecls=typedecls,
            vardecls=vardecls,
            equations=equations,
            line=name_tok.line,
            column=name_tok.column,
        )

    def _param_list(self) -> list[Param]:
        params = [self._param()]
        while self._accept(TokenKind.SEMI):
            params.append(self._param())
        return params

    def _param(self) -> Param:
        # Allow "a, b: int" as sugar for two parameters of the same type.
        names = [self._expect(TokenKind.IDENT)]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect(TokenKind.IDENT))
        self._expect(TokenKind.COLON)
        te = self.parse_typeexpr()
        if len(names) == 1:
            n = names[0]
            return Param(n.text, te, line=n.line, column=n.column)
        # Expand into a Param per name; caller flattens.
        raise ParseError(
            "parameter groups with several names are not supported in a "
            "single Param node; separate with ';'",
            names[1].line,
            names[1].column,
        )

    def _namelist(self) -> list[Token]:
        names = [self._expect(TokenKind.IDENT)]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect(TokenKind.IDENT))
        return names

    def _typedecl(self) -> TypeDecl:
        names = self._namelist()
        self._expect(TokenKind.EQ)
        te = self.parse_typeexpr()
        self._expect(TokenKind.SEMI)
        return TypeDecl(
            [n.text for n in names], te, line=names[0].line, column=names[0].column
        )

    def _vardecl(self) -> VarDecl:
        names = self._namelist()
        self._expect(TokenKind.COLON)
        te = self.parse_typeexpr()
        self._expect(TokenKind.SEMI)
        return VarDecl(
            [n.text for n in names], te, line=names[0].line, column=names[0].column
        )

    def _equation(self, number: int) -> Equation:
        first = self._lhsitem()
        lhs = [first]
        while self._accept(TokenKind.COMMA):
            lhs.append(self._lhsitem())
        self._expect(TokenKind.EQ)
        rhs = self.parse_expr()
        self._expect(TokenKind.SEMI)
        return Equation(lhs, rhs, label=f"eq.{number}", line=first.line, column=first.column)

    def _lhsitem(self) -> LhsItem:
        name = self._expect(TokenKind.IDENT)
        subs: list[Expr] = []
        if self._accept(TokenKind.LBRACK):
            subs.append(self.parse_expr())
            while self._accept(TokenKind.COMMA):
                subs.append(self.parse_expr())
            self._expect(TokenKind.RBRACK)
        return LhsItem(name.text, subs, line=name.line, column=name.column)

    # -- types ----------------------------------------------------------------

    def parse_typeexpr(self) -> TypeExpr:
        tok = self.cur
        if self._accept(TokenKind.ARRAY):
            self._expect(TokenKind.LBRACK)
            dims = [self._dim()]
            while self._accept(TokenKind.COMMA):
                dims.append(self._dim())
            self._expect(TokenKind.RBRACK)
            self._expect(TokenKind.OF)
            element = self.parse_typeexpr()
            return ArrayTypeExpr(dims, element, line=tok.line, column=tok.column)
        if self._accept(TokenKind.RECORD):
            fields: list[tuple[list[str], TypeExpr]] = []
            names = self._namelist()
            self._expect(TokenKind.COLON)
            fields.append(([n.text for n in names], self.parse_typeexpr()))
            while self._accept(TokenKind.SEMI):
                if self._at(TokenKind.END):
                    break
                names = self._namelist()
                self._expect(TokenKind.COLON)
                fields.append(([n.text for n in names], self.parse_typeexpr()))
            self._expect(TokenKind.END)
            return RecordTypeExpr(fields, line=tok.line, column=tok.column)
        if self.cur.kind in _PRIMITIVE_KINDS:
            kind = _PRIMITIVE_KINDS[self._advance().kind]
            return NamedTypeExpr(kind, line=tok.line, column=tok.column)
        if self._at(TokenKind.LPAREN):
            # Could be an enumeration "(a, b, c)" or a parenthesised bound
            # expression starting a range "(M+1) .. N". Disambiguate: an
            # enumeration is IDENT (',' IDENT)* ')' not followed by '..'.
            save = self.pos
            self._advance()
            if self._at(TokenKind.IDENT):
                names = [self._advance()]
                ok = True
                while self._accept(TokenKind.COMMA):
                    if self._at(TokenKind.IDENT):
                        names.append(self._advance())
                    else:
                        ok = False
                        break
                if ok and self._accept(TokenKind.RPAREN) and not self._at(TokenKind.DOTDOT):
                    return EnumTypeExpr(
                        [n.text for n in names], line=tok.line, column=tok.column
                    )
            self.pos = save
            return self._range_typeexpr()
        # IDENT alone is a named type, unless followed by '..'-style range or
        # the IDENT begins a bound expression like "M+1 .. N".
        if self._at(TokenKind.IDENT):
            save = self.pos
            ident = self._advance()
            if not self.cur.kind in (
                TokenKind.DOTDOT,
                TokenKind.PLUS,
                TokenKind.MINUS,
                TokenKind.STAR,
                TokenKind.SLASH,
                TokenKind.DIV,
                TokenKind.MOD,
            ):
                return NamedTypeExpr(ident.text, line=ident.line, column=ident.column)
            self.pos = save
            return self._range_typeexpr()
        return self._range_typeexpr()

    def _range_typeexpr(self) -> TypeExpr:
        tok = self.cur
        lo = self.parse_expr()
        self._expect(TokenKind.DOTDOT)
        hi = self.parse_expr()
        return RangeTypeExpr(lo, hi, line=tok.line, column=tok.column)

    def _dim(self) -> TypeExpr:
        """One dimension inside ``array [...]``: a subrange name or range."""
        return self.parse_typeexpr()

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._disj()

    def _disj(self) -> Expr:
        left = self._conj()
        while self._at(TokenKind.OR):
            tok = self._advance()
            right = self._conj()
            left = BinOp("or", left, right, line=tok.line, column=tok.column)
        return left

    def _conj(self) -> Expr:
        left = self._rel()
        while self._at(TokenKind.AND):
            tok = self._advance()
            right = self._rel()
            left = BinOp("and", left, right, line=tok.line, column=tok.column)
        return left

    def _rel(self) -> Expr:
        left = self._add()
        if self.cur.kind in _REL_OPS:
            tok = self._advance()
            right = self._add()
            return BinOp(_REL_OPS[tok.kind], left, right, line=tok.line, column=tok.column)
        return left

    def _add(self) -> Expr:
        left = self._mul()
        while self.cur.kind in _ADD_OPS:
            tok = self._advance()
            right = self._mul()
            left = BinOp(_ADD_OPS[tok.kind], left, right, line=tok.line, column=tok.column)
        return left

    def _mul(self) -> Expr:
        left = self._unary()
        while self.cur.kind in _MUL_OPS:
            tok = self._advance()
            right = self._unary()
            left = BinOp(_MUL_OPS[tok.kind], left, right, line=tok.line, column=tok.column)
        return left

    def _unary(self) -> Expr:
        if self.cur.kind in (TokenKind.MINUS, TokenKind.PLUS):
            tok = self._advance()
            return UnOp(tok.text, self._unary(), line=tok.line, column=tok.column)
        if self._at(TokenKind.NOT):
            tok = self._advance()
            return UnOp("not", self._unary(), line=tok.line, column=tok.column)
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while True:
            if self._at(TokenKind.LBRACK):
                tok = self._advance()
                subs = [self.parse_expr()]
                while self._accept(TokenKind.COMMA):
                    subs.append(self.parse_expr())
                self._expect(TokenKind.RBRACK)
                expr = Index(expr, subs, line=tok.line, column=tok.column)
            elif self._at(TokenKind.DOT):
                tok = self._advance()
                fieldname = self._expect(TokenKind.IDENT)
                expr = FieldRef(expr, fieldname.text, line=tok.line, column=tok.column)
            else:
                return expr

    def _primary(self) -> Expr:
        tok = self.cur
        if self._accept(TokenKind.INT):
            return IntLit(int(tok.text), line=tok.line, column=tok.column)
        if self._accept(TokenKind.REAL):
            return RealLit(float(tok.text), line=tok.line, column=tok.column)
        if self._accept(TokenKind.TRUE):
            return BoolLit(True, line=tok.line, column=tok.column)
        if self._accept(TokenKind.FALSE):
            return BoolLit(False, line=tok.line, column=tok.column)
        if self._accept(TokenKind.LPAREN):
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        if self._accept(TokenKind.IF):
            cond = self.parse_expr()
            self._expect(TokenKind.THEN)
            then = self.parse_expr()
            self._expect(TokenKind.ELSE)
            orelse = self.parse_expr()
            return IfExpr(cond, then, orelse, line=tok.line, column=tok.column)
        if self._at(TokenKind.IDENT):
            ident = self._advance()
            if self._at(TokenKind.LPAREN):
                self._advance()
                args: list[Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self.parse_expr())
                    while self._accept(TokenKind.COMMA):
                        args.append(self.parse_expr())
                self._expect(TokenKind.RPAREN)
                return Call(ident.text, args, line=ident.line, column=ident.column)
            return Name(ident.text, line=ident.line, column=ident.column)
        raise ParseError(
            f"unexpected token {self.cur.text or self.cur.kind.value!r} in expression",
            tok.line,
            tok.column,
        )


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def parse_program(source: str) -> Program:
    """Parse a whole PS program (one or more modules)."""
    return Parser(tokenize(source)).parse_program()


def parse_module(source: str) -> Module:
    """Parse a single PS module; trailing input must be empty."""
    parser = Parser(tokenize(source))
    module = parser.parse_module()
    if not parser._at(TokenKind.EOF):
        tok = parser.cur
        raise ParseError(f"unexpected input after module: {tok.text!r}", tok.line, tok.column)
    return module


def parse_expression(source: str) -> Expr:
    """Parse a standalone PS expression (used by tests and the builder)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    if not parser._at(TokenKind.EOF):
        tok = parser.cur
        raise ParseError(
            f"unexpected input after expression: {tok.text!r}", tok.line, tok.column
        )
    return expr
