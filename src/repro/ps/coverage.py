"""Single-assignment / definition-domain checks.

PS is a single-assignment language: "a value is never changed. Rather a new
value is generated from a computation involving the old value" (paper,
footnote in section 2). A variable may nevertheless be defined by *several*
equations as long as their definition domains are disjoint — the paper's
``A[1] = InitialA`` together with ``A[K,I,J] = ...`` over ``K = 2..maxK``.

Whether two domains overlap is generally undecidable with symbolic bounds, so
the checker is split into:

* **errors** for definite violations (same constant subscript twice, two
  full-range definitions of the same dimension, a scalar defined twice);
* **warnings** for situations it cannot decide (symbolic bounds).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CoverageError
from repro.ps.ast import Expr, Name
from repro.ps.symbols import SymbolKind


@dataclass
class _DimDomain:
    """What one equation covers in one dimension of a target."""

    kind: str  # "const" | "range"
    const: int | None = None  # literal constant, when decidable
    lo: int | None = None  # literal range bounds, when decidable
    hi: int | None = None
    symbolic: bool = False  # True when bounds are not integer literals


def _literal_value(expr: Expr) -> int | None:
    """Evaluate an expression to an int when it folds to a constant
    (literals combined with +, -, *, unary sign)."""
    from repro.graph.labels import _literal_int

    return _literal_int(expr)


def _domains_disjoint(a: _DimDomain, b: _DimDomain) -> bool | None:
    """True/False when decidable, None when unknown."""
    if a.kind == "const" and b.kind == "const":
        if a.const is not None and b.const is not None:
            return a.const != b.const
        return None
    if a.kind == "const" and b.kind == "range":
        return _const_vs_range(a, b)
    if a.kind == "range" and b.kind == "const":
        return _const_vs_range(b, a)
    # range vs range: disjoint iff one ends before the other starts.
    if None not in (a.lo, a.hi, b.lo, b.hi):
        return a.hi < b.lo or b.hi < a.lo  # type: ignore[operator]
    return None


def _const_vs_range(c: _DimDomain, r: _DimDomain) -> bool | None:
    if c.const is None:
        return None
    if r.lo is not None and c.const < r.lo:
        return True
    if r.hi is not None and c.const > r.hi:
        return True
    if r.lo is not None and r.hi is not None:
        return not (r.lo <= c.const <= r.hi)
    return None


def check_coverage(analyzed) -> None:
    """Raise :class:`CoverageError` on definite overlap; append warnings to
    ``analyzed.warnings`` for undecidable cases. Also verifies that every
    result and local variable has at least one defining equation."""
    table = analyzed.table

    defs: dict[str, list[tuple[str, list[_DimDomain]]]] = {}
    for eq in analyzed.equations:
        index_ranges = {d.index: d.subrange for d in eq.dims}
        for target in eq.targets:
            dims: list[_DimDomain] = []
            for sub in target.subscripts:
                if isinstance(sub, Name) and sub.ident in index_ranges:
                    sr = index_ranges[sub.ident]
                    lo = _literal_value(sr.lo)
                    hi = _literal_value(sr.hi)
                    dims.append(
                        _DimDomain(
                            "range",
                            lo=lo,
                            hi=hi,
                            symbolic=(lo is None or hi is None),
                        )
                    )
                else:
                    c = _literal_value(sub)
                    dims.append(_DimDomain("const", const=c, symbolic=(c is None)))
            defs.setdefault(target.name, []).append((eq.label, dims))

    # Pairwise overlap check per target.
    for name, entries in defs.items():
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                la, da = entries[i]
                lb, db = entries[j]
                verdicts = [
                    _domains_disjoint(x, y) for x, y in zip(da, db)
                ]
                if not verdicts:  # scalar target defined twice
                    raise CoverageError(
                        f"{name!r} is defined by both {la} and {lb}"
                    )
                if any(v is True for v in verdicts):
                    continue  # provably disjoint in some dimension
                if all(v is False for v in verdicts):
                    raise CoverageError(
                        f"definitions of {name!r} in {la} and {lb} overlap"
                    )
                analyzed.warnings.append(
                    f"cannot prove definitions of {name!r} in {la} and {lb} "
                    f"are disjoint (symbolic bounds)"
                )

    # Every non-input must be defined; inputs must not be.
    for sym in table.symbols.values():
        if sym.kind is SymbolKind.PARAM:
            continue
        if sym.name not in defs:
            raise CoverageError(
                f"{sym.kind.value} {sym.name!r} has no defining equation"
            )
