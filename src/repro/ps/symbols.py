"""Symbol table for PS modules.

Symbols are the module's data items: input parameters, results and local
variables. Type names (subranges, enums, records) live in a separate
namespace that shares the identifier space — PS resolves a name appearing in
an expression to either a data symbol, an enum member, or a subrange type
used as an index variable (section 2: "the superscripts and subscripts are
not differentiated").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.ps.types import SubrangeType, Type


class SymbolKind(enum.Enum):
    PARAM = "param"
    RESULT = "result"
    VAR = "var"


@dataclass
class Symbol:
    """A data item declared by a module."""

    name: str
    kind: SymbolKind
    type: Type
    order: int  # declaration order, used for deterministic graph layout

    @property
    def is_input(self) -> bool:
        return self.kind is SymbolKind.PARAM


@dataclass
class SymbolTable:
    symbols: dict[str, Symbol] = field(default_factory=dict)
    subranges: dict[str, SubrangeType] = field(default_factory=dict)
    enums: dict[str, "object"] = field(default_factory=dict)  # name -> EnumType
    enum_members: dict[str, tuple[object, int]] = field(default_factory=dict)
    records: dict[str, Type] = field(default_factory=dict)
    _order: int = 0

    def declare_symbol(self, name: str, kind: SymbolKind, type_: Type, line: int = 0) -> Symbol:
        self._check_free(name, line)
        sym = Symbol(name, kind, type_, self._order)
        self._order += 1
        self.symbols[name] = sym
        return sym

    def declare_subrange(self, sub: SubrangeType, line: int = 0) -> None:
        self._check_free(sub.name, line)
        self.subranges[sub.name] = sub

    def declare_enum(self, name: str, enum_type, line: int = 0) -> None:
        self._check_free(name, line)
        self.enums[name] = enum_type
        for i, member in enumerate(enum_type.members):
            if member in self.enum_members:
                raise SemanticError(f"duplicate enum member {member!r}", line)
            self._check_free(member, line)
            self.enum_members[member] = (enum_type, i)

    def declare_record(self, name: str, rec_type: Type, line: int = 0) -> None:
        self._check_free(name, line)
        self.records[name] = rec_type

    def _check_free(self, name: str, line: int) -> None:
        if (
            name in self.symbols
            or name in self.subranges
            or name in self.enums
            or name in self.enum_members
            or name in self.records
        ):
            raise SemanticError(f"duplicate declaration of {name!r}", line)

    # -- lookups -------------------------------------------------------------

    def symbol(self, name: str) -> Symbol | None:
        return self.symbols.get(name)

    def subrange(self, name: str) -> SubrangeType | None:
        return self.subranges.get(name)

    def is_declared(self, name: str) -> bool:
        return (
            name in self.symbols
            or name in self.subranges
            or name in self.enums
            or name in self.enum_members
            or name in self.records
        )
