"""Abstract syntax tree for PS programs.

The AST is intentionally close to the concrete syntax of the paper's
Figure 1 (the ``Relaxation`` module): a program is a list of modules; a
module has parameters, results, ``type``/``var`` sections, and a ``define``
section of equations; expressions include if-expressions, array indexing,
record field selection and module calls.

Every node carries a ``line``/``column`` position for diagnostics. Structural
equality of expressions (needed by the scheduler to recognise that a
subscript expression is the declared upper bound of a subrange, section 3.4
rule 2) is provided by :func:`expr_equal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    line: int = field(default=0, kw_only=True, compare=False)
    column: int = field(default=0, kw_only=True, compare=False)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class RealLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class Name(Expr):
    """An identifier used in an expression: a variable, parameter, enum
    member, or a subrange type name used as an index variable (PS does not
    differentiate them syntactically)."""

    ident: str


@dataclass
class BinOp(Expr):
    """Binary operation. ``op`` is one of ``+ - * / div mod = <> < <= > >=
    and or``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    """Unary operation: ``-``, ``+`` or ``not``."""

    op: str
    operand: Expr


@dataclass
class IfExpr(Expr):
    """``if c then a else b`` — an expression, as PS has no statements."""

    cond: Expr
    then: Expr
    orelse: Expr


@dataclass
class Index(Expr):
    """Array indexing ``base[s1, s2, ...]``. Partial indexing is allowed:
    indexing a rank-3 array with one subscript yields a rank-2 value (the
    paper's ``A[1]`` and ``A[maxK]``)."""

    base: Expr
    subscripts: list[Expr]


@dataclass
class FieldRef(Expr):
    """Record field selection ``base.field``."""

    base: Expr
    fieldname: str


@dataclass
class Call(Expr):
    """Module or builtin function invocation ``name(args)``."""

    func: str
    args: list[Expr]


# ---------------------------------------------------------------------------
# Type expressions (syntax of types, resolved by semantic analysis)
# ---------------------------------------------------------------------------


@dataclass
class TypeExpr(Node):
    pass


@dataclass
class NamedTypeExpr(TypeExpr):
    """A reference to a declared type or a primitive: ``int``, ``real``,
    ``bool``, or an identifier."""

    name: str


@dataclass
class RangeTypeExpr(TypeExpr):
    """An anonymous subrange ``lo .. hi`` with expression bounds (the
    paper's ``array [1 .. maxK] of ...``)."""

    lo: Expr
    hi: Expr


@dataclass
class ArrayTypeExpr(TypeExpr):
    """``array [d1, d2, ...] of element``. Each dimension is a named
    subrange or an anonymous range."""

    dims: list[TypeExpr]
    element: TypeExpr


@dataclass
class RecordTypeExpr(TypeExpr):
    """``record f1: T1; f2: T2 end``."""

    fields: list[tuple[list[str], TypeExpr]]


@dataclass
class EnumTypeExpr(TypeExpr):
    """``(a, b, c)`` — Pascal-style enumeration."""

    members: list[str]


# ---------------------------------------------------------------------------
# Declarations and module structure
# ---------------------------------------------------------------------------


@dataclass
class TypeDecl(Node):
    """``I, J = 0 .. M+1;`` — possibly several names per declaration."""

    names: list[str]
    typeexpr: TypeExpr


@dataclass
class VarDecl(Node):
    """``A: array [1..maxK] of array[I,J] of real;``"""

    names: list[str]
    typeexpr: TypeExpr


@dataclass
class Param(Node):
    """A module input parameter or result: ``InitialA: array[I,J] of real``."""

    name: str
    typeexpr: TypeExpr


@dataclass
class LhsItem(Node):
    """One target on the left-hand side of an equation, optionally
    subscripted: ``A[K,I,J]`` or ``newA``."""

    name: str
    subscripts: list[Expr]


@dataclass
class Equation(Node):
    """``lhs = rhs;`` where ``lhs`` is a list of targets (the paper allows a
    variable list whose arity matches the right-hand side)."""

    lhs: list[LhsItem]
    rhs: Expr
    label: str = ""  # "eq.1", "eq.2", ... assigned by source order


@dataclass
class Module(Node):
    """A PS module: a functional unit taking 0+ inputs and returning 1+
    results (paper section 2)."""

    name: str
    params: list[Param]
    results: list[Param]
    typedecls: list[TypeDecl]
    vardecls: list[VarDecl]
    equations: list[Equation]


@dataclass
class Program(Node):
    """One or more module descriptions."""

    modules: list[Module]


# ---------------------------------------------------------------------------
# Structural expression equality and traversal helpers
# ---------------------------------------------------------------------------


def expr_equal(a: Expr, b: Expr) -> bool:
    """Structural equality of expressions, ignoring source positions."""
    if type(a) is not type(b):
        return False
    if isinstance(a, IntLit):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, RealLit):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, BoolLit):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, Name):
        return a.ident == b.ident  # type: ignore[union-attr]
    if isinstance(a, BinOp):
        assert isinstance(b, BinOp)
        return a.op == b.op and expr_equal(a.left, b.left) and expr_equal(a.right, b.right)
    if isinstance(a, UnOp):
        assert isinstance(b, UnOp)
        return a.op == b.op and expr_equal(a.operand, b.operand)
    if isinstance(a, IfExpr):
        assert isinstance(b, IfExpr)
        return (
            expr_equal(a.cond, b.cond)
            and expr_equal(a.then, b.then)
            and expr_equal(a.orelse, b.orelse)
        )
    if isinstance(a, Index):
        assert isinstance(b, Index)
        return (
            expr_equal(a.base, b.base)
            and len(a.subscripts) == len(b.subscripts)
            and all(expr_equal(x, y) for x, y in zip(a.subscripts, b.subscripts))
        )
    if isinstance(a, FieldRef):
        assert isinstance(b, FieldRef)
        return a.fieldname == b.fieldname and expr_equal(a.base, b.base)
    if isinstance(a, Call):
        assert isinstance(b, Call)
        return (
            a.func == b.func
            and len(a.args) == len(b.args)
            and all(expr_equal(x, y) for x, y in zip(a.args, b.args))
        )
    raise TypeError(f"unknown expression node {type(a).__name__}")


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, IfExpr):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.orelse)
    elif isinstance(expr, Index):
        yield from walk_expr(expr.base)
        for s in expr.subscripts:
            yield from walk_expr(s)
    elif isinstance(expr, FieldRef):
        yield from walk_expr(expr.base)
    elif isinstance(expr, Call):
        for a in expr.args:
            yield from walk_expr(a)


def names_in(expr: Expr) -> set[str]:
    """The set of identifiers appearing anywhere in ``expr``."""
    return {n.ident for n in walk_expr(expr) if isinstance(n, Name)}
