"""Token kinds for the PS language.

PS keywords are case-insensitive (the paper typesets them in several cases);
identifiers are case-sensitive. Comments are Pascal-style ``(* ... *)`` and
may nest, which the paper's examples rely on for commented-out annotations
such as ``(*$m+v+x+t -*)`` in Figure 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    # Literals / names
    IDENT = "identifier"
    INT = "integer literal"
    REAL = "real literal"

    # Keywords
    MODULE = "module"
    TYPE = "type"
    VAR = "var"
    DEFINE = "define"
    END = "end"
    ARRAY = "array"
    OF = "of"
    RECORD = "record"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    AND = "and"
    OR = "or"
    NOT = "not"
    DIV = "div"
    MOD = "mod"
    TRUE = "true"
    FALSE = "false"
    INT_TYPE = "int"
    REAL_TYPE = "real"
    BOOL_TYPE = "bool"

    # Punctuation / operators
    COLON = ":"
    SEMI = ";"
    COMMA = ","
    LPAREN = "("
    RPAREN = ")"
    LBRACK = "["
    RBRACK = "]"
    DOT = "."
    DOTDOT = ".."
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"

    EOF = "end of input"


#: Keyword spelling (lower-case) -> token kind.
KEYWORDS: dict[str, TokenKind] = {
    "module": TokenKind.MODULE,
    "type": TokenKind.TYPE,
    "var": TokenKind.VAR,
    "define": TokenKind.DEFINE,
    "end": TokenKind.END,
    "array": TokenKind.ARRAY,
    "of": TokenKind.OF,
    "record": TokenKind.RECORD,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
    "div": TokenKind.DIV,
    "mod": TokenKind.MOD,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "int": TokenKind.INT_TYPE,
    "integer": TokenKind.INT_TYPE,  # accepted alias
    "real": TokenKind.REAL_TYPE,
    "bool": TokenKind.BOOL_TYPE,
    "boolean": TokenKind.BOOL_TYPE,  # accepted alias
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
