"""Pretty-printer: AST -> PS source text.

``parse(format(x))`` round-trips structurally (tested property-based), which
lets the hyperplane pipeline emit *transformed modules as PS source* the way
the paper presents its rewritten recurrence.
"""

from __future__ import annotations

from repro.ps.ast import (
    ArrayTypeExpr,
    BinOp,
    BoolLit,
    Call,
    EnumTypeExpr,
    Equation,
    Expr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    Module,
    Name,
    NamedTypeExpr,
    Program,
    RangeTypeExpr,
    RealLit,
    RecordTypeExpr,
    TypeExpr,
    UnOp,
)

# Operator precedence, mirroring the parser's grammar levels.
_PREC = {
    "or": 1,
    "and": 2,
    "=": 3,
    "<>": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "div": 5,
    "mod": 5,
}
_UNARY_PREC = 6


def format_expression(expr: Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, RealLit):
        text = repr(expr.value)
        return text
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, Name):
        return expr.ident
    if isinstance(expr, BinOp):
        prec = _PREC[expr.op]
        # Left associative: the right child needs a strictly higher level.
        # Relational operators are NON-associative in the grammar
        # (rel := add [relop add]), so a relational child on either side
        # must be parenthesised.
        left_prec = prec + 1 if prec == 3 else prec
        left = format_expression(expr.left, left_prec)
        right = format_expression(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, UnOp):
        inner = format_expression(expr.operand, _UNARY_PREC)
        sep = " " if expr.op == "not" else ""
        text = f"{expr.op}{sep}{inner}"
        if _UNARY_PREC < parent_prec:
            return f"({text})"
        return text
    if isinstance(expr, IfExpr):
        text = (
            f"if {format_expression(expr.cond)} "
            f"then {format_expression(expr.then)} "
            f"else {format_expression(expr.orelse)}"
        )
        # if-expressions always parenthesised inside larger expressions
        if parent_prec > 0:
            return f"({text})"
        return text
    if isinstance(expr, Index):
        base = format_expression(expr.base, _UNARY_PREC + 1)
        subs = ", ".join(format_expression(s) for s in expr.subscripts)
        return f"{base}[{subs}]"
    if isinstance(expr, FieldRef):
        base = format_expression(expr.base, _UNARY_PREC + 1)
        return f"{base}.{expr.fieldname}"
    if isinstance(expr, Call):
        args = ", ".join(format_expression(a) for a in expr.args)
        return f"{expr.func}({args})"
    raise TypeError(f"cannot format {type(expr).__name__}")


def format_typeexpr(te: TypeExpr) -> str:
    if isinstance(te, NamedTypeExpr):
        return te.name
    if isinstance(te, RangeTypeExpr):
        return f"{format_expression(te.lo)} .. {format_expression(te.hi)}"
    if isinstance(te, ArrayTypeExpr):
        dims = ", ".join(format_typeexpr(d) for d in te.dims)
        return f"array [{dims}] of {format_typeexpr(te.element)}"
    if isinstance(te, RecordTypeExpr):
        fields = "; ".join(
            f"{', '.join(names)}: {format_typeexpr(ft)}" for names, ft in te.fields
        )
        return f"record {fields} end"
    if isinstance(te, EnumTypeExpr):
        return "(" + ", ".join(te.members) + ")"
    raise TypeError(f"cannot format {type(te).__name__}")


def format_equation(eq: Equation) -> str:
    lhs_parts = []
    for item in eq.lhs:
        if item.subscripts:
            subs = ", ".join(format_expression(s) for s in item.subscripts)
            lhs_parts.append(f"{item.name}[{subs}]")
        else:
            lhs_parts.append(item.name)
    return f"{', '.join(lhs_parts)} = {format_expression(eq.rhs)};"


def format_module(module: Module) -> str:
    lines: list[str] = []
    params = "; ".join(f"{p.name}: {format_typeexpr(p.typeexpr)}" for p in module.params)
    results = "; ".join(f"{r.name}: {format_typeexpr(r.typeexpr)}" for r in module.results)
    lines.append(f"{module.name}: module ({params}):")
    lines.append(f"    [{results}];")
    if module.typedecls:
        lines.append("type")
        for decl in module.typedecls:
            names = ", ".join(decl.names)
            lines.append(f"    {names} = {format_typeexpr(decl.typeexpr)};")
    if module.vardecls:
        lines.append("var")
        for decl in module.vardecls:
            names = ", ".join(decl.names)
            lines.append(f"    {names}: {format_typeexpr(decl.typeexpr)};")
    lines.append("define")
    for eq in module.equations:
        lines.append(f"    {format_equation(eq)}")
    lines.append(f"end {module.name};")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    return "\n\n".join(format_module(m) for m in program.modules)
