"""Programmatic PS module builder.

The paper's future-work list includes "a graphical front end, which can
translate Equation 1 or Equation 2 into PS". This module provides the
text-free equivalent for Python users: a fluent builder that assembles a PS
:class:`~repro.ps.ast.Module` from equation strings or expression ASTs,
suitable for the numerical-recurrence use case the paper motivates.

Example — the paper's Relaxation module::

    b = ModuleBuilder("Relaxation")
    b.param("InitialA", "array[I,J] of real")
    b.param("M", "int")
    b.param("maxK", "int")
    b.result("newA", "array[I,J] of real")
    b.subrange("I", "0", "M+1")
    b.subrange("J", "0", "M+1")
    b.subrange("K", "2", "maxK")
    b.var("A", "array[1 .. maxK] of array[I,J] of real")
    b.equation("A[1] = InitialA")
    b.equation("newA = A[maxK]")
    b.equation("A[K,I,J] = if ... ;")
    module = b.build()
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.ps.ast import (
    Equation,
    Expr,
    LhsItem,
    Module,
    Param,
    RangeTypeExpr,
    TypeDecl,
    TypeExpr,
    VarDecl,
)
from repro.ps.lexer import tokenize
from repro.ps.parser import Parser, parse_expression
from repro.ps.semantics import AnalyzedModule, AnalyzedProgram, analyze_module
from repro.ps.tokens import TokenKind


def parse_typeexpr_text(text: str) -> TypeExpr:
    parser = Parser(tokenize(text))
    te = parser.parse_typeexpr()
    if parser.cur.kind is not TokenKind.EOF:
        raise ParseError(f"unexpected input after type: {parser.cur.text!r}")
    return te


class ModuleBuilder:
    """Assembles a PS module declaration by declaration."""

    def __init__(self, name: str):
        self.name = name
        self._params: list[Param] = []
        self._results: list[Param] = []
        self._typedecls: list[TypeDecl] = []
        self._vardecls: list[VarDecl] = []
        self._equations: list[Equation] = []

    # -- declarations --------------------------------------------------------

    def param(self, name: str, typetext: str) -> ModuleBuilder:
        self._params.append(Param(name, parse_typeexpr_text(typetext)))
        return self

    def result(self, name: str, typetext: str) -> ModuleBuilder:
        self._results.append(Param(name, parse_typeexpr_text(typetext)))
        return self

    def subrange(self, name: str, lo: str | int, hi: str | int) -> ModuleBuilder:
        lo_e = parse_expression(str(lo))
        hi_e = parse_expression(str(hi))
        self._typedecls.append(TypeDecl([name], RangeTypeExpr(lo_e, hi_e)))
        return self

    def typedecl(self, name: str, typetext: str) -> ModuleBuilder:
        self._typedecls.append(TypeDecl([name], parse_typeexpr_text(typetext)))
        return self

    def var(self, name: str, typetext: str) -> ModuleBuilder:
        self._vardecls.append(VarDecl([name], parse_typeexpr_text(typetext)))
        return self

    # -- equations -------------------------------------------------------------

    def equation(self, text: str) -> ModuleBuilder:
        """Add an equation from source text ``"lhs = rhs"`` (trailing ';'
        optional)."""
        text = text.strip()
        if not text.endswith(";"):
            text += ";"
        parser = Parser(tokenize(text))
        eq = parser._equation(len(self._equations) + 1)
        if parser.cur.kind is not TokenKind.EOF:
            raise ParseError(f"unexpected input after equation: {parser.cur.text!r}")
        self._equations.append(eq)
        return self

    def define(self, lhs: str, rhs: Expr | str) -> ModuleBuilder:
        """Add an equation with a textual LHS and an AST or textual RHS."""
        if isinstance(rhs, str):
            rhs_expr = parse_expression(rhs)
        else:
            rhs_expr = rhs
        parser = Parser(tokenize(lhs))
        item = parser._lhsitem()
        items = [item]
        while parser.cur.kind is TokenKind.COMMA:
            parser._advance()
            items.append(parser._lhsitem())
        if parser.cur.kind is not TokenKind.EOF:
            raise ParseError(f"unexpected input in LHS: {parser.cur.text!r}")
        eq = Equation(items, rhs_expr, label=f"eq.{len(self._equations) + 1}")
        self._equations.append(eq)
        return self

    # -- assembly ----------------------------------------------------------------

    def build(self) -> Module:
        return Module(
            name=self.name,
            params=list(self._params),
            results=list(self._results),
            typedecls=list(self._typedecls),
            vardecls=list(self._vardecls),
            equations=list(self._equations),
        )

    def analyze(self, program: AnalyzedProgram | None = None) -> AnalyzedModule:
        return analyze_module(self.build(), program)


def relaxation_builder(gauss_seidel: bool = False) -> ModuleBuilder:
    """The paper's Figure-1 module, via the builder API.

    With ``gauss_seidel=False`` this is Equation 1 (Jacobi: all element
    values from the previous iteration). With ``gauss_seidel=True`` it is
    Equation 2 (the revised eq. 3 of section 4: west/north from the current
    iteration).
    """
    b = ModuleBuilder("Relaxation")
    b.param("InitialA", "array[I,J] of real")
    b.param("M", "int")
    b.param("maxK", "int")
    b.result("newA", "array[I,J] of real")
    b.subrange("I", "0", "M+1")
    b.subrange("J", "0", "M+1")
    b.subrange("K", "2", "maxK")
    b.var("A", "array [1 .. maxK] of array[I,J] of real")
    b.equation("A[1] = InitialA")
    b.equation("newA = A[maxK]")
    if gauss_seidel:
        b.equation(
            "A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)"
            " then A[K-1,I,J]"
            " else (A[K,I,J-1] + A[K,I-1,J] + A[K-1,I,J+1] + A[K-1,I+1,J]) / 4"
        )
    else:
        b.equation(
            "A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)"
            " then A[K-1,I,J]"
            " else (A[K-1,I,J-1] + A[K-1,I-1,J] + A[K-1,I,J+1] + A[K-1,I+1,J]) / 4"
        )
    return b
