"""Schedule validation: no element is read before it is written.

This is the correctness criterion behind the scheduler's DO/DOALL
classification. The validator *executes* the flowchart in scalar reference
semantics (lazy ``if``, so guarded boundary reads are naturally skipped)
with an instrumented evaluator that records a logical time for every array
element read and write:

* all iterations of a ``DOALL`` share one time step — the loop is unordered,
  so an iteration reading what a sibling iteration writes is a violation;
* ``DO`` iterations advance the clock.

Property-based tests run this over random stencils to show the scheduler
never emits a DOALL whose iterations communicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ps.semantics import AnalyzedEquation, AnalyzedModule
from repro.ps.symbols import SymbolKind
from repro.ps.types import ArrayType
from repro.runtime.evaluator import Evaluator
from repro.runtime.values import RuntimeArray, array_bounds, eval_bound
from repro.schedule.flowchart import Descriptor, Flowchart, LoopDescriptor, NodeDescriptor


@dataclass
class Violation:
    equation: str
    array: str
    read_index: tuple[int, ...]
    read_time: int
    write_time: int | None  # None: never written

    def __str__(self) -> str:  # pragma: no cover
        if self.write_time is None:
            return (
                f"{self.equation} reads {self.array}{list(self.read_index)} "
                f"which is never written"
            )
        return (
            f"{self.equation} reads {self.array}{list(self.read_index)} at "
            f"time {self.read_time} but it is written at {self.write_time}"
        )


class _TrackingEvaluator(Evaluator):
    """Evaluator that reports every RuntimeArray element read."""

    def __init__(self, data, on_read, enums=None):
        super().__init__(data, call_fn=None, enums=enums)
        self.on_read = on_read

    def _eval_Index(self, expr, env, vector):
        from repro.ps.ast import Name

        value = super()._eval_Index(expr, env, vector)
        base = expr.base
        if isinstance(base, Name):
            subs = [self.eval(s, env, vector) for s in expr.subscripts]
            self.on_read(base.ident, tuple(int(s) for s in subs))
        return value


def validate_flowchart_order(
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    args: dict[str, int],
    max_violations: int = 10,
    seed: int = 0,
) -> list[Violation]:
    """Replay the flowchart with synthetic inputs over the given scalar
    parameter values; return all read-before-write violations."""
    rng = np.random.default_rng(seed)
    scalars = {k: int(v) for k, v in args.items()}

    data: dict[str, Any] = dict(scalars)
    for pname in analyzed.param_names:
        sym = analyzed.symbol(pname)
        if isinstance(sym.type, ArrayType):
            bounds = array_bounds(sym.type, scalars)
            shape = tuple(hi - lo + 1 for lo, hi in bounds)
            data[pname] = RuntimeArray.from_numpy(
                pname, rng.random(shape) + 0.5, bounds
            )

    state = _VState(analyzed, data, max_violations)
    for desc in flowchart.descriptors:
        _walk(state, desc, {})
        state.clock += 1
    return state.violations


@dataclass
class _VState:
    analyzed: AnalyzedModule
    data: dict[str, Any]
    max_violations: int
    clock: int = 0
    seq: int = 0  # global order of equation executions
    iter_key: tuple = ()  # current DOALL iteration indices along the path
    #: element -> (clock, iteration key, seq)
    write_time: dict[tuple[str, tuple[int, ...]], tuple[int, tuple, int]] = field(
        default_factory=dict
    )
    violations: list[Violation] = field(default_factory=list)
    current_eq: str = ""

    def input_like(self, name: str) -> bool:
        sym = self.analyzed.table.symbol(name)
        return sym is None or sym.kind is SymbolKind.PARAM

    def on_read(self, name: str, idx: tuple[int, ...]) -> None:
        if self.input_like(name) or len(self.violations) >= self.max_violations:
            return
        record = self.write_time.get((name, idx))
        # A read is ordered after a write when the write happened at an
        # earlier clock step, or within the *same* DOALL iteration earlier
        # in program order (merged loop bodies run sequentially per
        # iteration). Writes at the same clock from sibling iterations are
        # races: DOALL iterations are unordered.
        ok = record is not None and (
            record[0] < self.clock
            or (record[0] == self.clock and record[1] == self.iter_key and record[2] < self.seq)
        )
        if not ok:
            self.violations.append(
                Violation(
                    self.current_eq,
                    name,
                    idx,
                    self.clock,
                    record[0] if record is not None else None,
                )
            )

    def scalar_env(self) -> dict[str, int]:
        return {
            k: int(v)
            for k, v in self.data.items()
            if isinstance(v, (int, np.integer))
        }


def _walk(state: _VState, desc: Descriptor, env: dict[str, int]) -> None:
    if len(state.violations) >= state.max_violations:
        return
    if isinstance(desc, NodeDescriptor):
        if desc.node.is_equation:
            _run_equation(state, desc.node.equation, env)
        return
    assert isinstance(desc, LoopDescriptor)
    scalars = state.scalar_env()
    lo = eval_bound(desc.subrange.lo, scalars)
    hi = eval_bound(desc.subrange.hi, scalars)
    if desc.parallel:
        outer_iter = state.iter_key
        for i in range(lo, hi + 1):
            env2 = dict(env)
            env2[desc.index] = i
            state.iter_key = outer_iter + (i,)
            for d in desc.body:
                _walk(state, d, env2)
        state.iter_key = outer_iter
        state.clock += 1
    else:
        for i in range(lo, hi + 1):
            env2 = dict(env)
            env2[desc.index] = i
            for d in desc.body:
                _walk(state, d, env2)
                state.clock += 1


def _run_equation(state: _VState, eq: AnalyzedEquation, env: dict[str, int]) -> None:
    if eq.atomic:
        return  # atomic module calls are ordered by the component order
    state.current_eq = eq.label
    enums = {
        member: ordinal
        for member, (_, ordinal) in state.analyzed.table.enum_members.items()
    }
    evaluator = _TrackingEvaluator(state.data, state.on_read, enums=enums)
    try:
        value = evaluator.eval(eq.rhs, env, vector=False)
    except Exception:
        return  # execution errors (e.g. module calls) are out of scope here
    target = eq.targets[0]
    sym = state.analyzed.symbol(target.name)
    if isinstance(sym.type, ArrayType):
        if target.name not in state.data:
            bounds = array_bounds(sym.type, state.scalar_env())
            state.data[target.name] = RuntimeArray.allocate(
                target.name, sym.type.element, bounds
            )
        subs = tuple(
            int(evaluator.eval(s, env, vector=False)) for s in target.subscripts
        )
        state.data[target.name].set(list(subs), value)
        state.write_time[(target.name, subs)] = (state.clock, state.iter_key, state.seq)
    else:
        state.data[target.name] = value
    state.seq += 1
