"""Element-level analyses: the per-element dataflow graph the paper appeals
to in section 4 ("The dataflow graph for A in which each array element is a
node"), wavefront profiles, and an execution-order validator for schedules."""

from repro.analysis.element_graph import ElementGraph, build_element_graph
from repro.analysis.validate import validate_flowchart_order
from repro.analysis.wavefront import WavefrontProfile, wavefront_profile

__all__ = [
    "ElementGraph",
    "WavefrontProfile",
    "build_element_graph",
    "validate_flowchart_order",
    "wavefront_profile",
]
