"""Hyperplane (wavefront) profiles.

Section 4: "All array elements A[K,I,J] such that 2K + I + J = t will be
defined at time t. For given t, these entries comprise a 'hyperplane'. As t
is increased from 0 to t_max ... we find a sequence of such hyperplanes
which cover every point in the array."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class WavefrontProfile:
    pi: tuple[int, ...]
    bounds: list[tuple[int, int]]
    t_min: int
    t_max: int
    sizes: list[int]  # lattice points per hyperplane, t_min..t_max

    @property
    def n_hyperplanes(self) -> int:
        return self.t_max - self.t_min + 1

    @property
    def total_points(self) -> int:
        return sum(self.sizes)

    @property
    def max_width(self) -> int:
        return max(self.sizes) if self.sizes else 0

    def covers_box_exactly(self) -> bool:
        """Every point of the box lies on exactly one hyperplane."""
        box = 1
        for lo, hi in self.bounds:
            box *= hi - lo + 1
        return self.total_points == box


def wavefront_profile(
    pi: tuple[int, ...], bounds: list[tuple[int, int]]
) -> WavefrontProfile:
    """Exact hyperplane sizes over a box domain (vectorised convolution of
    per-dimension value histograms, so large boxes stay cheap)."""
    # Each dimension contributes pi_i * x_i with x_i in [lo, hi]; the
    # distribution of the sum is the convolution of per-dim distributions.
    dists: list[tuple[int, np.ndarray]] = []  # (offset, histogram)
    for p, (lo, hi) in zip(pi, bounds):
        values = p * np.arange(lo, hi + 1)
        vmin, vmax = int(values.min()), int(values.max())
        hist = np.zeros(vmax - vmin + 1, dtype=np.int64)
        np.add.at(hist, values - vmin, 1)
        dists.append((vmin, hist))

    offset = 0
    acc = np.array([1], dtype=np.int64)
    for vmin, hist in dists:
        acc = np.convolve(acc, hist)
        offset += vmin
    t_min = offset
    t_max = offset + len(acc) - 1
    return WavefrontProfile(tuple(pi), list(bounds), t_min, t_max, acc.tolist())
