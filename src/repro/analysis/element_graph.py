"""Element-level dependence DAG of a uniform recurrence.

Section 4 argues from "the dataflow graph for A in which each array element
is a node (rather than the form used above in which there is a single node
for the entire array)": all elements with ``2K + I + J = t`` can be computed
at one time. This module materialises that graph for numeric bounds and
computes exact element *levels* (longest dependence path), which gives the
true maximum parallelism available — the yardstick the hyperplane schedule
is measured against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np


@dataclass
class ElementGraph:
    """Dense level assignment for a box domain with uniform dependences."""

    bounds: list[tuple[int, int]]  # inclusive per-dimension bounds
    vectors: list[tuple[int, ...]]  # dependence vectors (consumer - producer)
    levels: np.ndarray  # level of each element, 0-based

    @property
    def n_elements(self) -> int:
        return int(self.levels.size)

    @property
    def span(self) -> int:
        """Length of the critical path (number of sequential steps)."""
        return int(self.levels.max()) + 1 if self.levels.size else 0

    @property
    def work(self) -> int:
        return self.n_elements

    def level_sizes(self) -> list[int]:
        """Elements per level — the exact wavefront profile."""
        counts = np.bincount(self.levels.reshape(-1), minlength=self.span)
        return counts.tolist()

    def max_parallelism(self) -> int:
        return max(self.level_sizes()) if self.levels.size else 0

    def average_parallelism(self) -> float:
        return self.work / self.span if self.span else 0.0


def build_element_graph(
    bounds: list[tuple[int, int]], vectors: list[tuple[int, ...]]
) -> ElementGraph:
    """Compute element levels by dynamic programming.

    ``level(x) = 1 + max(level(x - d))`` over in-domain producers. The
    computation iterates in an order compatible with the dependences; a
    valid order exists iff a linear schedule exists, which we obtain from
    the solver (raising if the dependences are cyclic).
    """
    from repro.hyperplane.solver import solve_time_vector

    pi = solve_time_vector(vectors)

    los = [lo for lo, _ in bounds]
    extents = [hi - lo + 1 for lo, hi in bounds]
    levels = np.zeros(extents, dtype=np.int64)

    # Visit points ordered by pi . x (a valid topological order).
    points = sorted(
        itertools.product(*[range(lo, hi + 1) for lo, hi in bounds]),
        key=lambda x: sum(p * xi for p, xi in zip(pi, x)),
    )
    for x in points:
        best = -1
        for d in vectors:
            y = tuple(xi - di for xi, di in zip(x, d))
            if all(lo <= yi <= hi for yi, (lo, hi) in zip(y, bounds)):
                idx = tuple(yi - lo for yi, lo in zip(y, los))
                lvl = levels[idx]
                if lvl > best:
                    best = int(lvl)
        levels[tuple(xi - lo for xi, lo in zip(x, los))] = best + 1
    return ElementGraph(list(bounds), list(vectors), levels)
