"""Symbolic expression helpers for the hyperplane rewrite.

These build and simplify the small class of ASTs the transformation needs:
linear combinations of index variables (``Kp - 2*Ip - Jp``), offset
subscripts (``Kp - 1``) and substitution of index variables by expressions.
Constant folding keeps the generated PS source readable — the paper writes
``K' - 2I' - J'``, not ``1*Kp + -2*Ip + -1*Jp + 0``.
"""

from __future__ import annotations

from repro.ps.ast import BinOp, Expr, IfExpr, Index, IntLit, Name, UnOp, Call, FieldRef


def intlit(v: int) -> IntLit:
    return IntLit(v)


def _fold_int(expr: Expr) -> int | None:
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, UnOp) and expr.op == "-":
        v = _fold_int(expr.operand)
        return -v if v is not None else None
    return None


def add(a: Expr, b: Expr) -> Expr:
    av, bv = _fold_int(a), _fold_int(b)
    if av is not None and bv is not None:
        return IntLit(av + bv)
    if av == 0:
        return b
    if bv == 0:
        return a
    if bv is not None and bv < 0:
        return BinOp("-", a, IntLit(-bv))
    return BinOp("+", a, b)


def sub(a: Expr, b: Expr) -> Expr:
    av, bv = _fold_int(a), _fold_int(b)
    if av is not None and bv is not None:
        return IntLit(av - bv)
    if bv == 0:
        return a
    if bv is not None and bv < 0:
        return BinOp("+", a, IntLit(-bv))
    return BinOp("-", a, b)


def mul(c: int, e: Expr) -> Expr:
    ev = _fold_int(e)
    if ev is not None:
        return IntLit(c * ev)
    if c == 0:
        return IntLit(0)
    if c == 1:
        return e
    if c == -1:
        return UnOp("-", e)
    return BinOp("*", IntLit(c), e)


def linear_combination(coeffs: list[int], exprs: list[Expr], constant: int = 0) -> Expr:
    """``sum(coeffs[i] * exprs[i]) + constant``, folded and ordered with
    positive terms first."""
    result: Expr | None = None
    negatives: list[Expr] = []
    for c, e in zip(coeffs, exprs):
        if c == 0:
            continue
        if c > 0:
            term = mul(c, e)
            result = term if result is None else add(result, term)
        else:
            negatives.append(mul(-c, e))
    if result is None:
        result = IntLit(0)
    for term in negatives:
        result = sub(result, term)
    if constant:
        result = add(result, IntLit(constant)) if constant > 0 else sub(
            result, IntLit(-constant)
        )
    return result


def offset(var: str, delta: int) -> Expr:
    """``var + delta`` folded (``var`` for delta 0, ``var - 2`` for -2)."""
    base: Expr = Name(var)
    if delta == 0:
        return base
    if delta > 0:
        return BinOp("+", base, IntLit(delta))
    return BinOp("-", base, IntLit(-delta))


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace every ``Name(v)`` with ``mapping[v]`` (value positions only;
    array base names are Name nodes too, so callers must not put array names
    in the mapping)."""
    if isinstance(expr, Name):
        return mapping.get(expr.ident, expr)
    if isinstance(expr, IntLit) or not isinstance(
        expr, (BinOp, UnOp, IfExpr, Index, Call, FieldRef)
    ):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, substitute(expr.operand, mapping))
    if isinstance(expr, IfExpr):
        return IfExpr(
            substitute(expr.cond, mapping),
            substitute(expr.then, mapping),
            substitute(expr.orelse, mapping),
        )
    if isinstance(expr, Index):
        # Base is left alone when it is a bare array name.
        base = expr.base if isinstance(expr.base, Name) else substitute(expr.base, mapping)
        return Index(base, [substitute(s, mapping) for s in expr.subscripts])
    if isinstance(expr, Call):
        return Call(expr.func, [substitute(a, mapping) for a in expr.args])
    if isinstance(expr, FieldRef):
        return FieldRef(substitute(expr.base, mapping), expr.fieldname)
    raise TypeError(type(expr).__name__)  # pragma: no cover


def conjoin(conds: list[Expr]) -> Expr | None:
    """``c1 and c2 and ...`` or None for an empty list."""
    result: Expr | None = None
    for c in conds:
        result = c if result is None else BinOp("and", result, c)
    return result
