"""The restructuring transformation of paper section 4.

Pipeline: extract constant-offset dependence vectors from a recursive
component -> derive strict dependence inequalities over a linear time
function ``t = aK + bI + cJ`` -> find the least integer coefficients ->
complete the time row into a unimodular coordinate change -> rewrite the
module in the new coordinates -> re-schedule (the outer time loop is
iterative, everything inside is parallel).
"""

from repro.hyperplane.dependences import DependenceSet, extract_dependences
from repro.hyperplane.pipeline import HyperplaneResult, hyperplane_transform
from repro.hyperplane.solver import format_inequalities, solve_time_vector
from repro.hyperplane.unimodular import (
    complete_to_unimodular,
    determinant,
    integer_inverse,
)

__all__ = [
    "DependenceSet",
    "HyperplaneResult",
    "complete_to_unimodular",
    "determinant",
    "extract_dependences",
    "format_inequalities",
    "hyperplane_transform",
    "integer_inverse",
    "solve_time_vector",
]
