"""End-to-end hyperplane transformation (paper section 4).

:func:`hyperplane_transform` takes an analyzed module, finds the recursive
component of the named array (or the first multi-node MSCC), and carries out
the full derivation the paper performs by hand:

1. extract dependence vectors and render the strict inequalities;
2. solve for the least integer time vector (``(2,1,1)`` for the paper's
   revised relaxation);
3. complete to a unimodular coordinate change (``K' = 2K+I+J, I' = K,
   J' = I``);
4. rewrite the module in the new coordinates (executable PS source);
5. re-analyze and re-schedule — the transformed component now schedules as
   ``DO K' (DOALL I' (DOALL J'))``, the Figure-6 shape;
6. report window sizes and the storage comparison (window ``1 + max pi.d``
   for the transformed array: 3 planes for the example, versus 2 full grids
   for the untransformed iterative version).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TransformError
from repro.graph.build import build_dependency_graph
from repro.graph.depgraph import DependencyGraph
from repro.hyperplane.dependences import (
    DependenceSet,
    extract_dependences,
    find_recursive_components,
)
from repro.hyperplane.rewrite import rewrite_module
from repro.hyperplane.solver import format_inequalities, solve_time_vector
from repro.hyperplane.unimodular import Matrix, complete_to_unimodular, integer_inverse
from repro.ps.ast import Module
from repro.ps.semantics import AnalyzedModule, AnalyzedProgram, analyze_module
from repro.schedule.flowchart import Flowchart
from repro.schedule.scheduler import schedule_module


@dataclass
class HyperplaneResult:
    original: AnalyzedModule
    array: str
    dependences: DependenceSet
    inequalities: list[str]
    pi: tuple[int, ...]
    T: Matrix
    Tinv: Matrix
    transformed_module: Module
    transformed: AnalyzedModule
    original_flowchart: Flowchart
    transformed_flowchart: Flowchart
    new_array: str
    new_names: list[str] = field(default_factory=list)

    @property
    def time_equation(self) -> str:
        """Human-readable ``t(A[K,I,J]) = 2K + I + J``."""
        terms = []
        for c, name in zip(self.pi, self.dependences.dim_names):
            if c == 0:
                continue
            terms.append(name if c == 1 else f"{c}{name}")
        indices = ", ".join(self.dependences.dim_names)
        return f"t({self.array}[{indices}]) = {' + '.join(terms)}"

    @property
    def recurrence_window(self) -> int:
        """Window of the transformed array's time dimension when the
        recurrence is considered in isolation (rotate-in/rotate-out, the
        paper's preferred code shape): ``1 + max pi . d``."""
        return 1 + max(
            sum(p * d for p, d in zip(self.pi, v)) for v in self.dependences.vectors
        )

    def transformed_offsets(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """(original delta, transformed delta) per distinct reference: the
        paper's rewritten-recurrence table."""
        seen: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        for delta in self.dependences.deltas:
            new = tuple(
                sum(self.T[j][i] * delta[i] for i in range(len(delta)))
                for j in range(len(delta))
            )
            if (delta, new) not in seen:
                seen.append((delta, new))
        return seen

    def storage_comparison(self, bounds: dict[str, int]) -> dict[str, int]:
        """Numeric storage comparison for given parameter values: elements
        allocated by (a) the full array, (b) the untransformed window
        (2 x plane), (c) the transformed window (w x maxK x M')."""
        arr = self.original.table.symbol(self.array).type
        from repro.runtime.values import eval_bound

        extents = [
            eval_bound(d.hi, bounds) - eval_bound(d.lo, bounds) + 1 for d in arr.dims
        ]
        full = 1
        for e in extents:
            full *= e
        # Untransformed: window w0 in dimension 0 (2 for both variants).
        plane = full // extents[0]
        untransformed_window = 2 * plane
        # Transformed: window in the time dimension; the spatial extents are
        # the selected original dimensions.
        spatial = 1
        for row in self.T[1:]:
            src = row.index(1)
            spatial *= extents[src]
        transformed_window = self.recurrence_window * spatial
        return {
            "full": full,
            "untransformed_window": untransformed_window,
            "transformed_window": transformed_window,
        }


def hyperplane_transform(
    analyzed: AnalyzedModule,
    array: str | None = None,
    graph: DependencyGraph | None = None,
    program: AnalyzedProgram | None = None,
    new_module_name: str | None = None,
) -> HyperplaneResult:
    """Apply the section-4 transformation to a module's recursive array."""
    if graph is None:
        graph = build_dependency_graph(analyzed)

    components = find_recursive_components(graph)
    if not components:
        raise TransformError("module has no recursive component to transform")
    component = None
    if array is None:
        component = components[0]
        data = [n for n in sorted(component) if graph.node(n).is_data]
        if len(data) != 1:
            raise TransformError(
                f"first recursive component has {len(data)} arrays; name one"
            )
        array = data[0]
    else:
        for comp in components:
            if array in comp:
                component = comp
                break
        if component is None:
            raise TransformError(f"{array!r} is not part of a recursive component")

    deps = extract_dependences(graph, component)
    pi = solve_time_vector(deps.vectors)
    T = complete_to_unimodular(pi)
    Tinv = integer_inverse(T)
    inequalities = format_inequalities(deps.vectors)

    module2 = rewrite_module(analyzed, deps, T, new_module_name=new_module_name)
    analyzed2 = analyze_module(module2, program)

    flow1 = schedule_module(analyzed, graph)
    flow2 = schedule_module(analyzed2)

    new_array = next(
        nm for nm in analyzed2.table.symbols if nm not in analyzed.table.symbols
    )
    # Identify the new index names from the transformed defining equation.
    new_eq = next(
        eq for eq in analyzed2.equations if any(t.name == new_array for t in eq.targets)
    )
    new_names = [d.index for d in new_eq.dims]

    return HyperplaneResult(
        original=analyzed,
        array=array,
        dependences=deps,
        inequalities=inequalities,
        pi=pi,
        T=T,
        Tinv=Tinv,
        transformed_module=module2,
        transformed=analyzed2,
        original_flowchart=flow1,
        transformed_flowchart=flow2,
        new_array=new_array,
        new_names=new_names,
    )
