"""Extraction of constant-offset dependence vectors (paper section 4).

"Our fundamental constraint is that data must be produced before it can be
used. Thus A[K,I,J] cannot be created until after A[K-1,I,J], A[K,I,J-1],
A[K,I-1,J], A[K-1,I,J+1], and A[K,I+1,J] are available."

For each self-reference of the recursive array the dependence vector is
``consumer - producer``: a reference ``A[K-1, I+1, J]`` in the equation for
``A[K,I,J]`` has deltas ``(-1, +1, 0)`` and dependence vector ``(1, -1, 0)``.
The method requires every self-reference subscript to be *uniform* — the
matching index variable plus a constant ([10] treats exactly this class;
[14] extends it to certain symbolic offsets, which we reject with a clear
error)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TransformError
from repro.graph.depgraph import DependencyGraph, EdgeKind
from repro.graph.scc import condensation_order
from repro.ps.semantics import AnalyzedEquation


@dataclass
class DependenceSet:
    """The uniform dependence structure of one recursive array."""

    array: str
    dim_names: list[str]  # index variable names, in dimension order
    vectors: list[tuple[int, ...]]  # deduplicated, in first-appearance order
    #: every raw reference's delta vector (producer = consumer + delta),
    #: including duplicates — useful for window sizing and provenance
    deltas: list[tuple[int, ...]] = field(default_factory=list)
    equations: list[AnalyzedEquation] = field(default_factory=list)

    @property
    def rank(self) -> int:
        return len(self.dim_names)

    def describe(self) -> list[str]:
        out = []
        for v in self.vectors:
            parts = [
                f"{name}{'-' if d > 0 else '+'}{abs(d)}" if d else name
                for name, d in zip(self.dim_names, v)
            ]
            out.append(f"{self.array}[{', '.join(parts)}]")
        return out


def find_recursive_components(graph: DependencyGraph) -> list[frozenset[str]]:
    """MSCCs with more than one node (array(s) + equation(s)), in
    producer-first order."""
    return [c for c in condensation_order(graph.full_view()) if len(c) > 1]


def extract_dependences(
    graph: DependencyGraph, component: frozenset[str]
) -> DependenceSet:
    """Extract the uniform dependence vectors of a recursive component.

    Requirements (TransformError otherwise):
    * exactly one data node (single-array recurrence — the multi-array
      extension is [14]'s symbolic method, out of scope);
    * every in-component self-reference has slope-1 affine subscripts in the
      matching dimension's index variable.
    """
    data_nodes = [n for n in sorted(component) if graph.node(n).is_data]
    eq_nodes = [n for n in sorted(component) if graph.node(n).is_equation]
    if len(data_nodes) != 1:
        raise TransformError(
            f"hyperplane transformation requires a single recursive array; "
            f"component has {len(data_nodes)}: {data_nodes}"
        )
    if not eq_nodes:
        raise TransformError("component has no equation node")
    array = data_nodes[0]
    array_node = graph.node(array)
    rank = array_node.rank

    equations = [graph.node(e).equation for e in eq_nodes]
    dim_names = [d.index for d in equations[0].dims]  # type: ignore[union-attr]
    if len(dim_names) != rank:
        raise TransformError(
            f"equation dimensionality {len(dim_names)} does not match array "
            f"rank {rank}"
        )

    vectors: list[tuple[int, ...]] = []
    deltas: list[tuple[int, ...]] = []
    for eq_label in eq_nodes:
        for edge in graph.edges_between(array, eq_label):
            if edge.kind is not EdgeKind.DATA:
                continue
            delta: list[int] = []
            for info in edge.subscripts:
                if info.delta is None:
                    raise TransformError(
                        f"reference on {edge.src} -> {edge.dst} has "
                        f"non-uniform subscript {info.describe()!r} at "
                        f"position {info.array_pos} — the constant-offset "
                        f"method of [10] does not apply"
                    )
                if info.eq_dim != info.array_pos:
                    raise TransformError(
                        f"reference on {edge.src} -> {edge.dst} uses index "
                        f"{info.index!r} at position {info.array_pos} "
                        f"(inconsistent position)"
                    )
                delta.append(info.delta)
            dtuple = tuple(delta)
            deltas.append(dtuple)
            vec = tuple(-d for d in delta)
            if all(v == 0 for v in vec):
                raise TransformError(
                    f"self-dependence with zero distance in {edge.dst}: the "
                    f"equation is circular"
                )
            if vec not in vectors:
                vectors.append(vec)
    if not vectors:
        raise TransformError(f"no self-references of {array!r} found")
    return DependenceSet(array, dim_names, vectors, deltas, equations)
