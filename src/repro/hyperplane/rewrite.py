"""Source-level module rewriting for the hyperplane transformation.

Given a module, its recursive array ``X`` and the coordinate change
``y = T x`` (first row = the time vector), this produces a *new PS module*
in which:

* ``X`` is replaced by a transformed array ``Xp`` declared over the new
  coordinates (time extent ``[pi . lo, pi . hi]`` over the declared box);
* all defining equations of ``X`` are merged into one equation over the new
  index variables, guarded by (a) a padding test for lattice points outside
  the image of the original box and (b) each original equation's definition
  domain mapped through the inverse transformation;
* every self-reference ``X[x + delta]`` becomes ``Xp[y + T delta]`` — the
  paper's "replace each reference to A'[K',I',J'] by A[I',J',K'-2I'-J']"
  carried out in the opposite (preferable) direction: the program works
  entirely in the transformed array;
* references to ``X`` from *other* equations are rewritten through ``T``
  (``A[maxK,I,J]`` becomes ``Ap[2*maxK+I+J, maxK, I]``) — the rotate-out.

The rewrite requires the non-time rows of ``T`` to be standard basis vectors
(the paper's construction guarantees this for its example; the greedy
completion produces such rows whenever possible) and a non-negative time
vector, so subrange bounds stay symbolic without needing min/max.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TransformError
from repro.hyperplane.dependences import DependenceSet
from repro.hyperplane.exprutil import conjoin, linear_combination, offset, substitute
from repro.hyperplane.unimodular import Matrix, integer_inverse
from repro.ps.ast import (
    ArrayTypeExpr,
    BinOp,
    BoolLit,
    Equation,
    Expr,
    Index,
    IntLit,
    LhsItem,
    Module,
    Name,
    NamedTypeExpr,
    RangeTypeExpr,
    RealLit,
    TypeDecl,
    VarDecl,
    expr_equal,
    walk_expr,
)
from repro.ps.semantics import AnalyzedModule
from repro.ps.types import ArrayType, RealType


@dataclass
class RewritePlan:
    array: str
    new_array: str
    dim_names: list[str]  # original index variables (K, I, J)
    new_names: list[str]  # transformed index variables (Kp, Ip, Jp)
    T: Matrix
    Tinv: Matrix
    orig_exprs: list[Expr]  # original coords as expressions in new indices


def _fresh_name(base: str, taken: set[str]) -> str:
    candidate = base
    while candidate in taken:
        candidate += "p"
    return candidate


def _probe_delta(expr: Expr, index: str) -> int | None:
    """expr == index + delta with slope 1, or None."""
    from repro.graph.labels import _probe

    f0 = _probe(expr, index, 0)
    f1 = _probe(expr, index, 1)
    if f0 is None or f1 is None or f1 - f0 != 1:
        return None
    return f0


def _literal(expr: Expr) -> int | None:
    from repro.graph.labels import _literal_int

    return _literal_int(expr)


def _zero_for(element_type) -> Expr:
    if element_type == RealType:
        return RealLit(0.0)
    if getattr(element_type, "kind", None) == "bool":
        return BoolLit(False)
    return IntLit(0)


def rewrite_module(
    analyzed: AnalyzedModule,
    deps: DependenceSet,
    T: Matrix,
    new_module_name: str | None = None,
) -> Module:
    """Produce the transformed PS module."""
    module = analyzed.module
    array = deps.array
    sym = analyzed.table.symbol(array)
    if sym is None or not isinstance(sym.type, ArrayType):
        raise TransformError(f"{array!r} is not an array of the module")
    arr_type: ArrayType = sym.type
    n = arr_type.rank
    pi = tuple(T[0])
    if any(p < 0 for p in pi):
        raise TransformError(
            "source-level rewrite requires a non-negative time vector "
            f"(got {pi}); use the numeric wavefront executor instead"
        )
    # Non-time rows must be standard basis vectors for symbolic bounds.
    selected: list[int] = []
    for row in T[1:]:
        ones = [i for i, v in enumerate(row) if v == 1]
        if len(ones) != 1 or any(v not in (0, 1) for v in row) or sum(row) != 1:
            raise TransformError(
                "source-level rewrite requires basis-vector completion rows; "
                f"got {row}"
            )
        selected.append(ones[0])
    Tinv = integer_inverse(T)

    taken = set(analyzed.table.symbols) | set(analyzed.table.subranges) | set(
        analyzed.table.enums
    )
    new_array = _fresh_name(array + "p", taken)
    taken.add(new_array)
    new_names = [
        _fresh_name(deps.dim_names[i] + "p", taken) for i in range(n)
    ]
    taken.update(new_names)

    # Original coordinates as expressions of the new indices: x = Tinv y.
    new_name_exprs: list[Expr] = [Name(nm) for nm in new_names]
    orig_exprs = [
        linear_combination(list(Tinv[i]), new_name_exprs) for i in range(n)
    ]

    plan = RewritePlan(array, new_array, deps.dim_names, new_names, T, Tinv, orig_exprs)

    # ---- new subrange declarations ------------------------------------------
    decl_los = [d.lo for d in arr_type.dims]
    decl_his = [d.hi for d in arr_type.dims]
    time_lo = linear_combination(list(pi), decl_los)
    time_hi = linear_combination(list(pi), decl_his)
    new_typedecls = list(module.typedecls)
    new_typedecls.append(TypeDecl([new_names[0]], RangeTypeExpr(time_lo, time_hi)))
    for j, src_dim in enumerate(selected):
        sub = arr_type.dims[src_dim]
        new_typedecls.append(
            TypeDecl([new_names[j + 1]], RangeTypeExpr(sub.lo, sub.hi))
        )

    # ---- new variable declarations ------------------------------------------
    elem_te = _element_typeexpr(arr_type)
    new_dims_te = [NamedTypeExpr(nm) for nm in new_names]
    new_vardecls: list[VarDecl] = []
    for decl in module.vardecls:
        names = [nm for nm in decl.names if nm != array]
        if names:
            new_vardecls.append(VarDecl(names, decl.typeexpr))
    new_vardecls.append(VarDecl([new_array], ArrayTypeExpr(new_dims_te, elem_te)))

    # ---- split equations -------------------------------------------------------
    defining = [eq for eq in module.equations if any(l.name == array for l in eq.lhs)]

    merged = _merge_defining_equations(analyzed, defining, arr_type, plan)

    # Foreign equations are rewritten from their *normalised* forms so that
    # partial references like A[maxK] appear with full subscripts.
    analyzed_by_label = {aeq.label: aeq for aeq in analyzed.equations}
    new_equations: list[Equation] = []
    label = 1
    inserted = False
    for eq in module.equations:
        if any(l.name == array for l in eq.lhs):
            if not inserted:
                merged.label = f"eq.{label}"
                label += 1
                new_equations.append(merged)
                inserted = True
            continue
        new_eq = _rewrite_foreign_equation(analyzed_by_label[eq.label], arr_type, plan)
        new_eq.label = f"eq.{label}"
        label += 1
        new_equations.append(new_eq)

    return Module(
        name=new_module_name or module.name + "Hyper",
        params=list(module.params),
        results=list(module.results),
        typedecls=new_typedecls,
        vardecls=new_vardecls,
        equations=new_equations,
    )


def _element_typeexpr(arr_type: ArrayType):
    if arr_type.element == RealType:
        return NamedTypeExpr("real")
    kind = getattr(arr_type.element, "kind", None)
    if kind in ("int", "bool"):
        return NamedTypeExpr(kind)
    raise TransformError(
        f"unsupported element type {arr_type.element} for the rewrite"
    )


def _merge_defining_equations(
    analyzed: AnalyzedModule,
    defining: list[Equation],
    arr_type: ArrayType,
    plan: RewritePlan,
) -> Equation:
    """One equation over the new coordinates, with padding + domain guards."""
    n = arr_type.rank
    zero = _zero_for(arr_type.element)

    # Padding guard: original coordinates produced by non-trivial inverse
    # rows must lie inside the declared box. An original coordinate i is
    # trivially in range when some non-time row j of T is the basis vector
    # e_i — then the new dimension j *is* x_i and was declared with exactly
    # x_i's bounds.
    pad_conds: list[Expr] = []
    for i in range(n):
        covered = any(
            sum(abs(v) for v in plan.T[j]) == 1 and plan.T[j][i] == 1
            for j in range(1, n)
        )
        if covered:
            continue
        expr = plan.orig_exprs[i]
        sub = arr_type.dims[i]
        pad_conds.append(BinOp("<", expr, sub.lo))
        pad_conds.append(BinOp(">", expr, sub.hi))
    padding: Expr | None = None
    for c in pad_conds:
        padding = c if padding is None else BinOp("or", padding, c)

    # Branches, one per defining equation, in source order.
    analyzed_by_label = {eq.label: eq for eq in analyzed.equations}
    branches: list[tuple[Expr | None, Expr]] = []
    for eq in defining:
        aeq = analyzed_by_label[eq.label]
        guard, body = _transform_defining(aeq, arr_type, plan)
        branches.append((guard, body))

    # Assemble if-cascade, innermost first. The final else is the last
    # branch's body (domains partition the box), so no guard is wasted.
    result: Expr = branches[-1][1]
    for guard, body in reversed(branches[:-1]):
        assert guard is not None, "only the last branch may be unguarded"
        result = _if(guard, body, result)
    if padding is not None:
        result = _if(padding, zero, result)

    lhs = LhsItem(plan.new_array, [Name(nm) for nm in plan.new_names])
    return Equation([lhs], result)


def _if(cond: Expr, then: Expr, orelse: Expr) -> Expr:
    from repro.ps.ast import IfExpr

    return IfExpr(cond, then, orelse)


def _transform_defining(
    aeq, arr_type: ArrayType, plan: RewritePlan
) -> tuple[Expr | None, Expr]:
    """Guard + transformed body for one defining equation of the array."""
    n = arr_type.rank
    target = next(t for t in aeq.targets if t.name == plan.array)

    # Substitution of the equation's index variables by inverse expressions.
    mapping: dict[str, Expr] = {}
    conds: list[Expr] = []
    for i, sub_expr in enumerate(target.subscripts):
        if isinstance(sub_expr, Name) and any(
            d.index == sub_expr.ident for d in aeq.dims
        ):
            v = sub_expr.ident
            mapping[v] = plan.orig_exprs[i]
            dim = next(d for d in aeq.dims if d.index == v)
            # In-range guard where the equation's subrange is narrower than
            # the declared dimension (e.g. K = 2..maxK inside 1..maxK).
            if not expr_equal(dim.subrange.lo, arr_type.dims[i].lo):
                conds.append(BinOp(">=", plan.orig_exprs[i], dim.subrange.lo))
            if not expr_equal(dim.subrange.hi, arr_type.dims[i].hi):
                conds.append(BinOp("<=", plan.orig_exprs[i], dim.subrange.hi))
        else:
            # Constant slice, e.g. A[1] = ... -> guard orig_expr == 1.
            conds.append(BinOp("=", plan.orig_exprs[i], sub_expr))

    body = _rewrite_refs(aeq.rhs, arr_type, plan, mapping)
    return conjoin(conds), body


def _rewrite_refs(
    expr: Expr, arr_type: ArrayType, plan: RewritePlan, mapping: dict[str, Expr]
) -> Expr:
    """Rewrite self-references X[x + delta] -> Xp[y + T delta]; substitute
    index variables everywhere else."""
    if isinstance(expr, Index) and isinstance(expr.base, Name) and expr.base.ident == plan.array:
        deltas: list[int] = []
        for i, sub in enumerate(expr.subscripts):
            # The subscript is v_i + delta where v_i is the equation's index
            # variable for position i (guaranteed by extract_dependences).
            d = _uniform_delta(sub)
            if d is None:
                raise TransformError(
                    f"self-reference subscript at position {i} is not uniform"
                )
            deltas.append(d)
        newdelta = [
            sum(plan.T[j][i] * deltas[i] for i in range(len(deltas)))
            for j in range(len(deltas))
        ]
        subs = [offset(plan.new_names[j], newdelta[j]) for j in range(len(deltas))]
        return Index(Name(plan.new_array), subs)
    if isinstance(expr, Index):
        return Index(
            expr.base
            if isinstance(expr.base, Name)
            else _rewrite_refs(expr.base, arr_type, plan, mapping),
            [_rewrite_refs(s, arr_type, plan, mapping) for s in expr.subscripts],
        )
    if isinstance(expr, Name):
        return mapping.get(expr.ident, expr)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _rewrite_refs(expr.left, arr_type, plan, mapping),
            _rewrite_refs(expr.right, arr_type, plan, mapping),
        )
    from repro.ps.ast import Call, FieldRef, IfExpr, UnOp

    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rewrite_refs(expr.operand, arr_type, plan, mapping))
    if isinstance(expr, IfExpr):
        return IfExpr(
            _rewrite_refs(expr.cond, arr_type, plan, mapping),
            _rewrite_refs(expr.then, arr_type, plan, mapping),
            _rewrite_refs(expr.orelse, arr_type, plan, mapping),
        )
    if isinstance(expr, Call):
        return Call(expr.func, [_rewrite_refs(a, arr_type, plan, mapping) for a in expr.args])
    if isinstance(expr, FieldRef):
        return FieldRef(_rewrite_refs(expr.base, arr_type, plan, mapping), expr.fieldname)
    return expr


def _uniform_delta(sub: Expr) -> int | None:
    """Delta of a uniform subscript ``v + delta`` (slope 1 in its single
    index variable), or None when the subscript is not of that form."""
    candidates = {n.ident for n in walk_expr(sub) if isinstance(n, Name)}
    if len(candidates) != 1:
        return None
    return _probe_delta(sub, next(iter(candidates)))


def _rewrite_foreign_equation(
    aeq, arr_type: ArrayType, plan: RewritePlan
) -> Equation:
    """Rewrite references to X in a non-defining (analyzed, normalised)
    equation: X[e] -> Xp[T e]."""

    def walk(expr: Expr) -> Expr:
        if (
            isinstance(expr, Index)
            and isinstance(expr.base, Name)
            and expr.base.ident == plan.array
        ):
            subs = [walk(s) for s in expr.subscripts]
            if len(subs) != arr_type.rank:
                raise TransformError(
                    f"partial reference to {plan.array!r} outside its "
                    f"defining component cannot be rewritten"
                )
            new_subs = [
                linear_combination(list(plan.T[j]), subs) for j in range(arr_type.rank)
            ]
            return Index(Name(plan.new_array), new_subs)
        if isinstance(expr, Index):
            return Index(walk(expr.base) if not isinstance(expr.base, Name) else expr.base,
                         [walk(s) for s in expr.subscripts])
        if isinstance(expr, BinOp):
            return BinOp(expr.op, walk(expr.left), walk(expr.right))
        from repro.ps.ast import Call, FieldRef, IfExpr, UnOp

        if isinstance(expr, UnOp):
            return UnOp(expr.op, walk(expr.operand))
        if isinstance(expr, IfExpr):
            return IfExpr(walk(expr.cond), walk(expr.then), walk(expr.orelse))
        if isinstance(expr, Call):
            return Call(expr.func, [walk(a) for a in expr.args])
        if isinstance(expr, FieldRef):
            return FieldRef(walk(expr.base), expr.fieldname)
        if isinstance(expr, Name) and expr.ident == plan.array:
            raise TransformError(
                f"whole-array reference to {plan.array!r} cannot be rewritten"
            )
        return expr

    lhs = [
        LhsItem(t.name, [walk(s) for s in t.subscripts]) for t in aeq.targets
    ]
    return Equation(lhs, walk(aeq.rhs))
