"""Least-integer solution of the strict dependence inequalities (section 4).

"We define the time of creation for each array element as a linear
combination of the indices ... Now we can find the least integers a, b and c
for which these dependence inequalities will hold."

For dependence vectors ``d`` the constraint is ``pi . d >= 1`` (strict
inequality over integers). We search integer vectors by increasing L1 norm,
then lexicographically, so the first solution found is the paper's "least"
one — for the relaxation example ``(a, b, c) = (2, 1, 1)``. Coefficients may
be zero or negative in general (Lamport's method allows it); the search
space is widened to negative values only for coordinates where some
dependence has a positive entry to push against.

Infeasibility (e.g. antiparallel dependences) is detected by linear
programming when scipy is available, else by search-space exhaustion.
"""

from __future__ import annotations

import itertools

from repro.errors import InfeasibleScheduleError


def _feasible_lp(vectors: list[tuple[int, ...]]) -> bool | None:
    """LP feasibility of {pi : D pi >= 1}. None when scipy is unavailable."""
    try:
        import numpy as np
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return None
    D = np.array(vectors, dtype=float)
    n = D.shape[1]
    # minimize sum |pi| via split pi = u - v, u,v >= 0
    c = np.ones(2 * n)
    A_ub = np.hstack([-D, D])  # -D(u - v) <= -1
    b_ub = -np.ones(D.shape[0])
    res = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=[(0, None)] * (2 * n), method="highs")
    return bool(res.success)


def solve_time_vector(
    vectors: list[tuple[int, ...]], max_norm: int = 24
) -> tuple[int, ...]:
    """Return the least integer vector ``pi`` with ``pi . d >= 1`` for every
    dependence vector ``d`` (minimal L1 norm, ties broken lexicographically
    largest-first so positive leading coefficients are preferred).

    Raises :class:`InfeasibleScheduleError` when no such vector exists.
    """
    if not vectors:
        raise InfeasibleScheduleError("no dependence vectors given")
    n = len(vectors[0])
    if any(len(v) != n for v in vectors):
        raise ValueError("dependence vectors have mixed dimensionality")

    # A coordinate only benefits from a negative coefficient if some
    # dependence is negative there; restrict the sign ranges accordingly.
    lo = [0] * n
    hi = [0] * n
    for i in range(n):
        if any(v[i] > 0 for v in vectors):
            hi[i] = 1
        if any(v[i] < 0 for v in vectors):
            lo[i] = -1

    def satisfies(pi: tuple[int, ...]) -> bool:
        return all(sum(p * d for p, d in zip(pi, v)) >= 1 for v in vectors)

    for norm in range(1, max_norm + 1):
        candidates = []
        for signs_magnitudes in _vectors_of_norm(n, norm, lo, hi):
            if satisfies(signs_magnitudes):
                candidates.append(signs_magnitudes)
        if candidates:
            # lexicographically largest = prefers weight on leading dims,
            # matching the paper's (2,1,1) presentation.
            return max(candidates)

    feasible = _feasible_lp(vectors)
    if feasible is False or feasible is None:
        raise InfeasibleScheduleError(
            f"no linear schedule exists for dependence vectors {vectors}"
        )
    raise InfeasibleScheduleError(  # pragma: no cover - gigantic coefficients
        f"no time vector with L1 norm <= {max_norm} found (LP says feasible; "
        f"increase max_norm)"
    )


def _vectors_of_norm(n: int, norm: int, lo_sign: list[int], hi_sign: list[int]):
    """All integer vectors of L1 norm ``norm`` respecting per-coordinate sign
    availability."""
    for mags in _compositions(norm, n):
        sign_choices = []
        for i, m in enumerate(mags):
            if m == 0:
                sign_choices.append((0,))
            else:
                opts = []
                if hi_sign[i] > 0 or lo_sign[i] == 0:
                    opts.append(m)
                if lo_sign[i] < 0:
                    opts.append(-m)
                if not opts:
                    opts = [m]
                sign_choices.append(tuple(opts))
        for combo in itertools.product(*sign_choices):
            yield tuple(combo)


def _compositions(total: int, parts: int):
    """Weak compositions of ``total`` into ``parts`` non-negative ints."""
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def format_inequalities(
    vectors: list[tuple[int, ...]], coeff_names: list[str] | None = None
) -> list[str]:
    """Render each dependence inequality the way the paper does:
    ``(1,0,-1)`` with coefficients (a,b,c) becomes ``a > c``; ``(1,0,0)``
    becomes ``a > 0``."""
    n = len(vectors[0])
    names = coeff_names or [chr(ord("a") + i) for i in range(n)]
    out = []
    for v in vectors:
        lhs = [
            (names[i] if c == 1 else f"{c}{names[i]}")
            for i, c in enumerate(v)
            if c > 0
        ]
        rhs = [
            (names[i] if c == -1 else f"{-c}{names[i]}")
            for i, c in enumerate(v)
            if c < 0
        ]
        left = " + ".join(lhs) if lhs else "0"
        right = " + ".join(rhs) if rhs else "0"
        out.append(f"{left} > {right}")
    return out
