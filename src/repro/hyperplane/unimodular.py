"""Exact integer matrix utilities and unimodular completion.

The coordinate change of section 4 needs an integer matrix ``T`` whose first
row is the time vector ``pi`` and whose determinant is ±1, so that the map
``y = T x`` is a bijection of the integer lattice ("A method for obtaining
the I' and J' dimensions after K' has been determined is given in [10]").

:func:`complete_to_unimodular` first tries the paper's own choice — filling
the remaining rows with standard basis vectors, smallest index first, which
for ``pi = (2,1,1)`` yields ``I' = K`` and ``J' = I`` exactly as printed —
and falls back to a general extended-gcd construction for primitive vectors
the greedy selection cannot complete.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from math import gcd

from repro.errors import TransformError

Matrix = list[list[int]]


def determinant(m: Matrix) -> int:
    """Exact integer determinant (fraction-free Gaussian elimination)."""
    n = len(m)
    a = [[Fraction(x) for x in row] for row in m]
    det = Fraction(1)
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if a[r][col] != 0), None)
        if pivot_row is None:
            return 0
        if pivot_row != col:
            a[col], a[pivot_row] = a[pivot_row], a[col]
            det = -det
        det *= a[col][col]
        inv = Fraction(1) / a[col][col]
        for r in range(col + 1, n):
            factor = a[r][col] * inv
            if factor:
                for c in range(col, n):
                    a[r][c] -= factor * a[col][c]
    assert det.denominator == 1
    return int(det)


def integer_inverse(m: Matrix) -> Matrix:
    """Exact inverse of a unimodular integer matrix (entries are integers
    because |det| = 1)."""
    n = len(m)
    det = determinant(m)
    if det not in (1, -1):
        raise TransformError(f"matrix is not unimodular (det = {det})")
    a = [[*(Fraction(x) for x in row), *(Fraction(int(i == r)) for i in range(n))]
         for r, row in enumerate(m)]
    # Gauss-Jordan.
    for col in range(n):
        pivot_row = next(r for r in range(col, n) if a[r][col] != 0)
        a[col], a[pivot_row] = a[pivot_row], a[col]
        inv = Fraction(1) / a[col][col]
        a[col] = [x * inv for x in a[col]]
        for r in range(n):
            if r != col and a[r][col]:
                factor = a[r][col]
                a[r] = [x - factor * y for x, y in zip(a[r], a[col])]
    out = [[x for x in row[n:]] for row in a]
    result = []
    for row in out:
        int_row = []
        for x in row:
            assert x.denominator == 1
            int_row.append(int(x))
        result.append(int_row)
    return result


def matvec(m: Matrix, v: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(sum(c * x for c, x in zip(row, v)) for row in m)


def _greedy_completion(pi: tuple[int, ...]) -> Matrix | None:
    """Try completing with n-1 standard basis rows, preferring small indices
    — reproduces the paper's I' = K, J' = I for pi = (2,1,1)."""
    n = len(pi)
    for combo in itertools.combinations(range(n), n - 1):
        rows = [
            list(pi),
            *([int(j == i) for j in range(n)] for i in combo),
        ]
        if determinant(rows) in (1, -1):
            return rows
    return None


def _gcd_completion(pi: tuple[int, ...]) -> Matrix:
    """General completion of a primitive vector to a unimodular matrix via
    column operations: find unimodular V with pi V = e1, then T = V^{-1}."""
    n = len(pi)
    # V starts as identity; we apply the extended Euclid steps as column ops
    # on a working copy of pi.
    v = [[int(i == j) for j in range(n)] for i in range(n)]
    work = list(pi)

    def colop(dst: int, src: int, factor: int) -> None:
        work[dst] += factor * work[src]
        for r in range(n):
            v[r][dst] += factor * v[r][src]

    def colswap(a: int, b: int) -> None:
        work[a], work[b] = work[b], work[a]
        for r in range(n):
            v[r][a], v[r][b] = v[r][b], v[r][a]

    # Reduce work to (g, 0, ..., 0).
    for j in range(1, n):
        while work[j] != 0:
            if work[0] == 0:
                colswap(0, j)
                continue
            q = work[j] // work[0]
            colop(j, 0, -q)
            if work[j] != 0:
                colswap(0, j)
    if work[0] < 0:
        for r in range(n):
            v[r][0] = -v[r][0]
        work[0] = -work[0]
    if work[0] != 1:
        raise TransformError(
            f"time vector {pi} is not primitive (gcd = {work[0]})"
        )
    return integer_inverse(v)


def complete_to_unimodular(pi: tuple[int, ...]) -> Matrix:
    """Return an integer matrix T with first row ``pi`` and det ±1."""
    if all(x == 0 for x in pi):
        raise TransformError("time vector is zero")
    g = 0
    for x in pi:
        g = gcd(g, abs(x))
    if g != 1:
        raise TransformError(f"time vector {pi} is not primitive (gcd = {g})")
    greedy = _greedy_completion(pi)
    if greedy is not None:
        return greedy
    return _gcd_completion(pi)  # pragma: no cover - greedy succeeds for n<=4
