"""Exception hierarchy for the PS compiler reproduction.

Every stage of the pipeline raises a distinct subclass of :class:`ReproError`
so callers can discriminate front-end problems (bad source) from scheduling
problems (the paper's algorithm signalling "the equations cannot be scheduled
by this algorithm", step 2a of Schedule-Component) and from transformation
infeasibility (no strictly positive time vector exists).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SourceError(ReproError):
    """A front-end error that carries a source location."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}" + (
                f", column {column})" if column is not None else ")"
            )
        super().__init__(message)


class LexError(SourceError):
    """Invalid character or malformed token in PS source."""


class ParseError(SourceError):
    """PS source does not conform to the grammar."""


class SemanticError(SourceError):
    """Well-formed PS source with inconsistent meaning (types, arity,
    undeclared names, duplicate definitions, ...)."""


class CoverageError(SemanticError):
    """Single-assignment violation: a variable's definition domains overlap,
    or (when decidable) fail to cover the declared extent."""


class ScheduleError(ReproError):
    """Raised when Schedule-Component signals that no dimension can be
    scheduled for a multi-node component (paper step 2a)."""


class InconsistentPositionError(ScheduleError):
    """A subrange appears in inconsistent positions across the nodes of a
    component (paper step 3 and its footnote example
    ``A[I,J] = A[I,J-1] + A[J,I]``)."""


class TransformError(ReproError):
    """The hyperplane transformation does not apply (non-constant offsets,
    infeasible dependence inequalities, ...)."""


class InfeasibleScheduleError(TransformError):
    """No integer time vector satisfies the strict dependence inequalities
    (e.g. a dependence cycle with zero total distance)."""


class ExecutionError(ReproError):
    """Runtime failure while interpreting a flowchart (unbound variable,
    read of an element outside a window, ...)."""


class CodegenError(ReproError):
    """The code generator cannot emit a construct."""


class SessionError(ReproError):
    """Misuse of the serve layer: a run on a closed
    :class:`~repro.serve.session.Session`, an unknown module name, a
    module-name collision between two loaded sources, ..."""


class ClientError(ReproError):
    """A serve-daemon request failed: the structured error the daemon
    returned (its ``type`` is in :attr:`kind`), or a transport failure
    talking to it."""

    def __init__(self, message: str, kind: str = "ClientError"):
        self.kind = kind
        super().__init__(message)
