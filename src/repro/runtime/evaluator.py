"""Expression evaluator over normalised PS expressions.

Two modes share one code path:

* **scalar** — index variables are Python ints; ``if`` evaluates lazily
  (reference semantics: the guarded branch is never touched, so boundary
  equations never read out of range);
* **vector** — some index variables are NumPy arrays; ``if`` becomes
  ``np.where`` with *both* branches evaluated, so array reads clip indices
  into range (masked lanes are discarded by the `where`). This is how DOALL
  dimensions execute as single NumPy operations — the guides' "vectorize
  your loops" applied to the paper's concurrent loops.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.ps.ast import (
    BinOp,
    BoolLit,
    Call,
    Expr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    Name,
    RealLit,
    UnOp,
)
from repro.runtime.values import RuntimeArray

_BUILTIN_FUNCS: dict[str, Callable] = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "exp": np.exp,
    "ln": np.log,
    "log": np.log,
    "min": np.minimum,
    "max": np.maximum,
    "floor": lambda x: np.floor(x).astype(np.int64),
    "ceil": lambda x: np.ceil(x).astype(np.int64),
    "trunc": lambda x: np.trunc(x).astype(np.int64),
    "round": lambda x: np.round(x).astype(np.int64),
}


def _is_vector(v: Any) -> bool:
    return isinstance(v, np.ndarray) and v.ndim > 0


class Evaluator:
    """Evaluates normalised expressions against a data environment.

    ``data`` maps symbol names to scalars or :class:`RuntimeArray`;
    ``call_fn(name, args) -> value | tuple`` executes module calls;
    ``enums`` maps enum member names to ordinals.
    """

    def __init__(
        self,
        data: dict[str, Any],
        call_fn: Callable[[str, list[Any]], Any] | None = None,
        enums: dict[str, int] | None = None,
    ):
        self.data = data
        self.call_fn = call_fn
        self.enums = enums or {}

    def eval(self, expr: Expr, env: dict[str, Any], vector: bool = False) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
        return method(expr, env, vector)

    # -- leaves ------------------------------------------------------------

    def _eval_IntLit(self, expr: IntLit, env, vector):
        return expr.value

    def _eval_RealLit(self, expr: RealLit, env, vector):
        return expr.value

    def _eval_BoolLit(self, expr: BoolLit, env, vector):
        return expr.value

    def _eval_Name(self, expr: Name, env, vector):
        if expr.ident in env:
            return env[expr.ident]
        if expr.ident in self.data:
            return self.data[expr.ident]
        if expr.ident in self.enums:
            return self.enums[expr.ident]
        raise ExecutionError(f"unbound name {expr.ident!r}")

    # -- structure ------------------------------------------------------------

    def _eval_Index(self, expr: Index, env, vector):
        base = self.eval(expr.base, env, vector)
        subs = [self.eval(s, env, vector) for s in expr.subscripts]
        if isinstance(base, RuntimeArray):
            return base.get(subs, clip=vector)
        arr = np.asarray(base)
        if vector:
            subs = [
                np.clip(s, 0, dim - 1) for s, dim in zip(subs, arr.shape)
            ]
        return arr[tuple(subs)]

    def _eval_FieldRef(self, expr: FieldRef, env, vector):
        # Record references resolve through dotted data names.
        path = []
        node: Expr = expr
        while isinstance(node, FieldRef):
            path.append(node.fieldname)
            node = node.base
        if not isinstance(node, Name):
            raise ExecutionError("field access on a computed value")
        path.reverse()
        key = node.ident + "".join(f".{f}" for f in path)
        if key in self.data:
            return self.data[key]
        # Fallback: nested dicts.
        v = self.data.get(node.ident)
        for f in path:
            if not isinstance(v, dict) or f not in v:
                raise ExecutionError(f"unbound record field {key!r}")
            v = v[f]
        return v

    def _eval_Call(self, expr: Call, env, vector):
        args = [self.eval(a, env, vector) for a in expr.args]
        if expr.func in _BUILTIN_FUNCS:
            with np.errstate(invalid="ignore", divide="ignore"):
                return _BUILTIN_FUNCS[expr.func](*args)
        if self.call_fn is None:
            raise ExecutionError(f"no module-call handler for {expr.func!r}")
        if vector and any(_is_vector(a) for a in args):
            raise ExecutionError(
                f"module call {expr.func!r} cannot be vectorised"
            )
        converted = [
            a.to_numpy() if isinstance(a, RuntimeArray) else a for a in args
        ]
        return self.call_fn(expr.func, converted)

    # -- operators ------------------------------------------------------------

    def _eval_BinOp(self, expr: BinOp, env, vector):
        op = expr.op
        if op == "and":
            left = self.eval(expr.left, env, vector)
            if not vector and not _is_vector(left):
                return bool(left) and bool(self.eval(expr.right, env, vector))
            right = self.eval(expr.right, env, vector)
            return np.logical_and(left, right)
        if op == "or":
            left = self.eval(expr.left, env, vector)
            if not vector and not _is_vector(left):
                return bool(left) or bool(self.eval(expr.right, env, vector))
            right = self.eval(expr.right, env, vector)
            return np.logical_or(left, right)

        left = self.eval(expr.left, env, vector)
        right = self.eval(expr.right, env, vector)
        with np.errstate(invalid="ignore", divide="ignore"):
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return np.divide(left, right) if _is_vector(left) or _is_vector(right) else (
                    left / right if right != 0 else float("inf") * (1 if left >= 0 else -1)
                )
            if op == "div":
                if not _is_vector(left) and not _is_vector(right):
                    return left // right
                return np.floor_divide(left, right)
            if op == "mod":
                if not _is_vector(left) and not _is_vector(right):
                    return left % right
                return np.mod(left, right)
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        raise ExecutionError(f"unknown operator {op!r}")

    def _eval_UnOp(self, expr: UnOp, env, vector):
        v = self.eval(expr.operand, env, vector)
        if expr.op == "-":
            return -v
        if expr.op == "+":
            return v
        if expr.op == "not":
            return np.logical_not(v) if _is_vector(v) else not v
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _eval_IfExpr(self, expr: IfExpr, env, vector):
        cond = self.eval(expr.cond, env, vector)
        if not vector and not _is_vector(cond):
            # Lazy reference semantics.
            return (
                self.eval(expr.then, env, vector)
                if cond
                else self.eval(expr.orelse, env, vector)
            )
        then = self.eval(expr.then, env, True)
        orelse = self.eval(expr.orelse, env, True)
        return np.where(cond, then, orelse)
