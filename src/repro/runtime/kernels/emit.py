"""Equation -> specialized Python kernel source, compiled once per module.

For each analyzed equation two kernel variants are emitted on demand:

* **scalar** — index variables are Python ints; ``if`` lowers to a lazy
  conditional expression (reference semantics: the guarded branch is never
  touched) and array elements are read through range-checked, origin-shifted
  storage indexing (out-of-range subscripts raise ``ExecutionError`` exactly
  like the evaluator);
* **vector** — index variables may be contiguous NumPy aranges; ``if``
  lowers to ``np.where`` and array reads clip into range exactly like the
  vector evaluator, but affine subscripts (``I + c``) go through
  :func:`~repro.runtime.kernels.runtime.affine_gather`, which selects the
  same values via basic slices instead of fancy indexing.

Both variants share the expression walk with the whole-module Python
generator (:mod:`repro.codegen.exprlower`), so runtime kernels and generated
modules provably lower expressions through one code path. An equation the
emitter cannot specialize (module calls, record fields, partial-rank array
values, atomic multi-target equations) is *non-kernelizable*: the backends
keep evaluating it on the reference tree-walking evaluator.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.codegen.exprlower import ExprLowerer
from repro.codegen.naming import py_name
from repro.errors import ExecutionError, ReproError
from repro.ps.ast import (
    BinOp,
    Call,
    Expr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    Name,
    UnOp,
    names_in,
    walk_expr,
)
from repro.ps.semantics import AnalyzedEquation, AnalyzedModule, is_builtin
from repro.ps.symbols import SymbolKind
from repro.ps.types import ArrayType
from repro.runtime.kernels import runtime as _rt
from repro.schedule.flowchart import (
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
    collapse_chain,
)


class KernelError(ReproError):
    """The equation cannot be lowered to a specialized kernel."""


def static_windows(
    name: str, analyzed: AnalyzedModule, flowchart: Flowchart, use_windows: bool
) -> dict[int, int]:
    """The window dimensions ``RuntimeArray.allocate`` will give ``name`` —
    the emitter mirrors the allocation rule in the backends exactly."""
    sym = analyzed.symbol(name)
    if not use_windows or sym.kind is not SymbolKind.VAR:
        return {}
    return dict(flowchart.window_of(name))


def _atomic_target_names(analyzed: AnalyzedModule) -> set[str]:
    return {
        t.name for eq in analyzed.equations if eq.atomic for t in eq.targets
    }


def kernelizable(eq: AnalyzedEquation, analyzed: AnalyzedModule) -> bool:
    """Static check: can this equation be compiled at all?

    Rejected: atomic equations (multi-target wholesale rebinds),
    *index-dependent* module calls (each element would recurse into the
    interpreter with different arguments), record fields, partial-rank
    array indexing and bare array names (whole-array values), and unknown
    names. Index-*independent* module calls compile: the kernel invokes
    the execution's ``call_fn`` through the cache's call box (see
    :meth:`repro.runtime.kernels.cache.KernelCache.bind_call_fn`), exactly
    as the evaluator would. Everything rejected here falls back to the
    evaluator.
    """
    return kernelizable_reason(eq, analyzed) is None


def kernelizable_reason(
    eq: AnalyzedEquation, analyzed: AnalyzedModule
) -> str | None:
    """Why :func:`kernelizable` rejects this equation — ``None`` when it
    compiles. The single source of truth for the check itself, and the
    reason string ``plan.explain()`` prints for evaluator-bound nests."""
    if eq.atomic:
        return "atomic equation"
    if len(eq.targets) != 1:
        return "multi-target equation"
    exprs: list[Expr] = [eq.rhs]
    exprs.extend(eq.targets[0].subscripts)
    found: list[str] = []

    def fail(why: str) -> bool:
        found.append(why)
        return False

    def scan(expr: Expr) -> bool:
        if isinstance(expr, FieldRef):
            return fail("record-field access")
        if isinstance(expr, Call):
            if not is_builtin(expr.func):
                # An index-independent module call evaluates to one value
                # per kernel invocation — bindable through the call box. An
                # index-dependent one stays on the evaluator.
                index_names = set(eq.index_names)
                for a in expr.args:
                    if names_in(a) & index_names:
                        return fail(
                            f"calls module {expr.func} with "
                            f"index-dependent arguments"
                        )
            return all(scan(a) for a in expr.args)
        if isinstance(expr, Index):
            if not isinstance(expr.base, Name):
                return fail("computed array base")
            sym = analyzed.table.symbol(expr.base.ident)
            if sym is None or not isinstance(sym.type, ArrayType):
                return fail(f"subscripted non-array {expr.base.ident}")
            if len(expr.subscripts) != sym.type.rank:
                return fail(f"partial-rank indexing of {expr.base.ident}")
            return all(scan(s) for s in expr.subscripts)
        if isinstance(expr, Name):
            ident = expr.ident
            if ident in eq.index_names:
                return True
            sym = analyzed.table.symbol(ident)
            if sym is not None:
                # A bare array name is a whole-array value — evaluator only.
                if isinstance(sym.type, ArrayType):
                    return fail(f"whole-array value {ident}")
                return True
            if ident in analyzed.table.enum_members:
                return True
            return fail(f"unknown name {ident}")
        for child in _children(expr):
            if not scan(child):
                return False
        return True

    if all(scan(e) for e in exprs):
        return None
    return found[0]


def equation_affine_fast_path(
    eq: AnalyzedEquation,
    analyzed: AnalyzedModule,
    flowchart: Flowchart | None = None,
    use_windows: bool = False,
) -> bool:
    """True when every array reference of the equation rides the
    slice-based affine fast path in vector mode (each subscript either
    index-free or ``index ± const`` with a distinct index per dimension,
    and no index-carrying subscript on a *windowed* dimension — the exact
    rule of ``_VectorLowerer._affine_specs``). References off this path
    fall back to clipped fancy indexing, an order of magnitude slower per
    element — the cost model prices them as ``"gather"``. ``flowchart``
    supplies the window analysis; without it windows are assumed off."""
    dims = set(eq.index_names)

    def affine_ok(name: str, subscripts: list[Expr]) -> bool:
        wins = (
            static_windows(name, analyzed, flowchart, use_windows)
            if flowchart is not None
            else {}
        )
        used: set[str] = set()
        for d, s in enumerate(subscripts):
            c = classify_affine_subscript(s, dims)
            if c is None:
                return False
            kind, var, _off = c
            if kind == "const":
                continue
            if var in used or d in wins:
                return False
            used.add(var)
        return True

    for target in eq.targets:
        sym = analyzed.table.symbol(target.name)
        if sym is not None and isinstance(sym.type, ArrayType):
            if not affine_ok(target.name, target.subscripts):
                return False
    for node in walk_expr(eq.rhs):
        if isinstance(node, Index) and isinstance(node.base, Name):
            sym = analyzed.table.symbol(node.base.ident)
            if sym is not None and isinstance(sym.type, ArrayType):
                if not affine_ok(node.base.ident, node.subscripts):
                    return False
    return True


def classify_affine_subscript(
    sub: Expr, dims: set[str]
) -> tuple[str, str | None, tuple[str, Expr] | None] | None:
    """The affine-in-one-index shape of a subscript — THE rule both the
    vector lowerer's fast path and the cost model's gather pricing follow
    (one definition, so they cannot drift).

    Returns ``("const", None, None)`` for an index-free subscript,
    ``("affine", var, None)`` for a bare index, ``("affine", var, (sign,
    offset_expr))`` for ``var ± const`` / ``const + var``, and ``None``
    when the subscript is not affine in exactly one index (the generic
    clipped-fancy-indexing gather then runs)."""

    def mentions_dims(e: Expr) -> bool:
        return any(
            isinstance(n, Name) and n.ident in dims for n in walk_expr(e)
        )

    if not mentions_dims(sub):
        return ("const", None, None)
    if isinstance(sub, Name) and sub.ident in dims:
        return ("affine", sub.ident, None)
    if isinstance(sub, BinOp) and sub.op in ("+", "-"):
        left, right = sub.left, sub.right
        if (
            isinstance(left, Name)
            and left.ident in dims
            and not mentions_dims(right)
        ):
            return ("affine", left.ident, (sub.op, right))
        if (
            sub.op == "+"
            and isinstance(right, Name)
            and right.ident in dims
            and not mentions_dims(left)
        ):
            return ("affine", right.ident, ("+", left))
    return None


def _children(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnOp):
        return [expr.operand]
    if isinstance(expr, IfExpr):
        return [expr.cond, expr.then, expr.orelse]
    return []


class _KernelLowerer(ExprLowerer):
    """Shared kernel dialect pieces: name hoisting and builtin calls."""

    error_type = KernelError

    def __init__(
        self,
        eq: AnalyzedEquation,
        analyzed: AnalyzedModule,
        flowchart: Flowchart,
        use_windows: bool,
    ):
        self.eq = eq
        self.analyzed = analyzed
        self.flowchart = flowchart
        self.use_windows = use_windows
        self.dims = set(eq.index_names)
        #: names hoisted from ``env`` / ``data`` in the kernel prologue
        self.env_names: set[str] = set()
        self.scalar_names: set[str] = set()
        #: array name -> static window dims
        self.arrays: dict[str, dict[int, int]] = {}
        #: builtin functions referenced (bound into the kernel namespace)
        self.builtins: set[str] = set()
        #: True when the kernel invokes a module call through the call box
        self.module_calls: bool = False
        #: fresh-temp counter for inline range checks
        self._tmp = 0

    def windows_of(self, name: str) -> dict[int, int]:
        return static_windows(name, self.analyzed, self.flowchart, self.use_windows)

    def register_array(self, name: str) -> dict[int, int]:
        wins = self.arrays.get(name)
        if wins is None:
            wins = self.windows_of(name)
            self.arrays[name] = wins
        return wins

    # Resolution order mirrors the evaluator: env (loop indices), then the
    # data environment (symbols), then enum ordinals.
    def lower_name(self, ident: str) -> str:
        if ident in self.dims:
            self.env_names.add(ident)
            return f"_v_{py_name(ident)}"
        sym = self.analyzed.table.symbol(ident)
        if sym is not None:
            if isinstance(sym.type, ArrayType):
                raise self.error(f"whole-array value {ident!r}")
            self.scalar_names.add(ident)
            return f"_v_{py_name(ident)}"
        if ident in self.analyzed.table.enum_members:
            _, ordinal = self.analyzed.table.enum_members[ident]
            return str(ordinal)
        raise self.error(f"unbound name {ident!r}")

    def lower_call(self, expr: Call) -> str:
        if not is_builtin(expr.func):
            index_names = set(self.eq.index_names)
            for a in expr.args:
                if names_in(a) & index_names:
                    raise self.error(f"index-dependent module call {expr.func!r}")
            self.module_calls = True
            args = ", ".join(self.lower(a) for a in expr.args)
            return f"_mc({expr.func!r}, [{args}])"
        self.builtins.add(expr.func)
        args = ", ".join(self.lower(a) for a in expr.args)
        return f"_bf_{expr.func}({args})"

    # The evaluator dispatches these operators on the runtime value kind;
    # the helpers replicate those branches exactly in both variants.
    def lower_div(self, left: str, right: str) -> str:
        return f"_div({left}, {right})"

    def lower_floordiv(self, left: str, right: str) -> str:
        return f"_fdiv({left}, {right})"

    def lower_mod(self, left: str, right: str) -> str:
        return f"_mod({left}, {right})"

    def lower_not(self, operand: str) -> str:
        return f"_not({operand})"


class _ScalarLowerer(_KernelLowerer):
    """Scalar variant: range-checked storage indexing, lazy ``if``,
    short-circuit logicals — the reference semantics, minus the tree walk."""

    def subscript_code(self, name: str, d: int, s: Expr) -> str:
        """One storage-relative subscript, range-checked like the
        evaluator's ``RuntimeArray`` access, window modulo applied.

        The in-range fast path is an inline chained comparison — the
        ``_ck`` helper is reached only to raise the identical out-of-range
        error, so the common case costs no Python call. Per-element calls
        are the dominant tax of the scalar kernels (fused nest and flat
        kernels loop over millions of elements), which makes this inline
        worth its ugliness."""
        pname = py_name(name)
        wins = self.arrays[name]
        tmp = f"_t{self._tmp}"
        self._tmp += 1
        code = (
            f"({tmp} - _o_{pname}_{d}"
            f" if _o_{pname}_{d} <= ({tmp} := ({self.lower(s)})) <= _h_{pname}_{d}"
            f" else _ck({tmp}, _o_{pname}_{d}, _h_{pname}_{d}, "
            f"{d}, {name!r}))"
        )
        if d in wins:
            code = f"({code}) % _w_{pname}_{d}"
        return code

    def lower_array_ref(self, name: str, subscripts: list[Expr]) -> str:
        self.register_array(name)
        parts = [
            self.subscript_code(name, d, s) for d, s in enumerate(subscripts)
        ]
        return f"_s_{py_name(name)}[{', '.join(parts)}]"

    def lower_logical(self, op: str, left: str, right: str) -> str:
        return f"(bool({left}) {op} bool({right}))"


class _VectorLowerer(_KernelLowerer):
    """Vector variant: NumPy ops with ``np.where`` clipping; affine
    subscripts go through the slice-based gather/scatter helpers."""

    def lower_array_ref(self, name: str, subscripts: list[Expr]) -> str:
        wins = self.register_array(name)
        pname = py_name(name)
        specs = self._affine_specs(subscripts, wins)
        if specs is not None:
            return f"_ag(_a_{pname}, ({', '.join(specs)},))"
        codes = ", ".join(self.lower(s) for s in subscripts)
        return f"_a_{pname}.get([{codes}], clip=True)"

    def _affine_specs(
        self, subscripts: list[Expr], wins: dict[int, int]
    ) -> list[str] | None:
        """One ``(base, offset)`` spec per subscript, or None when any
        subscript is not affine-in-one-index (the generic gather then
        reproduces the evaluator's clipped fancy indexing verbatim)."""
        specs: list[str] = []
        used: set[str] = set()
        for d, s in enumerate(subscripts):
            c = self._classify(s)
            if c is None:
                return None
            kind, var, off = c
            if kind == "affine":
                if var in used or d in wins:
                    return None
                used.add(var)
                self.env_names.add(var)
                specs.append(f"(_v_{py_name(var)}, {off})")
            else:
                specs.append(f"({self.lower(s)}, 0)")
        return specs

    def _classify(self, sub: Expr) -> tuple[str, str | None, str] | None:
        c = classify_affine_subscript(sub, self.dims)
        if c is None:
            return None
        kind, var, off = c
        if kind == "const":
            return ("const", None, "0")
        if off is None:
            return ("affine", var, "0")
        sign, expr = off
        code = self.lower(expr)
        return ("affine", var, code if sign == "+" else f"-({code})")

    def lower_logical(self, op: str, left: str, right: str) -> str:
        fn = "np.logical_and" if op == "and" else "np.logical_or"
        return f"{fn}({left}, {right})"

    def lower_if(self, expr) -> str:
        return (
            f"np.where({self.lower(expr.cond)}, {self.lower(expr.then)}, "
            f"{self.lower(expr.orelse)})"
        )


def emit_kernel_source(
    eq: AnalyzedEquation,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    vector: bool,
    use_windows: bool,
) -> tuple[str, set[str]]:
    """Emit the kernel function source; returns ``(source, builtins_used)``.

    Raises :class:`KernelError` when the equation cannot be specialized.
    """
    lowerer_cls = _VectorLowerer if vector else _ScalarLowerer
    low = lowerer_cls(eq, analyzed, flowchart, use_windows)

    # An atomic equation elsewhere may rebind an array wholesale, dropping
    # its window mapping; a kernel that baked the mapping in would then
    # address stale planes. Such equations stay on the evaluator.
    atomic_names = _atomic_target_names(analyzed)

    value_code = low.lower(eq.rhs)

    target = eq.targets[0]
    sym = analyzed.symbol(target.name)
    store_lines: list[str] = []
    if isinstance(sym.type, ArrayType):
        if len(target.subscripts) != sym.type.rank:
            raise low.error(f"partial-rank target {target.name!r}")
        pname = py_name(target.name)
        wins = low.register_array(target.name)
        if vector:
            specs = low._affine_specs(target.subscripts, wins)
            if specs is not None:
                store_lines.append(
                    f"_asc(_a_{pname}, ({', '.join(specs)},), __v)"
                )
            else:
                codes = ", ".join(low.lower(s) for s in target.subscripts)
                store_lines.append(f"_a_{pname}.set([{codes}], __v)")
        else:
            parts = [
                low.subscript_code(target.name, d, s)
                for d, s in enumerate(target.subscripts)
            ]
            store_lines.append(f"_s_{pname}[{', '.join(parts)}] = __v")
    else:
        store_lines.append(f"_store(data, {target.name!r}, __v)")

    for name, wins in low.arrays.items():
        if wins and name in atomic_names:
            raise low.error(
                f"windowed array {name!r} is rebound by an atomic equation"
            )

    lines = ["def _kernel(data, env):"]
    for name in sorted(low.arrays):
        pname = py_name(name)
        lines.append(f"    _a_{pname} = data[{name!r}]")
        if not vector:
            sym_t = analyzed.symbol(name).type
            lines.append(f"    _s_{pname} = _a_{pname}.storage")
            for d in range(sym_t.rank):
                lines.append(f"    _o_{pname}_{d} = _a_{pname}.los[{d}]")
                lines.append(f"    _h_{pname}_{d} = _a_{pname}.his[{d}]")
            for d in sorted(low.arrays[name]):
                lines.append(f"    _w_{pname}_{d} = _a_{pname}.windows[{d}]")
    for name in sorted(low.env_names):
        lines.append(f"    _v_{py_name(name)} = env[{name!r}]")
    for name in sorted(low.scalar_names):
        lines.append(f"    _v_{py_name(name)} = data[{name!r}]")
    lines.append("    with np.errstate(invalid='ignore', divide='ignore'):")
    lines.append(f"        __v = {value_code}")
    for stmt in store_lines:
        lines.append(f"        {stmt}")
    if vector:
        lines.append("    return int(np.size(__v))")
    else:
        lines.append("    return 1")
    return "\n".join(lines) + "\n", set(low.builtins)


def compile_kernel(
    eq: AnalyzedEquation,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    vector: bool,
    use_windows: bool,
    call_box: list | None = None,
) -> Callable:
    """Emit, ``compile()``/``exec`` and return the kernel callable.

    The callable has signature ``kernel(data, env) -> int`` (the element
    count for the evaluation statistics) and writes its target in place.
    ``call_box`` is the one-slot module-call box the kernel's ``_mc``
    reads at call time (see :func:`repro.runtime.kernels.runtime.module_call`).
    """
    source, builtins = emit_kernel_source(
        eq, analyzed, flowchart, vector, use_windows
    )
    namespace: dict = {
        "np": np,
        "ExecutionError": ExecutionError,
        "_ag": _rt.affine_gather,
        "_asc": _rt.affine_scatter,
        "_ck": _rt.check_index,
        "_div": _rt.kdiv,
        "_fdiv": _rt.kfloordiv,
        "_mc": _rt.make_module_call(call_box),
        "_mod": _rt.kmod,
        "_not": _rt.knot,
        "_store": _rt.store_scalar,
    }
    for name in builtins:
        namespace[f"_bf_{name}"] = _rt.BUILTIN_FUNCS[name]
    variant = "vector" if vector else "scalar"
    filename = f"<kernel:{analyzed.name}.{eq.label}:{variant}>"
    exec(compile(source, filename, "exec"), namespace)
    fn = namespace["_kernel"]
    fn.__kernel_source__ = source
    return fn


# ---------------------------------------------------------------------------
# Nest-level kernels: one compiled function per fusable DOALL nest
# ---------------------------------------------------------------------------
#
# The per-equation scalar kernel still pays one Python call, one prologue
# hoist, and one eval-count dict update *per element*. A fused nest kernel
# hoists once and runs the whole nest as compiled ``for`` loops — the serial
# path's per-element interpretation tax collapses to the loop body itself.
# Semantics are identical to the serial walk: descriptors execute in order
# inside each iteration, subranges ascend, and every element store goes
# through the same range-checked, window-mapped scalar indexing.


def nest_fusable(
    desc: LoopDescriptor,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    use_windows: bool,
    variant: str = "full",
) -> bool:
    """Static check: can this nest be lowered into one kernel?

    Required: a parallel root (except for ``variant="seq"``, whose whole
    point is a sequential root executed in iteration order); a nest of
    loops and equations only (no data declarations); every equation
    kernelizable with a full-rank *array* target. A scalar target is
    rejected because the nest kernel hoists scalar reads once — a write
    inside the nest would be invisible to a later read, unlike the
    per-element walk.
    """
    if variant != "seq" and not desc.parallel:
        return False
    saw_equation = False
    for d in desc.nested_descriptors():
        if isinstance(d, LoopDescriptor):
            continue
        assert isinstance(d, NodeDescriptor)
        if not d.node.is_equation:
            return False
        eq = d.node.equation
        if not kernelizable(eq, analyzed):
            return False
        target = eq.targets[0]
        sym = analyzed.symbol(target.name)
        if not isinstance(sym.type, ArrayType):
            return False
        if len(target.subscripts) != sym.type.rank:
            return False
        saw_equation = True
    return saw_equation


class _BoundLowerer:
    """Subrange bounds -> Python ints read from the data environment.

    Bounds only ever reference integer parameters (``eval_bound`` evaluates
    them against the scalar environment, never loop indices), so the nest
    kernel hoists each referenced scalar once and computes the bound in the
    prologue."""

    def __init__(self, scalars: set[str]):
        self.scalars = scalars

    def lower(self, expr: Expr) -> str:
        if isinstance(expr, IntLit):
            return str(expr.value)
        if isinstance(expr, Name):
            self.scalars.add(expr.ident)
            return f"_v_{py_name(expr.ident)}"
        if isinstance(expr, UnOp):
            return f"({expr.op}{self.lower(expr.operand)})"
        if isinstance(expr, BinOp):
            ops = {"+": "+", "-": "-", "*": "*", "div": "//", "mod": "%"}
            if expr.op not in ops:
                raise KernelError(f"invalid bound operator {expr.op!r}")
            return f"({self.lower(expr.left)} {ops[expr.op]} {self.lower(expr.right)})"
        raise KernelError(f"invalid bound expression {type(expr).__name__}")


#: nest-kernel variants: ``"full"`` executes the root subrange ``[lo, hi]``
#: (chunkable on the root index only); ``"flat"`` executes the inclusive
#: *flat* range ``[flo, fhi]`` of the collapsed perfect DOALL chain,
#: delinearizing each flat offset back to the chain indices in-loop;
#: ``"seq"`` is the ``"full"`` emission with a *sequential* root — the
#: body already runs in strict iteration order, so relaxing the
#: root-parallel requirement is bit-exact by construction. Pipeline
#: sequential stages advance block by block through it.
NEST_VARIANTS = ("full", "flat", "seq")


def emit_nest_kernel_source(
    desc: LoopDescriptor,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    use_windows: bool,
    variant: str = "full",
) -> tuple[str, set[str]]:
    """Emit one kernel for the whole nest; ``(source, builtins_used)``.

    ``variant="full"`` (the PR 3 shape): signature
    ``kernel(data, env, lo, hi) -> dict`` where ``[lo, hi]`` is the root
    subrange to execute (chunkable by the caller on the root index).

    ``variant="flat"`` (the collapse shape): signature
    ``kernel(data, env, flo, fhi) -> dict`` where ``[flo, fhi]`` is an
    inclusive range of *flat* offsets into the collapsed chain's
    row-major iteration space (``0 .. prod(extents) - 1``). The prologue
    evaluates every chain bound from the data environment; the body walks
    the chunk one *row* at a time (a row is one combination of the outer
    chain indices with a contiguous segment of the innermost subrange,
    clipped to the chunk at its ends), recovering the outer indices with a
    divmod cascade per row and running the innermost dimension as NumPy
    vector spans — the same lowering as the per-equation vector kernels,
    fused into one prologue and one compiled row loop. A chunk may start
    and end mid-row, which is what load-balances tall-skinny nests over
    workers.

    ``variant="seq"`` is the ``"full"`` shape over a *sequential* root:
    the caller hands in-order blocks ``[lo, hi]`` of a ``DO`` subrange and
    the kernel runs them element by element exactly as the serial walk
    would — what a pipeline sequential stage advances its frontier with.

    Either way the result maps equation labels to element counts.
    """
    if variant not in NEST_VARIANTS:
        raise KernelError(f"unknown nest-kernel variant {variant!r}")
    if not nest_fusable(desc, analyzed, flowchart, use_windows, variant):
        raise KernelError(f"{desc.index} nest is not fusable")

    atomic_names = _atomic_target_names(analyzed)
    nest_indices = desc.nest_indices()
    arrays: dict[str, dict[int, int]] = {}
    scalar_names: set[str] = set()
    env_names: set[str] = set()
    builtins: set[str] = set()
    bounds = _BoundLowerer(scalar_names)
    counters: list[str] = []  # equation labels, emission order
    body_lines: list[str] = []
    prologue: list[str] = []

    def emit_equation(eq: AnalyzedEquation, indent: int) -> None:
        low = _ScalarLowerer(eq, analyzed, flowchart, use_windows)
        value_code = low.lower(eq.rhs)
        target = eq.targets[0]
        low.register_array(target.name)
        parts = [
            low.subscript_code(target.name, d, s)
            for d, s in enumerate(target.subscripts)
        ]
        arrays.update(low.arrays)
        scalar_names.update(low.scalar_names)
        env_names.update(low.env_names)
        builtins.update(low.builtins)
        label_ix = len(counters)
        counters.append(eq.label)
        pad = "    " * indent
        body_lines.append(f"{pad}__v = {value_code}")
        body_lines.append(f"{pad}_s_{py_name(target.name)}[{', '.join(parts)}] = __v")
        body_lines.append(f"{pad}_c{label_ix} += 1")

    def emit_vector_equation(eq: AnalyzedEquation, indent: int) -> None:
        """One equation as a NumPy span over the vectorised innermost
        chain index — the same lowering as the per-equation vector
        kernels, inlined into the fused row loop."""
        low = _VectorLowerer(eq, analyzed, flowchart, use_windows)
        value_code = low.lower(eq.rhs)
        target = eq.targets[0]
        wins = low.register_array(target.name)
        pname = py_name(target.name)
        specs = low._affine_specs(target.subscripts, wins)
        if specs is not None:
            store = f"_asc(_a_{pname}, ({', '.join(specs)},), __v)"
        else:
            codes = ", ".join(low.lower(s) for s in target.subscripts)
            store = f"_a_{pname}.set([{codes}], __v)"
        arrays.update(low.arrays)
        scalar_names.update(low.scalar_names)
        env_names.update(low.env_names)
        builtins.update(low.builtins)
        label_ix = len(counters)
        counters.append(eq.label)
        pad = "    " * indent
        body_lines.append(f"{pad}__v = {value_code}")
        body_lines.append(f"{pad}{store}")
        body_lines.append(f"{pad}_c{label_ix} += int(np.size(__v))")

    def emit_descriptor(
        d, indent: int, root: bool = False, vector: bool = False
    ) -> None:
        if isinstance(d, NodeDescriptor):
            if vector:
                emit_vector_equation(d.node.equation, indent)
            else:
                emit_equation(d.node.equation, indent)
            return
        assert isinstance(d, LoopDescriptor)
        pad = "    " * indent
        var = f"_v_{py_name(d.index)}"
        if root:
            body_lines.append(f"{pad}for {var} in range(_nlo, _nhi + 1):")
        else:
            lo = bounds.lower(d.subrange.lo)
            hi = bounds.lower(d.subrange.hi)
            body_lines.append(f"{pad}for {var} in range({lo}, {hi} + 1):")
        for child in d.body:
            emit_descriptor(child, indent + 1, vector=vector)

    if variant == "flat":
        chain, chain_body = collapse_chain(desc)
        if len(chain) < 2:
            # One loop alone is plain chunking — the full variant already
            # covers it, and the row/divmod shape below needs an inner dim.
            raise KernelError(
                f"DOALL {desc.index} is not a perfect nest; nothing to collapse"
            )
        chain_indices = {loop.index for loop in chain}
        for loop in chain:
            for bound in (loop.subrange.lo, loop.subrange.hi):
                if names_in(bound) & chain_indices:
                    raise KernelError(
                        f"non-rectangular nest: bound of {loop.index} "
                        f"references a collapsed index"
                    )
        # Prologue: every chain extent from the data environment (bounds
        # only ever reference integer parameters).
        for k, loop in enumerate(chain):
            lo = bounds.lower(loop.subrange.lo)
            hi = bounds.lower(loop.subrange.hi)
            prologue.append(f"    _lo{k} = {lo}")
            if k > 0:
                prologue.append(f"    _n{k} = ({hi}) - _lo{k} + 1")
        last = len(chain) - 1
        inner_var = f"_v_{py_name(chain[last].index)}"
        body_lines.append(f"        _row0, _off0 = divmod(_nlo, _n{last})")
        body_lines.append(f"        _row1, _off1 = divmod(_nhi, _n{last})")
        body_lines.append("        for _row in range(_row0, _row1 + 1):")
        body_lines.append(
            f"            _jlo = _lo{last} + (_off0 if _row == _row0 else 0)"
        )
        body_lines.append(
            f"            _jhi = _lo{last} + "
            f"(_off1 if _row == _row1 else _n{last} - 1)"
        )
        body_lines.append("            _r = _row")
        for k in range(last - 1, 0, -1):
            var = f"_v_{py_name(chain[k].index)}"
            body_lines.append(f"            {var} = _r % _n{k} + _lo{k}")
            body_lines.append(f"            _r //= _n{k}")
        body_lines.append(f"            _v_{py_name(chain[0].index)} = _r + _lo0")
        body_lines.append(f"            {inner_var} = np.arange(_jlo, _jhi + 1)")
        for child in chain_body:
            emit_descriptor(child, 3, vector=True)
    else:
        emit_descriptor(desc, 2, root=True)

    for name, wins in arrays.items():
        if wins and name in atomic_names:
            raise KernelError(
                f"windowed array {name!r} is rebound by an atomic equation"
            )

    lines = ["def _kernel(data, env, _nlo, _nhi):"]
    for name in sorted(arrays):
        pname = py_name(name)
        lines.append(f"    _a_{pname} = data[{name!r}]")
        if variant == "flat":
            # The vector row lowering addresses arrays through the
            # RuntimeArray helpers; no storage-relative hoists needed.
            continue
        sym_t = analyzed.symbol(name).type
        lines.append(f"    _s_{pname} = _a_{pname}.storage")
        for d in range(sym_t.rank):
            lines.append(f"    _o_{pname}_{d} = _a_{pname}.los[{d}]")
            lines.append(f"    _h_{pname}_{d} = _a_{pname}.his[{d}]")
        for d in sorted(arrays[name]):
            lines.append(f"    _w_{pname}_{d} = _a_{pname}.windows[{d}]")
    for name in sorted(env_names - nest_indices):
        lines.append(f"    _v_{py_name(name)} = env[{name!r}]")
    for name in sorted(scalar_names):
        lines.append(f"    _v_{py_name(name)} = data[{name!r}]")
    lines.extend(prologue)
    for i in range(len(counters)):
        lines.append(f"    _c{i} = 0")
    lines.append("    with np.errstate(invalid='ignore', divide='ignore'):")
    lines.extend(body_lines)
    result = ", ".join(
        f"{label!r}: _c{i}" for i, label in enumerate(counters)
    )
    lines.append(f"    return {{{result}}}")
    return "\n".join(lines) + "\n", builtins


def compile_nest_kernel(
    desc: LoopDescriptor,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    use_windows: bool,
    variant: str = "full",
    call_box: list | None = None,
) -> Callable:
    """Emit and compile the fused nest kernel for ``desc``.

    The callable has signature ``kernel(data, env, lo, hi) -> dict[str, int]``
    (per-equation element counts; ``[lo, hi]`` is a root subrange for
    ``variant="full"``, a flat collapsed range for ``variant="flat"``) and
    writes its targets in place.
    """
    source, builtins = emit_nest_kernel_source(
        desc, analyzed, flowchart, use_windows, variant
    )
    namespace: dict = {
        "np": np,
        "ExecutionError": ExecutionError,
        "_ag": _rt.affine_gather,
        "_asc": _rt.affine_scatter,
        "_ck": _rt.check_index,
        "_div": _rt.kdiv,
        "_fdiv": _rt.kfloordiv,
        "_mc": _rt.make_module_call(call_box),
        "_mod": _rt.kmod,
        "_not": _rt.knot,
    }
    for name in builtins:
        namespace[f"_bf_{name}"] = _rt.BUILTIN_FUNCS[name]
    filename = f"<kernel:{analyzed.name}.nest-{desc.index}:{variant}>"
    exec(compile(source, filename, "exec"), namespace)
    fn = namespace["_kernel"]
    fn.__kernel_source__ = source
    return fn
