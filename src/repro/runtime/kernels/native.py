"""Native kernel tier: DOALL nests compiled to C, loaded via cffi.

The NumPy kernel tier (:mod:`repro.runtime.kernels.emit`) removed the
per-element tree walk but still pays interpreter overhead per scalar
fallback and per dispatch. This module lowers the same fusable DOALL nests
all the way to C — the classic restructuring-compiler endgame (PFC-style
automatic translation; see PAPERS.md) — compiles each nest **once** with
the system C compiler, and loads the shared object through ``cffi``'s ABI
mode. The result is registered in :class:`~repro.runtime.kernels.cache.
KernelCache` as a third tier with the same callable signature as the fused
NumPy nest kernels (``kernel(data, env, lo, hi) -> dict[label, count]``),
so every backend dispatches through it unchanged. Lookup order is
**native -> NumPy kernel -> evaluator**.

Bit-exactness contract: the emitted C performs the identical IEEE-754
operation sequence the scalar reference evaluator performs (lazy ``if``,
short-circuit logicals, range-checked window-mapped indexing, floored
``div``/``mod``, NaN-propagating min/max), compiled with FP contraction
off. Equations that would not be bit-exact in C (module calls,
transcendental builtins) make the nest non-emittable and it stays on the
NumPy tier.

Compiled artifacts persist in an on-disk cache keyed by the SHA-256 of the
generated source (``$REPRO_NATIVE_CACHE`` or ``~/.cache/repro/native``):
a second process — or a later session — dlopens the existing ``.so``
without invoking the compiler. The generated ``.c`` is kept next to it,
and :func:`persist_plan` stores execution plans beside the generated C for
offline builds. Everything degrades gracefully: no C compiler or no cffi
means :func:`native_supported` is False and the cache quietly serves the
NumPy tier.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.codegen.clower import (
    C_FLAGS,
    C_PRELUDE,
    C_STORAGE_TYPES,
    CExprLowerer,
    kind_of_type,
)
from repro.codegen.naming import c_name
from repro.errors import ExecutionError
from repro.ps.ast import BinOp, Expr, IntLit, Name, UnOp, names_in
from repro.ps.semantics import AnalyzedEquation, AnalyzedModule
from repro.ps.types import ArrayType
from repro.runtime.kernels.emit import (
    NEST_VARIANTS,
    KernelError,
    nest_fusable,
    static_windows,
)
from repro.schedule.flowchart import (
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
    collapse_chain,
    outermost_parallel_loops,
)

# ---------------------------------------------------------------------------
# Toolchain discovery and the on-disk artifact cache
# ---------------------------------------------------------------------------

_compiler_cache: str | None | bool = False  # False: not probed yet


def find_compiler() -> str | None:
    """Path of the system C compiler, or None. Probed once per process
    (monkeypatch this to simulate a compiler-less platform)."""
    global _compiler_cache
    if _compiler_cache is False:
        _compiler_cache = next(
            (
                path
                for cc in ("cc", "gcc", "clang")
                if (path := shutil.which(cc)) is not None
            ),
            None,
        )
    return _compiler_cache


def _ffi_module():
    try:
        import cffi
    except ImportError:
        return None
    return cffi


def native_supported() -> bool:
    """True when the native tier can compile on this machine (cffi
    importable and a C compiler on PATH). Emittability of a given nest is
    a separate, machine-independent question — see :func:`native_emittable`.
    """
    return _ffi_module() is not None and find_compiler() is not None


def cache_dir() -> Path:
    """The on-disk artifact cache: ``$REPRO_NATIVE_CACHE`` or
    ``~/.cache/repro/native``. Created on demand."""
    root = os.environ.get("REPRO_NATIVE_CACHE")
    path = (
        Path(root)
        if root
        else Path(os.path.expanduser("~")) / ".cache" / "repro" / "native"
    )
    path.mkdir(parents=True, exist_ok=True)
    return path


def persist_plan(
    module_name: str, plan_text: str, c_sources: dict[str, str]
) -> Path:
    """Store an execution plan next to the generated C for offline builds
    (the ROADMAP follow-up): ``plans/<module>-<hash>/plan.txt``, one
    ``.c`` per natively emittable nest, and a ``build.sh`` recording the
    *mandatory* bit-exactness flags (an offline ``cc -O2`` without
    ``-ffp-contract=off``/``-fwrapv`` would contract FMAs and reintroduce
    signed-overflow UB). The hash keys the plan text, so re-saving an
    unchanged plan is idempotent."""
    digest = hashlib.sha256(plan_text.encode()).hexdigest()[:16]
    out = cache_dir() / "plans" / f"{module_name}-{digest}"
    out.mkdir(parents=True, exist_ok=True)
    (out / "plan.txt").write_text(plan_text)
    for name, source in c_sources.items():
        (out / f"{name}.c").write_text(source)
    flags = " ".join(C_FLAGS)
    lines = ["#!/bin/sh", "# bit-exactness requires exactly these flags", "set -e"]
    lines.extend(
        f'cc {flags} -shared -o "{name}.so" "{name}.c" -lm'
        for name in sorted(c_sources)
    )
    (out / "build.sh").write_text("\n".join(lines) + "\n")
    return out


# ---------------------------------------------------------------------------
# Emission: one C function per fusable DOALL nest
# ---------------------------------------------------------------------------


@dataclass
class NativeKernelSpec:
    """Everything needed to compile and call one native nest kernel."""

    source: str  # full C translation unit (prelude + function)
    fn_name: str
    cdef: str  # cffi declaration of the function
    #: ordered (array name, element kind) pairs — pointer args
    arrays: list[tuple[str, str]]
    #: per-array rank, same order (geometry layout)
    ranks: list[int]
    #: ordered (scalar name, kind) pairs hoisted from the data environment
    scalars: list[tuple[str, str]]
    #: ordered env names (enclosing loop indices outside the nest)
    env_names: list[str]
    #: equation labels in emission order (counts layout)
    counters: list[str]


class _NativeLowerer(CExprLowerer):
    """The nest-kernel C dialect: loop indices and hoisted scalars are
    function parameters/locals, array references are range-checked,
    window-mapped, row-major flattened reads of the raw storage pointers."""

    error_type = KernelError

    def __init__(
        self,
        analyzed: AnalyzedModule,
        flowchart: Flowchart,
        use_windows: bool,
        nest_indices: set[str],
    ):
        super().__init__(analyzed, index_names=set())
        self.flowchart = flowchart
        self.use_windows = use_windows
        self.nest_indices = set(nest_indices)
        #: dims of the equation currently being lowered (enclosing loop
        #: indices outside the nest resolve through ``env``, like the
        #: Python nest kernels)
        self.current_dims: set[str] = set()
        #: array name -> (ordinal, rank, element kind, windowed dims)
        self.arrays: dict[str, tuple[int, int, str, dict[int, int]]] = {}
        self.scalar_names: set[str] = set()
        self.env_names: set[str] = set()

    def register_array(self, name: str) -> tuple[int, int, str, dict[int, int]]:
        entry = self.arrays.get(name)
        if entry is None:
            sym = self.analyzed.symbol(name)
            if not isinstance(sym.type, ArrayType):
                raise self.error(f"not an array: {name!r}")
            wins = static_windows(
                name, self.analyzed, self.flowchart, self.use_windows
            )
            entry = (len(self.arrays), sym.type.rank, kind_of_type(sym.type), wins)
            self.arrays[name] = entry
        return entry

    # -- name resolution ---------------------------------------------------

    def lower_name(self, ident: str) -> str:
        if ident in self.index_names or ident in self.current_dims:
            if ident not in self.index_names and ident not in self.nest_indices:
                # an enclosing loop index outside the nest: hoisted from env
                self.env_names.add(ident)
            return f"v_{c_name(ident)}"
        sym = self.analyzed.table.symbol(ident)
        if sym is not None:
            if isinstance(sym.type, ArrayType):
                raise self.error(f"whole-array value {ident!r}")
            self.scalar_names.add(ident)
            return f"v_{c_name(ident)}"
        if ident in self.analyzed.table.enum_members:
            _, ordinal = self.analyzed.table.enum_members[ident]
            return str(ordinal)
        raise self.error(f"unbound name {ident!r}")

    def kind(self, expr: Expr) -> str:
        if isinstance(expr, Name) and (
            expr.ident in self.index_names or expr.ident in self.current_dims
        ):
            return "int"
        return super().kind(expr)

    # -- array references --------------------------------------------------

    def subscript_code(self, name: str, d: int, sub: Expr) -> str:
        """One storage-relative subscript: range-checked exactly like the
        evaluator (error info reported through ``err``), window modulo
        applied. Emits statements; returns the C index variable."""
        ordinal, _rank, _kind, wins = self.arrays[name]
        raw = self.fresh("_i")
        self.stmt(f"i64 {raw} = (i64)({self.lower(sub)});")
        an = c_name(name)
        self.stmt(
            f"if ({raw} < {an}_lo{d} || {raw} > {an}_hi{d}) "
            f"{{ err[0] = {raw}; err[1] = {d}; err[2] = {ordinal}; "
            f"return 1; }}"
        )
        mapped = f"({raw} - {an}_lo{d})"
        if d in wins:
            mapped = f"({mapped} % {an}_n{d})"
        return mapped

    def lower_array_ref(self, name: str, subscripts: list[Expr]) -> str:
        _ordinal, rank, _kind, _wins = self.register_array(name)
        if len(subscripts) != rank:
            raise self.error(f"partial-rank reference to {name!r}")
        an = c_name(name)
        parts = [
            self.subscript_code(name, d, s) for d, s in enumerate(subscripts)
        ]
        flat = parts[0]
        for d in range(1, rank):
            flat = f"({flat} * {an}_n{d} + {parts[d]})"
        return f"s_{an}[{flat}]"

    def lower_binop(self, expr) -> str:
        """Integer ``div``/``mod`` must guard the divisor before touching
        C's ``/``/``%``: a zero divisor (or INT64_MIN / -1) is *undefined
        behaviour* that SIGFPEs the whole interpreter, where the evaluator
        raises. The guard reports through the error channel and the
        wrapper re-raises the evaluator's exact exception."""
        if expr.op in ("div", "mod"):
            self._int_only(expr.op, expr.left, expr.right)
            tl = self.fresh("_d")
            tr = self.fresh("_d")
            self.stmt(f"i64 {tl} = (i64)({self.lower(expr.left)});")
            self.stmt(f"i64 {tr} = (i64)({self.lower(expr.right)});")
            self.stmt(
                f"if ({tr} == 0) {{ err[0] = 0; err[1] = -1; err[2] = -1; "
                f"return 2; }}"
            )
            self.stmt(
                f"if ({tr} == -1 && {tl} == INT64_MIN) "
                f"{{ err[0] = {tl}; err[1] = -1; err[2] = -1; return 3; }}"
            )
            helper = "ps_fdiv" if expr.op == "div" else "ps_mod"
            return f"{helper}({tl}, {tr})"
        return super().lower_binop(expr)


def _bound_c(expr: Expr, low: _NativeLowerer) -> str:
    """Subrange bound -> C (integer parameters only, like the Python nest
    kernels' ``_BoundLowerer``). Bounds with ``div``/``mod`` are rejected:
    they evaluate in prologue initialisers where the zero-divisor guard
    cannot be emitted, so such nests stay on the NumPy tier."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, Name):
        low.scalar_names.add(expr.ident)
        sym = low.analyzed.table.symbol(expr.ident)
        if sym is None or kind_of_type(sym.type) != "int":
            raise KernelError(f"non-integer bound name {expr.ident!r}")
        return f"v_{c_name(expr.ident)}"
    if isinstance(expr, UnOp):
        if expr.op not in ("-", "+"):
            raise KernelError(f"invalid bound operator {expr.op!r}")
        return f"({expr.op}{_bound_c(expr.operand, low)})"
    if isinstance(expr, BinOp):
        ops = {"+": "+", "-": "-", "*": "*"}
        if expr.op not in ops:
            raise KernelError(f"unguardable bound operator {expr.op!r}")
        return f"({_bound_c(expr.left, low)} {ops[expr.op]} {_bound_c(expr.right, low)})"
    raise KernelError(f"invalid bound expression {type(expr).__name__}")


def _emit_equation_store(
    low: _NativeLowerer, eq: AnalyzedEquation, counters: list[str]
) -> None:
    """Lower one equation's store into ``low``'s statement stream: RHS,
    range-checked flattened target subscript, element-kind cast, and the
    per-label evaluation counter."""
    if eq.atomic or len(eq.targets) != 1:
        raise KernelError(f"{eq.label}: not a single-target equation")
    low.current_dims = set(eq.index_names)
    target = eq.targets[0]
    _ordinal, rank, kind, _wins = low.register_array(target.name)
    if len(target.subscripts) != rank:
        raise KernelError(f"{eq.label}: partial-rank target")
    value = low.lower(eq.rhs)
    ctype = C_STORAGE_TYPES[kind]
    an = c_name(target.name)
    parts = [
        low.subscript_code(target.name, d, s)
        for d, s in enumerate(target.subscripts)
    ]
    flat = parts[0]
    for d in range(1, rank):
        flat = f"({flat} * {an}_n{d} + {parts[d]})"
    if kind == "bool":
        low.stmt(f"s_{an}[{flat}] = ({ctype})(({value}) != 0);")
    else:
        low.stmt(f"s_{an}[{flat}] = ({ctype})({value});")
    label_ix = len(counters)
    counters.append(eq.label)
    low.stmt(f"_c{label_ix} += 1;")


def _check_windowed_atomics(low: _NativeLowerer, analyzed: AnalyzedModule) -> None:
    """An atomic equation elsewhere may rebind a windowed array wholesale —
    same restriction as the Python nest kernels."""
    atomic_names = {
        t.name for eq in analyzed.equations if eq.atomic for t in eq.targets
    }
    for name, (_ordinal, _rank, _kind, wins) in low.arrays.items():
        if wins and name in atomic_names:
            raise KernelError(
                f"windowed array {name!r} is rebound by an atomic equation"
            )


def _assemble_spec(
    low: _NativeLowerer,
    counters: list[str],
    prologue: list[str],
    nest_indices: set[str],
    analyzed: AnalyzedModule,
) -> NativeKernelSpec:
    """Assemble one lowered kernel body into a full translation unit with
    the shared parameter layout (array pointers, geometry, hoisted scalars,
    env names, subrange, counters, error channel)."""
    arrays = sorted(low.arrays.items(), key=lambda kv: kv[1][0])
    scalar_names = sorted(low.scalar_names)
    env_names = sorted(low.env_names - nest_indices)
    params: list[str] = []
    for name, (_ordinal, _rank, kind, _wins) in arrays:
        params.append(f"{C_STORAGE_TYPES[kind]} *s_{c_name(name)}")
    params.append("const i64 *geom")
    scalar_kinds: list[tuple[str, str]] = []
    for name in scalar_names:
        kind = kind_of_type(analyzed.table.symbol(name).type)
        scalar_kinds.append((name, kind))
        ctype = "double" if kind == "real" else "i64"
        params.append(f"{ctype} v_{c_name(name)}")
    for name in env_names:
        params.append(f"i64 v_{c_name(name)}")
    params.extend(["i64 nlo", "i64 nhi", "i64 *counts", "i64 *err"])

    body: list[str] = []
    pos = 0
    for name, (_ordinal, rank, _kind, _wins) in arrays:
        an = c_name(name)
        for d in range(rank):
            body.append(f"    const i64 {an}_lo{d} = geom[{pos}];")
            body.append(f"    const i64 {an}_hi{d} = geom[{pos + 1}];")
            body.append(f"    const i64 {an}_n{d} = geom[{pos + 2}];")
            pos += 3
    body.extend(prologue)
    for i in range(len(counters)):
        body.append(f"    i64 _c{i} = 0;")
    body.extend(low.lines)
    for i in range(len(counters)):
        body.append(f"    counts[{i}] = _c{i};")
    body.append("    return 0;")

    digest_src = "\n".join(body) + "|" + ", ".join(params)
    fn_name = "k_" + hashlib.sha256(digest_src.encode()).hexdigest()[:16]
    signature = f"int {fn_name}({', '.join(params)})"
    source = (
        C_PRELUDE
        + "\n"
        + signature
        + "\n{\n"
        + "\n".join(body)
        + "\n}\n"
    )
    cdef = (
        "typedef int64_t i64; "
        + signature.replace("const i64 *geom", "const int64_t *geom") + ";"
    )
    return NativeKernelSpec(
        source=source,
        fn_name=fn_name,
        cdef=cdef,
        arrays=[(name, entry[2]) for name, entry in arrays],
        ranks=[entry[1] for _name, entry in arrays],
        scalars=scalar_kinds,
        env_names=env_names,
        counters=counters,
    )


def emit_native_nest_source(
    desc: LoopDescriptor,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    use_windows: bool,
    variant: str = "full",
) -> NativeKernelSpec:
    """Lower a fusable DOALL nest to one C function.

    ``variant="full"``: execute the root subrange ``[nlo, nhi]`` with the
    inner loops at their declared bounds — the native analogue of the fused
    Python nest kernel. ``variant="flat"``: execute the inclusive flat
    range ``[nlo, nhi]`` of the collapsed perfect DOALL chain, recovering
    the chain indices with a divmod cascade per element (row-major,
    innermost fastest — the exact iteration order of the reference
    ``exec_flat_walk``). ``variant="seq"``: the ``"full"`` emission over a
    *sequential* root — the C loops already run in strict iteration order,
    so a ``DO`` subrange block executes bit-exactly; pipeline sequential
    stages advance through it.

    Raises :class:`KernelError` when the nest is not natively emittable
    (module calls, transcendental builtins, non-rectangular chains, scalar
    targets — anything whose C translation would not be bit-exact).
    """
    if variant not in NEST_VARIANTS:
        raise KernelError(f"unknown nest-kernel variant {variant!r}")
    if not nest_fusable(desc, analyzed, flowchart, use_windows, variant):
        raise KernelError(f"{desc.index} nest is not fusable")

    nest_indices = desc.nest_indices()
    low = _NativeLowerer(analyzed, flowchart, use_windows, nest_indices)
    counters: list[str] = []
    prologue: list[str] = []

    def emit_descriptor(d, root: bool = False) -> None:
        if isinstance(d, NodeDescriptor):
            if not d.node.is_equation:
                raise KernelError("non-equation node in nest")
            _emit_equation_store(low, d.node.equation, counters)
            return
        assert isinstance(d, LoopDescriptor)
        var = f"v_{c_name(d.index)}"
        low.index_names.add(d.index)
        if root:
            low.stmt(f"for (i64 {var} = nlo; {var} <= nhi; {var}++) {{")
        else:
            lo_c = _bound_c(d.subrange.lo, low)
            hi_c = _bound_c(d.subrange.hi, low)
            low.stmt(
                f"for (i64 {var} = {lo_c}; {var} <= {hi_c}; {var}++) {{"
            )
        low.indent += 1
        for child in d.body:
            emit_descriptor(child)
        low.indent -= 1
        low.stmt("}")

    if variant == "flat":
        chain, chain_body = collapse_chain(desc)
        if len(chain) < 2:
            raise KernelError(
                f"DOALL {desc.index} is not a perfect nest; nothing to collapse"
            )
        chain_indices = {loop.index for loop in chain}
        for loop in chain:
            for bound in (loop.subrange.lo, loop.subrange.hi):
                if names_in(bound) & chain_indices:
                    raise KernelError(
                        f"non-rectangular nest: bound of {loop.index} "
                        f"references a collapsed index"
                    )
        for k, loop in enumerate(chain):
            lo_c = _bound_c(loop.subrange.lo, low)
            prologue.append(f"    const i64 _clo{k} = {lo_c};")
            if k > 0:
                hi_c = _bound_c(loop.subrange.hi, low)
                prologue.append(
                    f"    const i64 _cn{k} = ({hi_c}) - _clo{k} + 1;"
                )
        for loop in chain:
            low.index_names.add(loop.index)
        last = len(chain) - 1
        low.stmt("for (i64 _f = nlo; _f <= nhi; _f++) {")
        low.indent += 1
        low.stmt("i64 _r = _f;")
        for k in range(last, 0, -1):
            var = f"v_{c_name(chain[k].index)}"
            low.stmt(f"i64 {var} = _r % _cn{k} + _clo{k};")
            low.stmt(f"_r /= _cn{k};")
        low.stmt(f"i64 v_{c_name(chain[0].index)} = _r + _clo0;")
        for child in chain_body:
            emit_descriptor(child)
        low.indent -= 1
        low.stmt("}")
    else:
        emit_descriptor(desc, root=True)

    _check_windowed_atomics(low, analyzed)
    return _assemble_spec(low, counters, prologue, nest_indices, analyzed)


def emit_native_span_sources(
    desc: LoopDescriptor,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    use_windows: bool,
) -> list[NativeKernelSpec]:
    """Lower a chunk-dispatchable DOALL subtree to **span kernels**: one C
    function per equation, each executing the root subrange ``[nlo, nhi]``
    with its enclosing inner loops at their declared bounds. This is the
    native analogue of ``exec_vector_span``'s per-equation distribution —
    and exactly as there, distribution is only order-preserving when every
    loop in the subtree is DOALL (a sequential inner ``DO`` carries
    cross-iteration dependences that per-equation reordering would break),
    so any non-parallel loop makes the whole span non-emittable.

    All-or-nothing: if *any* equation in the subtree fails to lower, the
    span stays on the NumPy tier (no mixed native/NumPy dispatch).
    """
    if not desc.parallel:
        raise KernelError(f"loop {desc.index} is not DOALL")
    pairs: list[tuple[list[LoopDescriptor], AnalyzedEquation]] = []

    def walk(d, chain: list[LoopDescriptor]) -> None:
        if isinstance(d, NodeDescriptor):
            if not d.node.is_equation:
                raise KernelError("non-equation node in span")
            pairs.append((chain, d.node.equation))
            return
        assert isinstance(d, LoopDescriptor)
        if not d.parallel:
            raise KernelError(
                f"sequential loop {d.index} inside span: per-equation "
                "distribution would reorder its cross-iteration dependences"
            )
        for child in d.body:
            walk(child, [*chain, d])

    walk(desc, [])
    if not pairs:
        raise KernelError(f"DOALL {desc.index}: empty span")

    specs: list[NativeKernelSpec] = []
    for chain, eq in pairs:
        chain_indices = {loop.index for loop in chain}
        low = _NativeLowerer(analyzed, flowchart, use_windows, chain_indices)
        counters: list[str] = []
        for depth, loop in enumerate(chain):
            var = f"v_{c_name(loop.index)}"
            low.index_names.add(loop.index)
            if depth == 0:
                low.stmt(f"for (i64 {var} = nlo; {var} <= nhi; {var}++) {{")
            else:
                lo_c = _bound_c(loop.subrange.lo, low)
                hi_c = _bound_c(loop.subrange.hi, low)
                low.stmt(
                    f"for (i64 {var} = {lo_c}; {var} <= {hi_c}; {var}++) {{"
                )
            low.indent += 1
        _emit_equation_store(low, eq, counters)
        for _ in chain:
            low.indent -= 1
            low.stmt("}")
        _check_windowed_atomics(low, analyzed)
        specs.append(_assemble_spec(low, counters, [], chain_indices, analyzed))
    return specs


def native_emittable(
    desc: LoopDescriptor,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    use_windows: bool,
    variant: str = "full",
) -> bool:
    """Machine-independent static check: does this nest lower to bit-exact
    C? (Whether the machine can *compile* it is :func:`native_supported`.)

    Memoized on the flowchart by (path, window mode, variant): the
    ``auto`` planner asks once per candidate backend, and re-running the
    full emission per candidate would multiply planning cost by the
    candidate count."""
    memo = getattr(flowchart, "_native_emit_memo", None)
    if memo is None:
        memo = {}
        flowchart._native_emit_memo = memo
    key = (flowchart.path_of(desc), bool(use_windows), variant)
    verdict = memo.get(key)
    if verdict is None:
        try:
            emit_native_nest_source(
                desc, analyzed, flowchart, use_windows, variant
            )
            verdict = True
        except KernelError:
            verdict = False
        memo[key] = verdict
    return verdict


def native_span_emittable(
    desc: LoopDescriptor,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    use_windows: bool,
) -> bool:
    """Machine-independent static check for the span shape, memoized like
    :func:`native_emittable` under the reserved variant key ``"span"``."""
    memo = getattr(flowchart, "_native_emit_memo", None)
    if memo is None:
        memo = {}
        flowchart._native_emit_memo = memo
    key = (flowchart.path_of(desc), bool(use_windows), "span")
    verdict = memo.get(key)
    if verdict is None:
        try:
            emit_native_span_sources(desc, analyzed, flowchart, use_windows)
            verdict = True
        except KernelError:
            verdict = False
        memo[key] = verdict
    return verdict


def emittable_nest_sources(
    analyzed: AnalyzedModule, flowchart: Flowchart, use_windows: bool = False
) -> dict[str, str]:
    """Generated C for every natively emittable outermost DOALL nest of a
    module, keyed ``nest-<flowchart path>-<index>-<variant>`` (the path
    disambiguates same-named loop indices) — what ``repro plan --save``
    persists next to the plan text for offline builds."""
    sources: dict[str, str] = {}
    for desc in outermost_parallel_loops(flowchart.descriptors):
        path = flowchart.path_of(desc)
        at = "_".join(str(i) for i in path) if path else "x"
        for variant in NEST_VARIANTS:
            if variant == "seq":
                # For a parallel root "seq" is byte-identical to "full";
                # persisting it would only duplicate sources.
                continue
            try:
                spec = emit_native_nest_source(
                    desc, analyzed, flowchart, use_windows, variant
                )
            except KernelError:
                continue
            sources[f"nest-{at}-{desc.index}-{variant}"] = spec.source
        try:
            span_specs = emit_native_span_sources(
                desc, analyzed, flowchart, use_windows
            )
        except KernelError:
            continue
        for n, spec in enumerate(span_specs):
            sources[f"span-{at}-{desc.index}-{n}"] = spec.source
    return sources


# ---------------------------------------------------------------------------
# Compilation and the Python-callable wrapper
# ---------------------------------------------------------------------------

#: source hash -> (lib, ffi) for shared objects already loaded here
_loaded: dict[str, tuple] = {}

#: serializes compile+dlopen within this process. Pool threads dispatching
#: the first chunks of a run race to compile the same span kernel; without
#: the lock they also duplicated cc invocations for one digest.
_load_lock = threading.Lock()


def _compile_so(source: str, digest: str) -> Path:
    """Compile ``source`` into the on-disk cache (or reuse the cached
    ``.so``); returns the shared-object path.

    Every file lands via ``os.replace`` from a unique temp name — including
    the ``.c``, and the compiler reads the *temp* copy. A concurrent
    compile of the same digest (another thread before the lock existed,
    or another process sharing the cache) must never let cc read a
    half-written source: a truncated ``.c`` can still compile clean and
    produce a ``.so`` without the kernel symbol, which would then be
    dlopened and memoized while a later good compile silently fixes only
    the disk file."""
    out_dir = cache_dir()
    so_path = out_dir / f"{digest}.so"
    if so_path.exists():
        return so_path
    cc = find_compiler()
    if cc is None:
        raise KernelError("no C compiler available")
    fd, tmp_c = tempfile.mkstemp(dir=out_dir, suffix=".tmp.c")
    with os.fdopen(fd, "w") as f:
        f.write(source)
    with tempfile.NamedTemporaryFile(
        dir=out_dir, suffix=".so.tmp", delete=False
    ) as tmp:
        tmp_path = Path(tmp.name)
    try:
        proc = subprocess.run(
            [cc, *C_FLAGS, "-shared", "-o", str(tmp_path), tmp_c, "-lm"],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise KernelError(
                f"C compilation failed ({cc}): {proc.stderr.strip()[:500]}"
            )
        # atomic: concurrent compiles race safely, readers see whole files
        os.replace(tmp_c, out_dir / f"{digest}.c")
        os.replace(tmp_path, so_path)
    finally:
        if os.path.exists(tmp_c):
            os.unlink(tmp_c)
        if tmp_path.exists():
            tmp_path.unlink()
    return so_path


def load_library(source: str, cdef: str) -> tuple:
    """Compile (or reuse from cache) one C translation unit and dlopen it,
    returning ``(lib, ffi)``. Raises :class:`KernelError` when no compiler
    or cffi is available. Shared by the per-nest kernel specs and the
    static scan kernel library (:mod:`repro.runtime.kernels.scan`)."""
    # The flags are part of the artifact's semantics (-ffp-contract=off,
    # -fwrapv): a .so built under different flags must not be reused.
    key = source + "|" + " ".join(C_FLAGS)
    digest = hashlib.sha256(key.encode()).hexdigest()
    entry = _loaded.get(digest)
    if entry is None:
        with _load_lock:
            entry = _loaded.get(digest)
            if entry is None:
                cffi = _ffi_module()
                if cffi is None:
                    raise KernelError("cffi is not available")
                so_path = _compile_so(source, digest)
                ffi = cffi.FFI()
                ffi.cdef(cdef)
                lib = ffi.dlopen(str(so_path))
                entry = (lib, ffi)
                _loaded[digest] = entry
    return entry


def _load(spec: NativeKernelSpec) -> tuple:
    return load_library(spec.source, spec.cdef)


def _wrap_spec(spec: NativeKernelSpec) -> Callable:
    """Compile (or reload from the on-disk cache) one spec and wrap it as
    ``kernel(data, env, nlo, nhi) -> dict[label, count]``. The wrapper pins
    every storage buffer for the duration of the call (cffi's ABI mode
    releases the GIL around the C invocation, so a free-running thread must
    not let the arrays be collected mid-kernel), checks the error channel
    after, and re-raises the evaluator's exact exceptions."""
    lib, ffi = _load(spec)
    fn = getattr(lib, spec.fn_name)
    array_names = [name for name, _kind in spec.arrays]
    ptr_types = [
        C_STORAGE_TYPES[kind] + " *" for _name, kind in spec.arrays
    ]
    geom_size = 3 * sum(spec.ranks)
    scalars = spec.scalars
    env_names = spec.env_names
    counters = spec.counters

    def _kernel(data, env, nlo, nhi):
        cargs = []
        geom = ffi.new("int64_t[]", geom_size)
        pos = 0
        holders = []
        for name, ptr_t in zip(array_names, ptr_types):
            arr = data[name]
            sto = arr.storage
            holders.append(sto)  # keep the buffer alive across the call
            cargs.append(ffi.cast(ptr_t, sto.ctypes.data))
            for d in range(sto.ndim):
                geom[pos] = arr.los[d]
                geom[pos + 1] = arr.his[d]
                geom[pos + 2] = sto.shape[d]
                pos += 3
        cargs.append(geom)
        for name, kind in scalars:
            v = data[name]
            cargs.append(float(v) if kind == "real" else int(v))
        for name in env_names:
            cargs.append(int(env[name]))
        counts = ffi.new("int64_t[]", max(1, len(counters)))
        err = ffi.new("int64_t[]", 4)
        rc = fn(*cargs, int(nlo), int(nhi), counts, err)
        if rc == 2:
            # the evaluator's exact exception for a zero divisor
            raise ZeroDivisionError("integer division or modulo by zero")
        if rc == 3:
            raise ExecutionError(
                f"integer overflow: {err[0]} div/mod -1 does not fit int64"
            )
        if rc != 0:
            name = array_names[err[2]]
            arr = data[name]
            d = err[1]
            raise ExecutionError(
                f"index {err[0]} out of range [{arr.los[d]}, {arr.his[d]}] "
                f"in dimension {d} of {name!r}"
            )
        return {label: counts[i] for i, label in enumerate(counters)}

    _kernel.__kernel_source__ = spec.source
    _kernel.__native__ = True
    return _kernel


def compile_native_nest(
    desc: LoopDescriptor,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    use_windows: bool,
    variant: str = "full",
) -> Callable:
    """Emit, compile (or reload from the on-disk cache), and wrap the
    native kernel for ``desc``. The wrapper has the exact signature of the
    fused Python nest kernels — ``kernel(data, env, lo, hi) -> dict`` —
    and raises the evaluator's out-of-range :class:`ExecutionError` when
    the C code reports one.
    """
    spec = emit_native_nest_source(
        desc, analyzed, flowchart, use_windows, variant
    )
    return _wrap_spec(spec)


def compile_native_span(
    desc: LoopDescriptor,
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    use_windows: bool,
) -> Callable:
    """Emit, compile, and wrap the per-equation span kernels for ``desc``
    as one composite callable with the shared kernel signature
    (``kernel(data, env, nlo, nhi) -> dict[label, count]``). Kernels run
    in emission order — the same per-equation distribution order as
    ``exec_vector_span`` — and their counters are merged."""
    specs = emit_native_span_sources(desc, analyzed, flowchart, use_windows)
    kernels = [_wrap_spec(spec) for spec in specs]

    def _span_kernel(data, env, nlo, nhi):
        counts: dict[str, int] = {}
        for kern in kernels:
            for label, n in kern(data, env, nlo, nhi).items():
                counts[label] = counts.get(label, 0) + n
        return counts

    _span_kernel.__kernel_source__ = "\n".join(spec.source for spec in specs)
    _span_kernel.__native__ = True
    return _span_kernel
