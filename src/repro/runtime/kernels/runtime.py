"""Runtime support library injected into compiled kernel namespaces.

Every helper here replicates one runtime-dispatch branch of the reference
:class:`~repro.runtime.evaluator.Evaluator` — compiled kernels must agree
with the evaluator *bit for bit* on every workload, so the helpers either
call the very same NumPy entry points the evaluator calls, or (for the
affine fast paths) select the very same storage elements through basic
slices instead of clipped fancy indexing.

The affine fast path is the heart of the speedup: a subscript of the form
``index_var + constant`` over a contiguous DOALL subrange selects a
*contiguous* run of planes, so the clipped gather the evaluator performs
(`np.clip` + fancy indexing, one C-loop per element) collapses into a basic
slice view plus, at the grid boundary, an edge-replication concatenate.
The selected values are identical; ``np.where`` discards the clipped lanes
either way.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.evaluator import _BUILTIN_FUNCS
from repro.runtime.values import RuntimeArray

__all__ = [
    "BUILTIN_FUNCS",
    "affine_gather",
    "affine_scatter",
    "check_index",
    "kdiv",
    "kfloordiv",
    "kmod",
    "knot",
    "make_module_call",
    "store_scalar",
]

#: the evaluator's builtin-function table, reused verbatim for parity
BUILTIN_FUNCS = _BUILTIN_FUNCS


def _is_vec(v) -> bool:
    return isinstance(v, np.ndarray) and v.ndim > 0


def kdiv(left, right):
    """PS ``/`` with the evaluator's exact semantics (vector: ``np.divide``;
    scalar: signed infinity on division by zero)."""
    if _is_vec(left) or _is_vec(right):
        return np.divide(left, right)
    if right != 0:
        return left / right
    return float("inf") * (1 if left >= 0 else -1)


def kfloordiv(left, right):
    if not _is_vec(left) and not _is_vec(right):
        return left // right
    return np.floor_divide(left, right)


def kmod(left, right):
    if not _is_vec(left) and not _is_vec(right):
        return left % right
    return np.mod(left, right)


def knot(v):
    return np.logical_not(v) if _is_vec(v) else not v


def make_module_call(call_box):
    """The ``_mc`` helper bound into kernel namespaces: dispatch a module
    call through the cache's one-slot *call box*. The box is rebound per
    execution (see ``KernelCache.bind_call_fn``) so one compiled kernel
    serves every run — and forked pool workers inherit the binding. Args
    arrive already evaluated; ``RuntimeArray`` conversion mirrors the
    evaluator's ``_eval_Call`` (kernelizable call args are scalar
    expressions, so the convert step is a no-op kept for parity)."""
    box = call_box if call_box is not None else [None]

    def _mc(name, args):
        fn = box[0]
        if fn is None:
            raise ExecutionError(f"no module-call handler for {name!r}")
        converted = [
            a.to_numpy() if isinstance(a, RuntimeArray) else a for a in args
        ]
        return fn(name, converted)

    return _mc


def store_scalar(data, name, value):
    """Assign a non-array target, mirroring the backend's scalar store."""
    data[name] = value.item() if isinstance(value, np.ndarray) else value


def check_index(i, lo, hi, d, name):
    """Range-check a scalar subscript and map it to storage-relative form —
    the scalar kernels' equivalent of ``RuntimeArray._check_range`` +
    ``_map_index`` (window modulo is applied by the caller). Keeps the
    reference backend's out-of-range errors instead of letting Python's
    negative indexing silently wrap."""
    if i < lo or i > hi:
        raise ExecutionError(
            f"index {i} out of range [{lo}, {hi}] in dimension {d} of {name!r}"
        )
    return i - lo


def _clip_axis(block: np.ndarray, axis: int, start: int, n: int, lo: int, hi: int):
    """``block`` sliced along ``axis`` as if by the clipped index sequence
    ``clip(start + k, lo, hi) for k in range(n)`` (storage-relative to
    ``lo``). In range: a pure view. Out of range: edge planes replicated via
    one concatenate — the same values the evaluator's gather selects."""
    a = lo - start
    a = 0 if a < 0 else (n if a > n else a)
    b = start + n - 1 - hi
    b = 0 if b < 0 else (n - a if b > n - a else b)
    m = n - a - b
    head = (slice(None),) * axis
    if a == 0 and b == 0:
        return block[head + (slice(start - lo, start - lo + n),)]
    parts = []
    extent = hi - lo + 1
    if a:
        shape = block.shape[:axis] + (a,) + block.shape[axis + 1 :]
        parts.append(np.broadcast_to(block[head + (slice(0, 1),)], shape))
    if m:
        parts.append(block[head + (slice(start + a - lo, start + a - lo + m),)])
    if b:
        shape = block.shape[:axis] + (b,) + block.shape[axis + 1 :]
        parts.append(
            np.broadcast_to(block[head + (slice(extent - 1, extent),)], shape)
        )
    return np.concatenate(parts, axis=axis) if len(parts) > 1 else parts[0]


def affine_gather(arr: RuntimeArray, specs):
    """Read ``arr`` at affine subscripts, clipping like the vector evaluator.

    ``specs`` holds one ``(base, offset)`` pair per dimension: ``base`` is the
    runtime value of the subscript's index variable (a contiguous arange with
    trailing broadcast axes when the loop is vectorised, a scalar otherwise —
    or the whole subscript's value when it has no index variable), ``offset``
    the compile-time-known additive rest. Returns exactly the values of
    ``arr.get([base + offset, ...], clip=True)``, reshaped to the same
    broadcast axes, but via basic slices wherever the subrange is contiguous.
    """
    sto = arr.storage
    los, his, wins = arr.los, arr.his, arr.windows
    core: list = []
    vecs: list = []  # (start, n, depth, dim)
    for d, (base, off) in enumerate(specs):
        lo, hi = los[d], his[d]
        if isinstance(base, np.ndarray) and base.ndim > 0:
            if wins.get(d) is not None:
                raise ExecutionError(
                    f"kernel fast path on windowed dimension {d} of {arr.name!r}"
                )
            vecs.append((int(base.flat[0]) + int(off), int(base.size), base.ndim - 1, d))
            core.append(slice(None))
        else:
            i = int(base) + int(off)
            i = lo if i < lo else (hi if i > hi else i)
            r = i - lo
            w = wins.get(d)
            if w is not None:
                r %= w
            core.append(r)
    block = sto[tuple(core)]
    if not vecs:
        return block
    for axis, (start, n, _depth, d) in enumerate(vecs):
        block = _clip_axis(block, axis, start, n, los[d], his[d])
    nd = max(v[2] for v in vecs) + 1
    order = sorted(range(len(vecs)), key=lambda j: -vecs[j][2])
    if order != list(range(len(vecs))):
        block = block.transpose(order)
    shape = [1] * nd
    for _start, n, depth, _d in vecs:
        shape[nd - 1 - depth] = n
    if list(block.shape) != shape:
        block = block.reshape(shape)
    return block


def affine_scatter(arr: RuntimeArray, specs, value):
    """Write ``value`` to ``arr`` at affine subscripts with the evaluator's
    ``set`` semantics: range-checked, window-mapped, no clipping."""
    sto = arr.storage
    los, his, wins = arr.los, arr.his, arr.windows
    idx: list = []
    vecs: list = []  # (n, depth)
    for d, (base, off) in enumerate(specs):
        lo, hi = los[d], his[d]
        if isinstance(base, np.ndarray) and base.ndim > 0:
            start = int(base.flat[0]) + int(off)
            n = int(base.size)
            if start < lo or start + n - 1 > hi:
                raise ExecutionError(
                    f"index range [{start}, {start + n - 1}] out of range "
                    f"[{lo}, {hi}] in dimension {d} of {arr.name!r}"
                )
            if wins.get(d) is not None:
                raise ExecutionError(
                    f"kernel fast path on windowed dimension {d} of {arr.name!r}"
                )
            idx.append(slice(start - lo, start - lo + n))
            vecs.append((n, base.ndim - 1))
        else:
            i = int(base) + int(off)
            if i < lo or i > hi:
                raise ExecutionError(
                    f"index {i} out of range [{lo}, {hi}] in dimension {d} of "
                    f"{arr.name!r}"
                )
            r = i - lo
            w = wins.get(d)
            if w is not None:
                r %= w
            idx.append(r)
    if vecs and isinstance(value, np.ndarray) and value.ndim > 0:
        nd = max(dep for _, dep in vecs) + 1
        bshape = [1] * nd
        for n, dep in vecs:
            bshape[nd - 1 - dep] = n
        v = np.broadcast_to(value, bshape)
        axes = [nd - 1 - dep for _, dep in vecs]
        rest = [a for a in range(nd) if a not in axes]
        v = v.transpose(axes + rest).reshape([n for n, _ in vecs])
        sto[tuple(idx)] = v
    else:
        sto[tuple(idx)] = value
