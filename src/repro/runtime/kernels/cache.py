"""The per-compilation kernel cache.

One :class:`KernelCache` lives for as long as its ``(analyzed, flowchart)``
pair — :class:`repro.core.pipeline.CompileResult` keeps one across ``run()``
calls, and ``execute_module`` creates a transient one otherwise. Kernels are
compiled on first use and keyed by equation label, variant, and the window
mode (window allocation changes the subscript mapping the kernel bakes in).
A ``None`` entry records a non-kernelizable equation so the backends ask
exactly once and fall back to the evaluator thereafter.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.ps.semantics import AnalyzedEquation, AnalyzedModule
from repro.runtime.kernels.emit import (
    KernelError,
    compile_kernel,
    compile_nest_kernel,
    kernelizable,
    nest_fusable,
)
from repro.schedule.flowchart import Flowchart, LoopDescriptor


class KernelCache:
    def __init__(self, analyzed: AnalyzedModule, flowchart: Flowchart):
        self.analyzed = analyzed
        self.flowchart = flowchart
        self._compiled: dict[tuple[str, bool, bool], Callable | None] = {}
        #: fused nest kernels keyed by (descriptor path, window mode)
        self._nests: dict[tuple[tuple[int, ...], bool], Callable | None] = {}

    def kernel_for(
        self, eq: AnalyzedEquation, vector: bool, use_windows: bool
    ) -> Callable | None:
        """The compiled kernel for ``eq``, or None when it must stay on the
        evaluator. Compiles (and memoizes) on first request."""
        key = (eq.label, bool(vector), bool(use_windows))
        try:
            return self._compiled[key]
        except KeyError:
            pass
        fn: Callable | None = None
        if kernelizable(eq, self.analyzed):
            try:
                fn = compile_kernel(
                    eq, self.analyzed, self.flowchart, vector, use_windows
                )
            except KernelError:
                fn = None
        self._compiled[key] = fn
        return fn

    def nest_kernel_for(
        self, desc: LoopDescriptor, use_windows: bool
    ) -> Callable | None:
        """The fused kernel for a whole DOALL nest, or None when the nest
        cannot be fused (the caller then walks it descriptor by descriptor).
        Keyed by the descriptor's path in this cache's flowchart."""
        path = self.flowchart.path_of(desc)
        if path is None:
            return None
        key = (path, bool(use_windows))
        try:
            return self._nests[key]
        except KeyError:
            pass
        fn: Callable | None = None
        if nest_fusable(desc, self.analyzed, self.flowchart, use_windows):
            try:
                fn = compile_nest_kernel(
                    desc, self.analyzed, self.flowchart, use_windows
                )
            except KernelError:
                fn = None
        self._nests[key] = fn
        return fn

    def warm(self, use_windows: bool) -> None:
        """Compile every equation's kernels (and every *reachable* nest
        kernel) up front — the process backend calls this before forking so
        workers inherit the full cache and never compile anything
        themselves. Only outermost parallel loops met on the scalar walk
        can execute as fused nests (inner loops of a span or nest never
        dispatch their own kernel), so only those are compiled."""
        for eq in self.analyzed.equations:
            for vector in (False, True):
                self.kernel_for(eq, vector, use_windows)

        def outermost_parallel(descs):
            for d in descs:
                if not isinstance(d, LoopDescriptor):
                    continue
                if d.parallel:
                    yield d
                else:
                    yield from outermost_parallel(d.body)

        for desc in outermost_parallel(self.flowchart.descriptors):
            self.nest_kernel_for(desc, use_windows)

    def stats(self) -> dict[str, int]:
        compiled = sum(1 for v in self._compiled.values() if v is not None)
        nests = sum(1 for v in self._nests.values() if v is not None)
        return {
            "entries": len(self._compiled) + len(self._nests),
            "compiled": compiled + nests,
            "nests": nests,
        }
