"""The per-compilation kernel cache.

One :class:`KernelCache` lives for as long as its ``(analyzed, flowchart)``
pair — :class:`repro.core.pipeline.CompileResult` keeps one across ``run()``
calls, and ``execute_module`` creates a transient one otherwise. Kernels are
compiled on first use and keyed by equation label, variant, and the window
mode (window allocation changes the subscript mapping the kernel bakes in);
nest kernels are keyed by descriptor path plus the nest variant (``"full"``
runs a root subrange, ``"flat"`` a collapse-chunked flat range, ``"seq"``
an in-order block of a sequential root for pipeline stages). A ``None``
entry records a non-kernelizable equation so the backends ask exactly once
and fall back to the evaluator thereafter.

Nest kernels come in **tiers**: :meth:`nest_kernel_for` serves the
cffi-compiled *native* kernel when the requested tier is ``"native"`` and
the nest lowers to bit-exact C on a machine with a C compiler (see
:mod:`repro.runtime.kernels.native`), the exec-compiled NumPy kernel
otherwise, and ``None`` (the evaluator walk) when neither applies — the
lookup order native -> NumPy -> evaluator. Native kernels are memoized
under the same path+window-mode+variant key, so the process backend's
pre-fork :meth:`warm` loads every shared object once and forked workers
inherit the dlopened libraries.

The cache also owns the *call box*: a one-slot list every compiled kernel
reads module-call handlers through. :meth:`bind_call_fn` points it at the
executing state's ``call_fn`` once per run — that is what lets kernels
containing index-independent module calls stay compiled (and forked pool
workers inherit the binding with the cache).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.ps.semantics import AnalyzedEquation, AnalyzedModule
from repro.runtime.kernels import native as native_mod
from repro.runtime.kernels.emit import (
    NEST_VARIANTS,
    KernelError,
    compile_kernel,
    compile_nest_kernel,
    kernelizable,
    nest_fusable,
)
from repro.schedule.flowchart import (
    Flowchart,
    LoopDescriptor,
    loop_chunk_safe,
    loop_collapse_safe,
)

#: kernel tiers ``ExecutionOptions.kernel_tier`` may select
KERNEL_TIERS = ("native", "numpy", "evaluator")


class KernelCache:
    def __init__(self, analyzed: AnalyzedModule, flowchart: Flowchart):
        self.analyzed = analyzed
        self.flowchart = flowchart
        self._compiled: dict[tuple[str, bool, bool], Callable | None] = {}
        #: fused nest kernels keyed by (descriptor path, window mode, variant)
        self._nests: dict[tuple[tuple[int, ...], bool, str], Callable | None] = {}
        #: cffi-compiled native nest kernels, same key shape
        self._native: dict[tuple[tuple[int, ...], bool, str], Callable | None] = {}
        #: one-slot module-call dispatch box shared by every compiled kernel
        self._call_box: list = [None]

    def bind_call_fn(self, call_fn) -> None:
        """Point every compiled kernel's module-call dispatch at this
        execution's ``call_fn``. Rebound at each run start; kernels read
        the box at call time, so already-compiled kernels follow."""
        self._call_box[0] = call_fn

    def kernel_for(
        self, eq: AnalyzedEquation, vector: bool, use_windows: bool
    ) -> Callable | None:
        """The compiled kernel for ``eq``, or None when it must stay on the
        evaluator. Compiles (and memoizes) on first request."""
        key = (eq.label, bool(vector), bool(use_windows))
        try:
            return self._compiled[key]
        except KeyError:
            pass
        fn: Callable | None = None
        if kernelizable(eq, self.analyzed):
            try:
                fn = compile_kernel(
                    eq, self.analyzed, self.flowchart, vector, use_windows,
                    call_box=self._call_box,
                )
            except KernelError:
                fn = None
        self._compiled[key] = fn
        return fn

    def nest_kernel_for(
        self,
        desc: LoopDescriptor,
        use_windows: bool,
        variant: str = "full",
        tier: str = "native",
    ) -> Callable | None:
        """The fused kernel for a whole DOALL nest, or None when the nest
        cannot be fused (the caller then walks it descriptor by descriptor).
        Keyed by the descriptor's path in this cache's flowchart plus the
        nest variant (``"flat"`` for collapse-chunked execution).

        ``tier="native"`` (the default lookup order) serves the
        cffi-compiled C kernel when one compiles on this machine, degrading
        to the NumPy kernel otherwise; ``tier="numpy"`` skips the native
        tier outright."""
        if variant not in NEST_VARIANTS:
            raise KernelError(f"unknown nest-kernel variant {variant!r}")
        path = self.flowchart.path_of(desc)
        if path is None:
            return None
        if tier == "native":
            fn = self.native_nest_kernel_for(desc, use_windows, variant, path)
            if fn is not None:
                return fn
        key = (path, bool(use_windows), variant)
        try:
            return self._nests[key]
        except KeyError:
            pass
        fn: Callable | None = None
        if nest_fusable(desc, self.analyzed, self.flowchart, use_windows, variant):
            try:
                fn = compile_nest_kernel(
                    desc, self.analyzed, self.flowchart, use_windows,
                    variant=variant, call_box=self._call_box,
                )
            except KernelError:
                fn = None
        self._nests[key] = fn
        return fn

    def native_nest_kernel_for(
        self,
        desc: LoopDescriptor,
        use_windows: bool,
        variant: str = "full",
        path: tuple[int, ...] | None = None,
    ) -> Callable | None:
        """The native (C) kernel for a nest, or None when the nest is not
        natively emittable or this machine has no C compiler — the caller
        then falls through to the NumPy tier. A ``None`` entry is memoized
        so the compile (or its failure) happens exactly once."""
        if path is None:
            path = self.flowchart.path_of(desc)
            if path is None:
                return None
        key = (path, bool(use_windows), variant)
        try:
            return self._native[key]
        except KeyError:
            pass
        fn: Callable | None = None
        if native_mod.native_supported():
            try:
                fn = native_mod.compile_native_nest(
                    desc, self.analyzed, self.flowchart, use_windows,
                    variant=variant,
                )
            except KernelError:
                fn = None
            except Exception:
                # A toolchain failure (compiler crash, dlopen error) must
                # degrade to the NumPy tier, never take the run down.
                fn = None
        self._native[key] = fn
        return fn

    def warm(self, use_windows: bool, tier: str = "native") -> None:
        """Compile every equation's kernels and every *reachable* nest and
        span kernel up front — the process backend calls this before forking
        so workers inherit the full cache (including dlopened native
        libraries) and never compile anything themselves, and
        ``Session.warm`` calls it so first-request latency never pays an
        in-flight cc compile.

        Every parallel loop is a potential kernel root, not just the
        outermost ones: when an enclosing loop plans ``serial``/``iterate``
        the scalar walk meets the *inner* parallel loops directly, and
        chunk dispatch runs span kernels per subrange. So each parallel
        loop warms its fused nest kernel, the flat variant when its chain
        is collapse-safe, and the native span kernels when it is
        chunk-safe. Sequential loops that head a pipeline sequential stage
        additionally warm the ``"seq"`` nest variant those stages advance
        through."""
        for eq in self.analyzed.equations:
            for vector in (False, True):
                self.kernel_for(eq, vector, use_windows)

        for desc in self.flowchart.loops():
            if not desc.parallel:
                continue
            self.nest_kernel_for(desc, use_windows, tier=tier)
            if loop_collapse_safe(
                desc, self.analyzed, self.flowchart.windows, use_windows
            ):
                self.nest_kernel_for(desc, use_windows, variant="flat", tier=tier)
            if tier == "native" and loop_chunk_safe(
                desc, self.analyzed, self.flowchart.windows, use_windows
            ):
                self.span_kernel_for(desc, use_windows)

        # Fission replicas live outside the main tree (marker paths), so
        # the loops() walk above never meets them; a promoted piece is a
        # DOALL kernel root in its own right. Lazy import: fission sits
        # above the kernel layer.
        from repro.schedule.fission import fission_splits

        for split in fission_splits(self.analyzed, self.flowchart).values():
            if not split.usable(use_windows):
                continue
            for piece in split.pieces:
                if not piece.parallel:
                    continue
                self.nest_kernel_for(piece, use_windows, tier=tier)
                if loop_collapse_safe(
                    piece, self.analyzed, self.flowchart.windows, use_windows
                ):
                    self.nest_kernel_for(
                        piece, use_windows, variant="flat", tier=tier
                    )
                if tier == "native" and loop_chunk_safe(
                    piece, self.analyzed, self.flowchart.windows, use_windows
                ):
                    self.span_kernel_for(piece, use_windows)

        # Lazy import: pipeline_stages sits above the kernel layer.
        from repro.schedule.pipeline_stages import pipeline_groups

        for groups in pipeline_groups(
            self.analyzed, self.flowchart, use_windows
        ).values():
            for group in groups:
                for stage in group.stages:
                    if stage.kind != "sequential":
                        continue
                    for m in stage.members:
                        self.nest_kernel_for(
                            group.loops[m], use_windows, variant="seq", tier=tier
                        )

        # Recognized recurrences warm their three-phase scan bundle (one
        # static C library covers every op x dtype, so the first loop pays
        # the compile and the rest just dlopen-share it).
        from repro.schedule.scan_detect import scan_loops

        for spath in scan_loops(self.analyzed, self.flowchart, use_windows):
            sdesc = self.flowchart.descriptor_at(spath)
            if isinstance(sdesc, LoopDescriptor):
                self.scan_kernel_for(sdesc, use_windows, tier=tier)

    def span_kernel_for(
        self,
        desc: LoopDescriptor,
        use_windows: bool,
        path: tuple[int, ...] | None = None,
    ) -> Callable | None:
        """The composite native span kernel (one C function per equation
        over a root subrange) for a chunk-dispatched DOALL, or None when the
        span is not natively emittable or this machine has no C compiler —
        chunk dispatch then falls back to the NumPy ``exec_vector_span``
        path. Memoized under the reserved variant key ``"span"``."""
        if path is None:
            path = self.flowchart.path_of(desc)
            if path is None:
                return None
        key = (path, bool(use_windows), "span")
        try:
            return self._native[key]
        except KeyError:
            pass
        fn: Callable | None = None
        if native_mod.native_supported():
            try:
                fn = native_mod.compile_native_span(
                    desc, self.analyzed, self.flowchart, use_windows
                )
            except KernelError:
                fn = None
            except Exception:
                # Same degradation contract as the nest tier: a toolchain
                # failure serves the NumPy path, never takes the run down.
                fn = None
        self._native[key] = fn
        return fn

    def scan_kernel_for(
        self,
        desc: LoopDescriptor,
        use_windows: bool,
        tier: str = "native",
    ):
        """The three-phase scan kernel bundle for a recognized recurrence
        ``DO`` loop (see :mod:`repro.runtime.kernels.scan`), or ``None``
        when the loop is unrecognized — the backend then walks it in
        order. ``tier="native"`` serves the compiled bundle when the
        static scan library loads on this machine, degrading to the NumPy
        bundle otherwise; memoized under the reserved variant keys
        ``"scan-native"`` / ``"scan-numpy"``."""
        from repro.runtime.kernels import scan as scan_mod
        from repro.schedule.scan_detect import scan_info

        info = scan_info(self.analyzed, self.flowchart, desc, use_windows)
        if info is None:
            return None
        path = self.flowchart.path_of(desc)
        if path is None:
            return None
        if tier == "native":
            key = (path, bool(use_windows), "scan-native")
            try:
                bundle = self._native[key]
            except KeyError:
                bundle = None
                if native_mod.native_supported():
                    try:
                        bundle = scan_mod.native_kernels(info)
                    except KernelError:
                        bundle = None
                    except Exception:
                        # Same degradation contract as the nest tier.
                        bundle = None
                self._native[key] = bundle
            if bundle is not None:
                return bundle
        key = (path, bool(use_windows), "scan-numpy")
        try:
            return self._nests[key]
        except KeyError:
            pass
        bundle = scan_mod.numpy_kernels(info)
        self._nests[key] = bundle
        return bundle

    def stats(self) -> dict[str, int]:
        compiled = sum(1 for v in self._compiled.values() if v is not None)
        nests = sum(1 for v in self._nests.values() if v is not None)
        natives = sum(1 for v in self._native.values() if v is not None)
        return {
            "entries": len(self._compiled) + len(self._nests) + len(self._native),
            "compiled": compiled + nests + natives,
            "nests": nests,
            "native": natives,
        }
