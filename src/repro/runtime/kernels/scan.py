"""Three-phase blocked scan kernels (NumPy and native C tiers).

The ``scan`` strategy executes a recognized recurrence (see
:mod:`repro.schedule.scan_detect`) Blelloch-style over ``p`` contiguous
blocks:

1. **block sweep** (parallel): each block runs the recurrence locally
   from the operator's neutral starting point — for associative scans an
   in-block inclusive scan of ``b``; for linear recurrences the
   seed-free local solution plus the running coefficient product ``ap``;
2. **carry scan** (serial, ``p`` steps): an exclusive scan of the block
   summaries yields each block's true incoming value — associative
   combine for scans, ``(a, b)`` monoid composition for recurrences;
3. **fix-up sweep** (parallel): each block folds its incoming carry into
   every element (``OP(carry, t_i)``; ``t_i + ap_i * carry``).

Int ``+``/``*`` are bit-exact (two's-complement wraparound distributes,
and the C tier compiles with ``-fwrapv`` to match NumPy), min/max are
exactly associative, and the float variants reassociate rounding — the
planner only emits them under ``allow_reassoc``. Both tiers implement
identical arithmetic; phase 2 always runs the NumPy scalar path (it is
``p`` operations).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.codegen.clower import C_PRELUDE
from repro.schedule.scan_detect import ScanInfo

_OP_UFUNC = {
    "+": np.add, "*": np.multiply, "min": np.minimum, "max": np.maximum,
}
_OP_CNAME = {"+": "add", "*": "mul", "min": "min", "max": "max"}


def scan_dtype(info: ScanInfo) -> np.dtype:
    """The storage dtype of the recurrence target."""
    return np.dtype(np.float64 if info.is_float else np.int64)


# ---------------------------------------------------------------------------
# NumPy tier
# ---------------------------------------------------------------------------


class _NumpyScanKernels:
    """Reference tier: ufunc accumulates for scans, a NumPy-scalar loop
    for linear-recurrence blocks (correctness path — the native tier is
    the performance path)."""

    native = False

    def __init__(self, info: ScanInfo, dtype: np.dtype):
        self.info = info
        self.dtype = dtype
        self._ufunc = _OP_UFUNC[info.op] if info.kind == "scan" else None

    def block(self, t, b, a=None, ap=None) -> None:
        if self.info.kind == "scan":
            self._ufunc.accumulate(b, out=t)
            return
        with np.errstate(over="ignore"):
            acc = self.dtype.type(0)
            accp = self.dtype.type(1)
            for i in range(t.shape[0]):
                acc = a[i] * acc + b[i]
                t[i] = acc
                accp = accp * a[i]
                ap[i] = accp

    def combine(self, incoming, t_block, ap_block=None):
        if self.info.kind == "scan":
            return self._ufunc(incoming, t_block[-1])
        with np.errstate(over="ignore"):
            return t_block[-1] + ap_block[-1] * incoming

    def fix(self, t, incoming, ap=None) -> None:
        if self.info.kind == "scan":
            self._ufunc(incoming, t, out=t)
            return
        with np.errstate(over="ignore"):
            np.add(t, ap * incoming, out=t)


# ---------------------------------------------------------------------------
# Native tier: one static translation unit covering every op x dtype
# ---------------------------------------------------------------------------


def _combine_c(op: str, suffix: str) -> str:
    if op == "+":
        return "({a} + {b})"
    if op == "*":
        return "({a} * {b})"
    fn = ("ps_min" if op == "min" else "ps_max") + (
        "_i" if suffix == "i64" else ""
    )
    return fn + "({a}, {b})"


def _build_c() -> tuple[str, str]:
    src = [C_PRELUDE]
    cdef = []
    for op, cname in _OP_CNAME.items():
        for suffix, ctype in (("i64", "int64_t"), ("f64", "double")):
            comb = _combine_c(op, suffix)
            block = f"scan_block_{cname}_{suffix}"
            fix = f"scan_fix_{cname}_{suffix}"
            src.append(f"""
void {block}({ctype} *t, const {ctype} *b, i64 n) {{
    {ctype} acc = b[0];
    t[0] = acc;
    for (i64 i = 1; i < n; ++i) {{
        acc = {comb.format(a="acc", b="b[i]")};
        t[i] = acc;
    }}
}}
void {fix}({ctype} *t, i64 n, {ctype} c) {{
    for (i64 i = 0; i < n; ++i)
        t[i] = {comb.format(a="c", b="t[i]")};
}}
""")
            cdef.append(f"void {block}({ctype} *t, {ctype} *b, int64_t n);")
            cdef.append(f"void {fix}({ctype} *t, int64_t n, {ctype} c);")
    for suffix, ctype, zero, one in (
        ("i64", "int64_t", "0", "1"), ("f64", "double", "0.0", "1.0"),
    ):
        block = f"linrec_block_{suffix}"
        fix = f"linrec_fix_{suffix}"
        src.append(f"""
void {block}({ctype} *t, {ctype} *ap, const {ctype} *a, const {ctype} *b,
             i64 n) {{
    {ctype} acc = {zero};
    {ctype} accp = {one};
    for (i64 i = 0; i < n; ++i) {{
        acc = a[i] * acc + b[i];
        t[i] = acc;
        accp = accp * a[i];
        ap[i] = accp;
    }}
}}
void {fix}({ctype} *t, const {ctype} *ap, i64 n, {ctype} c) {{
    for (i64 i = 0; i < n; ++i)
        t[i] = t[i] + ap[i] * c;
}}
""")
        cdef.append(
            f"void {block}({ctype} *t, {ctype} *ap, {ctype} *a, "
            f"{ctype} *b, int64_t n);"
        )
        cdef.append(
            f"void {fix}({ctype} *t, {ctype} *ap, int64_t n, {ctype} c);"
        )
    return "".join(src), "\n".join(cdef)


SCAN_C_SOURCE, SCAN_C_CDEF = _build_c()

#: False = not attempted yet; None = unavailable; else (lib, ffi)
_native_lib: tuple | None | bool = False
_native_lock = threading.Lock()


def _library() -> tuple | None:
    global _native_lib
    if _native_lib is False:
        with _native_lock:
            if _native_lib is False:
                from repro.runtime.kernels import native

                lib: tuple | None
                try:
                    if native.native_supported():
                        lib = native.load_library(SCAN_C_SOURCE, SCAN_C_CDEF)
                    else:
                        lib = None
                except Exception:
                    lib = None
                _native_lib = lib
    return _native_lib


class _NativeScanKernels:
    """Compiled tier: the block and fix-up sweeps run in C with the GIL
    released (cffi ABI mode), phase 2 stays on the NumPy scalar path."""

    native = True

    def __init__(self, info: ScanInfo, dtype: np.dtype, lib, ffi):
        self.info = info
        self.dtype = dtype
        self._ffi = ffi
        suffix = "f64" if info.is_float else "i64"
        self._ptr = "double *" if info.is_float else "int64_t *"
        self._scalar = float if info.is_float else int
        if info.kind == "scan":
            cname = _OP_CNAME[info.op]
            self._block = getattr(lib, f"scan_block_{cname}_{suffix}")
            self._fix = getattr(lib, f"scan_fix_{cname}_{suffix}")
        else:
            self._block = getattr(lib, f"linrec_block_{suffix}")
            self._fix = getattr(lib, f"linrec_fix_{suffix}")
        self._np = _NumpyScanKernels(info, dtype)

    def _cast(self, arr):
        return self._ffi.cast(self._ptr, arr.ctypes.data)

    def block(self, t, b, a=None, ap=None) -> None:
        if self.info.kind == "scan":
            self._block(self._cast(t), self._cast(b), t.shape[0])
        else:
            self._block(
                self._cast(t), self._cast(ap), self._cast(a), self._cast(b),
                t.shape[0],
            )

    def combine(self, incoming, t_block, ap_block=None):
        return self._np.combine(incoming, t_block, ap_block)

    def fix(self, t, incoming, ap=None) -> None:
        c = self._scalar(incoming)
        if self.info.kind == "scan":
            self._fix(self._cast(t), t.shape[0], c)
        else:
            self._fix(self._cast(t), self._cast(ap), t.shape[0], c)


def numpy_kernels(info: ScanInfo):
    """The NumPy-tier kernel bundle (always available)."""
    return _NumpyScanKernels(info, scan_dtype(info))


def native_kernels(info: ScanInfo):
    """The compiled-tier bundle, or ``None`` without a compiler/cffi."""
    lib = _library()
    if lib is None:
        return None
    return _NativeScanKernels(info, scan_dtype(info), *lib)
