"""Compiled wavefront kernels: cached exec-compiled per-equation functions.

The runtime's fast path. Instead of re-walking an equation's expression tree
per wavefront (and per element on the scalar path), each equation is lowered
once into a specialized Python function — a scalar variant with the lazy
reference semantics and a vectorized variant emitting NumPy ops with
``np.where`` clipping — compiled with ``compile()``/``exec`` and cached per
compilation. All execution backends dispatch DOALL work through the cache;
equations the emitter cannot specialize stay on the reference evaluator.

Disable with ``ExecutionOptions(use_kernels=False)`` or the CLI's
``--no-kernels`` to run everything on the tree-walking evaluator.
"""

from repro.runtime.kernels.cache import KernelCache
from repro.runtime.kernels.emit import (
    KernelError,
    compile_kernel,
    compile_nest_kernel,
    emit_kernel_source,
    emit_nest_kernel_source,
    kernelizable,
    nest_fusable,
)

__all__ = [
    "KernelCache",
    "KernelError",
    "compile_kernel",
    "compile_nest_kernel",
    "emit_kernel_source",
    "emit_nest_kernel_source",
    "kernelizable",
    "nest_fusable",
]
