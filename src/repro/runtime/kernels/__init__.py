"""Compiled wavefront kernels: cached compiled functions in three tiers.

The runtime's fast path. Instead of re-walking an equation's expression tree
per wavefront (and per element on the scalar path), each equation is lowered
once into a specialized Python function — a scalar variant with the lazy
reference semantics and a vectorized variant emitting NumPy ops with
``np.where`` clipping — compiled with ``compile()``/``exec`` and cached per
compilation. Fusable DOALL *nests* additionally lower to C, compiled once
with the system compiler and loaded via cffi (the *native* tier, see
:mod:`repro.runtime.kernels.native`). All execution backends dispatch DOALL
work through the cache with lookup order native -> NumPy -> evaluator;
equations the emitters cannot specialize stay on the reference evaluator.

Select a tier with ``ExecutionOptions(kernel_tier=...)`` / the CLI's
``--kernel-tier {native,numpy,evaluator}``; ``--no-kernels`` remains the
evaluator-only escape hatch.
"""

from repro.runtime.kernels.cache import KERNEL_TIERS, KernelCache
from repro.runtime.kernels.emit import (
    KernelError,
    compile_kernel,
    compile_nest_kernel,
    emit_kernel_source,
    emit_nest_kernel_source,
    kernelizable,
    nest_fusable,
)
from repro.runtime.kernels.native import (
    compile_native_nest,
    compile_native_span,
    emit_native_nest_source,
    emit_native_span_sources,
    native_emittable,
    native_span_emittable,
    native_supported,
)

__all__ = [
    "KERNEL_TIERS",
    "KernelCache",
    "KernelError",
    "compile_kernel",
    "compile_native_nest",
    "compile_native_span",
    "compile_nest_kernel",
    "emit_kernel_source",
    "emit_native_nest_source",
    "emit_native_span_sources",
    "emit_nest_kernel_source",
    "kernelizable",
    "native_emittable",
    "native_span_emittable",
    "native_supported",
    "nest_fusable",
]
