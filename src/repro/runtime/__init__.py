"""Execution substrate: runtime arrays (with window storage), an expression
evaluator (scalar reference semantics and a vectorised NumPy path for DOALL
dimensions), and the flowchart interpreter."""

from repro.runtime.executor import ExecutionOptions, execute_module, execute_program_module
from repro.runtime.values import RuntimeArray, eval_bound

__all__ = [
    "ExecutionOptions",
    "RuntimeArray",
    "eval_bound",
    "execute_module",
    "execute_program_module",
]
