"""Execution substrate: runtime arrays (with window storage), an expression
evaluator (scalar reference semantics and a vectorised NumPy path for DOALL
dimensions), the flowchart interpreter, and the pluggable parallel execution
backends (serial / vectorized / threaded / process)."""

from repro.runtime.backends import available_backends, create_backend
from repro.runtime.executor import (
    ExecutionOptions,
    execute_module,
    execute_program_module,
)
from repro.runtime.values import RuntimeArray, eval_bound

__all__ = [
    "ExecutionOptions",
    "RuntimeArray",
    "available_backends",
    "create_backend",
    "eval_bound",
    "execute_module",
    "execute_program_module",
]
