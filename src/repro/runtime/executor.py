"""Flowchart interpreter: executes a scheduled module.

The interpreter walks the flowchart exactly as the generated procedural
program would: a ``DO`` loop runs its subrange low-to-high sequentially; a
``DOALL`` loop is semantically unordered and, when ``vectorize`` is on,
executes as one NumPy operation over the whole index range (an inner ``DO``
nested under a vectorised ``DOALL`` keeps its own scalar loop — e.g. the
``DOALL R (DO C (...))`` schedule of per-row scans).

Options:

* ``vectorize`` — NumPy the DOALL dimensions (default; the scalar path is
  the reference semantics used to cross-check it);
* ``use_windows`` — allocate virtual dimensions as windows, as the paper's
  section 3.4 directs the code generator to do;
* ``debug_windows`` — arm window tags that fault on any read of an
  overwritten plane (failure injection for schedule/window validation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.ps.ast import Call, walk_expr
from repro.ps.semantics import _BUILTINS as _PS_BUILTINS
from repro.ps.semantics import AnalyzedEquation, AnalyzedModule, AnalyzedProgram
from repro.ps.symbols import SymbolKind
from repro.ps.types import ArrayType
from repro.runtime.evaluator import Evaluator
from repro.runtime.values import RuntimeArray, array_bounds, dtype_for, eval_bound

_SAFE_CALLS = set(_PS_BUILTINS)
from repro.schedule.flowchart import Descriptor, Flowchart, LoopDescriptor, NodeDescriptor
from repro.schedule.scheduler import schedule_module


@dataclass
class ExecutionOptions:
    vectorize: bool = True
    use_windows: bool = False
    debug_windows: bool = False


@dataclass
class _State:
    analyzed: AnalyzedModule
    flowchart: Flowchart
    options: ExecutionOptions
    data: dict[str, Any]
    evaluator: Evaluator
    program: AnalyzedProgram | None = None
    #: statistics: equation label -> number of element evaluations
    eval_counts: dict[str, int] = field(default_factory=dict)

    def scalar_env(self) -> dict[str, int]:
        return {
            k: int(v)
            for k, v in self.data.items()
            if isinstance(v, (int, np.integer))
        }


def execute_module(
    analyzed: AnalyzedModule,
    args: dict[str, Any],
    flowchart: Flowchart | None = None,
    options: ExecutionOptions | None = None,
    program: AnalyzedProgram | None = None,
) -> dict[str, Any]:
    """Execute a module with the given inputs; returns its results.

    Array arguments are NumPy arrays shaped to the declared bounds; scalar
    arguments are Python numbers.
    """
    options = options or ExecutionOptions()
    if flowchart is None:
        flowchart = schedule_module(analyzed)

    from repro.ps.types import RecordType

    data: dict[str, Any] = {}
    # Bind scalar parameters first: array bounds may use them.
    for pname in analyzed.param_names:
        sym = analyzed.symbol(pname)
        if isinstance(sym.type, RecordType):
            # Record parameters arrive as dotted names ("p.x") or as a dict.
            if pname in args and isinstance(args[pname], dict):
                for fname, fval in args[pname].items():
                    data[f"{pname}.{fname}"] = fval
            continue
        if not isinstance(sym.type, ArrayType):
            if pname not in args:
                raise ExecutionError(f"missing argument {pname!r}")
            data[pname] = args[pname]
    scalar_env = {
        k: int(v) for k, v in data.items() if isinstance(v, (int, np.integer))
    }
    for pname in analyzed.param_names:
        sym = analyzed.symbol(pname)
        if isinstance(sym.type, ArrayType):
            if pname not in args:
                raise ExecutionError(f"missing argument {pname!r}")
            bounds = array_bounds(sym.type, scalar_env)
            data[pname] = RuntimeArray.from_numpy(
                pname,
                np.asarray(args[pname], dtype=dtype_for(sym.type.element)),
                bounds,
            )
    # Record parameters may arrive as dicts; flatten dotted names.
    for key, value in args.items():
        if key not in data and "." in key:
            data[key] = value

    state = _State(
        analyzed,
        flowchart,
        options,
        data,
        Evaluator(data, call_fn=None, enums=_enum_env(analyzed)),
        program=program,
    )
    state.evaluator.call_fn = lambda name, cargs: _call_module(state, name, cargs)

    for desc in flowchart.descriptors:
        _exec_descriptor(state, desc, {}, [])

    results = {}
    for rname in analyzed.result_names:
        value = state.data.get(rname)
        if isinstance(value, RuntimeArray):
            value = value.to_numpy()
        results[rname] = value
    return results


def execute_program_module(
    program: AnalyzedProgram,
    module_name: str,
    args: dict[str, Any],
    options: ExecutionOptions | None = None,
) -> dict[str, Any]:
    """Execute a module of an analyzed program (module calls resolve)."""
    return execute_module(
        program[module_name], args, options=options, program=program
    )


def _enum_env(analyzed: AnalyzedModule) -> dict[str, int]:
    return {
        member: ordinal
        for member, (_, ordinal) in analyzed.table.enum_members.items()
    }


def _call_module(state: _State, name: str, cargs: list[Any]) -> Any:
    if state.program is None:
        raise ExecutionError(
            f"module call {name!r} requires program-level execution"
        )
    callee = state.program[name]
    call_args = dict(zip(callee.param_names, cargs))
    results = execute_module(
        callee, call_args, options=state.options, program=state.program
    )
    scalar_env = {
        k: int(v)
        for k, v in call_args.items()
        if isinstance(v, (int, np.integer))
    }
    values = []
    for rname in callee.result_names:
        v = results[rname]
        rtype = callee.symbol(rname).type
        if isinstance(rtype, ArrayType):
            # Preserve the declared origin so subsequent indexing is exact.
            v = RuntimeArray.from_numpy(
                rname, np.asarray(v), array_bounds(rtype, scalar_env)
            )
        values.append(v)
    return values[0] if len(values) == 1 else tuple(values)


# ---------------------------------------------------------------------------
# Descriptor execution
# ---------------------------------------------------------------------------


def _exec_descriptor(
    state: _State, desc: Descriptor, env: dict[str, Any], vector_names: list[str]
) -> None:
    if isinstance(desc, NodeDescriptor):
        if desc.node.is_equation:
            _exec_equation(state, desc.node.equation, env, vector_names)
        return
    assert isinstance(desc, LoopDescriptor)
    scalar_env = state.scalar_env()
    lo = eval_bound(desc.subrange.lo, scalar_env)
    hi = eval_bound(desc.subrange.hi, scalar_env)
    if hi < lo:
        return
    if desc.parallel and state.options.vectorize:
        env2 = dict(env)
        for vn in vector_names:
            env2[vn] = np.asarray(env2[vn])[..., None]
        env2[desc.index] = np.arange(lo, hi + 1)
        for d in desc.body:
            _exec_descriptor(state, d, env2, vector_names + [desc.index])
    else:
        for i in range(lo, hi + 1):
            env2 = dict(env)
            env2[desc.index] = i
            for d in desc.body:
                _exec_descriptor(state, d, env2, vector_names)


def _equation_is_vector_safe(eq: AnalyzedEquation) -> bool:
    """A module call blocks vectorisation only when its arguments mention the
    equation's index variables (then each element needs its own call)."""
    from repro.ps.ast import names_in

    index_names = set(eq.index_names)
    for n in walk_expr(eq.rhs):
        if isinstance(n, Call) and n.func not in _SAFE_CALLS:
            for a in n.args:
                if names_in(a) & index_names:
                    return False
    return True


def _exec_equation(
    state: _State,
    eq: AnalyzedEquation,
    env: dict[str, Any],
    vector_names: list[str],
) -> None:
    vector = bool(vector_names) and state.options.vectorize
    if vector and not _equation_is_vector_safe(eq):
        _exec_equation_scalar_fallback(state, eq, env, vector_names)
        return

    if eq.atomic:
        _exec_atomic(state, eq, env)
        return

    _ensure_targets(state, eq)
    value = state.evaluator.eval(eq.rhs, env, vector=vector)
    state.eval_counts[eq.label] = state.eval_counts.get(eq.label, 0) + (
        int(np.size(value)) if vector else 1
    )
    target = eq.targets[0]
    holder = state.data.get(target.name)
    if isinstance(holder, RuntimeArray):
        subs = [state.evaluator.eval(s, env, vector=vector) for s in target.subscripts]
        holder.set(subs, value)
    else:
        state.data[target.name] = (
            value.item() if isinstance(value, np.ndarray) else value
        )


def _exec_equation_scalar_fallback(
    state: _State,
    eq: AnalyzedEquation,
    env: dict[str, Any],
    vector_names: list[str],
) -> None:
    """Iterate the vectorised indices element by element."""
    grids = [np.broadcast_to(np.asarray(env[vn]), _broadcast_shape(env, vector_names))
             for vn in vector_names]
    flat = [g.reshape(-1) for g in grids]
    for i in range(flat[0].size if flat else 1):
        env2 = dict(env)
        for vn, g in zip(vector_names, flat):
            env2[vn] = int(g[i])
        _exec_equation(state, eq, env2, [])


def _broadcast_shape(env: dict[str, Any], vector_names: list[str]):
    shapes = [np.asarray(env[vn]).shape for vn in vector_names]
    return np.broadcast_shapes(*shapes) if shapes else ()


def _exec_atomic(state: _State, eq: AnalyzedEquation, env: dict[str, Any]) -> None:
    value = state.evaluator.eval(eq.rhs, env, vector=False)
    values = value if isinstance(value, tuple) else (value,)
    if len(values) != len(eq.targets):
        raise ExecutionError(
            f"{eq.label}: expected {len(eq.targets)} results, got {len(values)}"
        )
    for target, v in zip(eq.targets, values):
        sym = state.analyzed.symbol(target.name)
        if isinstance(sym.type, ArrayType):
            dense = v.to_numpy() if isinstance(v, RuntimeArray) else np.asarray(v)
            bounds = array_bounds(sym.type, state.scalar_env())
            state.data[target.name] = RuntimeArray.from_numpy(
                target.name, dense, bounds
            )
        else:
            state.data[target.name] = v
    state.eval_counts[eq.label] = state.eval_counts.get(eq.label, 0) + 1


def _ensure_targets(state: _State, eq: AnalyzedEquation) -> None:
    """Allocate target arrays on first definition."""
    for target in eq.targets:
        if target.name in state.data:
            continue
        sym = state.analyzed.symbol(target.name)
        if isinstance(sym.type, ArrayType):
            bounds = array_bounds(sym.type, state.scalar_env())
            windows: dict[int, int] = {}
            if state.options.use_windows and sym.kind is SymbolKind.VAR:
                windows = dict(state.flowchart.window_of(target.name))
            state.data[target.name] = RuntimeArray.allocate(
                target.name,
                sym.type.element,
                bounds,
                windows=windows,
                debug=state.options.debug_windows,
            )
        # Scalars are created on assignment.
