"""Flowchart interpreter: executes a scheduled module.

The interpreter walks the flowchart exactly as the generated procedural
program would: a ``DO`` loop runs its subrange low-to-high sequentially; a
``DOALL`` loop is semantically unordered and executes on the selected
*execution backend* (see :mod:`repro.runtime.backends`):

* ``serial`` — one scalar iteration at a time (the reference semantics);
* ``vectorized`` — the whole subrange as one NumPy operation (an inner
  ``DO`` nested under a vectorised ``DOALL`` keeps its own scalar loop);
* ``threaded`` — chunked subranges on a thread pool, NumPy kernels
  releasing the GIL;
* ``process`` — chunked subranges in forked workers over shared-memory
  arrays, with a barrier per wavefront.

Options:

* ``backend`` / ``workers`` — backend selection; ``"auto"`` asks the
  cost-driven planner (:mod:`repro.plan.planner`) to choose, while an
  explicit backend pins the plan to it;
* ``vectorize`` — NumPy the DOALL dimensions (default; the scalar path is
  the reference semantics used to cross-check it);
* ``use_windows`` — allocate virtual dimensions as windows, as the paper's
  section 3.4 directs the code generator to do;
* ``debug_windows`` — arm window tags that fault on any read of an
  overwritten plane (failure injection for schedule/window validation).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import ExecutionError
from repro.ps.semantics import AnalyzedModule, AnalyzedProgram
from repro.ps.types import ArrayType
from repro.runtime.backends import instantiate_backend
from repro.runtime.backends.base import ExecutionState
from repro.runtime.evaluator import Evaluator
from repro.runtime.kernels import KernelCache
from repro.runtime.values import RuntimeArray, array_bounds, dtype_for
from repro.schedule.flowchart import Flowchart
from repro.schedule.scheduler import schedule_module

if TYPE_CHECKING:  # a module-level import would cycle through the package
    # __init__ chain (plan -> machine -> runtime -> executor); the planner
    # is imported lazily at the call sites instead
    from repro.plan.ir import ExecutionPlan


#: Backward-compatible alias — the mutable per-execution state now lives in
#: :mod:`repro.runtime.backends.base`.
_State = ExecutionState


@dataclass
class ExecutionOptions:
    vectorize: bool = True
    use_windows: bool = False
    debug_windows: bool = False
    #: execution backend: "auto", "serial", "vectorized", "threaded",
    #: "process" — "auto" asks the cost-driven planner to choose (with
    #: ``vectorize=False`` it pins the serial reference path, preserving
    #: the historical --scalar flag)
    backend: str = "auto"
    #: worker count for the chunked backends (None: os.cpu_count())
    workers: int | None = None
    #: dispatch equations through cached exec-compiled kernels (the fast
    #: path); off, everything runs on the tree-walking reference evaluator.
    #: Window-debug runs always use the evaluator (kernels skip the
    #: fault-on-overwrite tags).
    use_kernels: bool = True
    #: highest kernel tier DOALL nests may use: "native" (cffi-compiled C,
    #: degrading to the NumPy kernels when no C compiler exists), "numpy"
    #: (exec-compiled NumPy kernels only), or "evaluator" (no kernels at
    #: all — same as ``use_kernels=False``)
    kernel_tier: str = "native"
    #: let the planner collapse perfect DOALL nests into one flattened,
    #: chunked iteration space executed by fused flat kernels (off, nests
    #: plan with the per-loop strategies only — the escape hatch)
    use_collapse: bool = True
    #: let the planner split ("fission") a sequential loop whose body
    #: partitions into independent dependence groups into one replica loop
    #: per group — pieces then plan independently (a DOALL piece regains
    #: the kernel strategies, a lone recurrence regains scan/pipeline).
    #: Off, every nest plans as scheduled (the escape hatch).
    use_fission: bool = True
    #: soft strategy preference (``repro run/plan --strategy``): every loop
    #: the strategy validly applies to takes it, everything else plans
    #: normally — unlike :func:`repro.plan.planner.forced_plan`, an
    #: inapplicable preference degrades instead of raising. ``"pipeline"``
    #: asks the planner to take every partitionable sibling-loop run as a
    #: pipeline group regardless of predicted price.
    strategy: str | None = None
    #: permit the parallel ``scan`` strategy to reassociate float ``+``/``*``
    #: recurrences (results differ from the in-order reference by rounding,
    #: typically ~1e-12 relative). Off, float scans stay in order; integer
    #: and min/max scans are bit-exact and never need this.
    allow_reassoc: bool = False

    @classmethod
    def resolve(
        cls, base: ExecutionOptions | None = None, /, **overrides: Any
    ) -> ExecutionOptions:
        """The one options-resolution path shared by the library
        (:meth:`CompileResult.run`), the CLI, and the serve daemon.

        Starts from ``base`` (or the defaults) and applies ``overrides``
        by field name; an override of ``None`` means "keep the base value"
        so callers can thread optional CLI/request parameters straight
        through. Unknown names raise ``TypeError`` — options typos must
        not silently plan a different execution.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(
                f"unknown execution option(s) {sorted(unknown)!r}; "
                f"valid fields: {sorted(known)}"
            )
        effective = {k: v for k, v in overrides.items() if v is not None}
        if base is None:
            return cls(**effective)
        return replace(base, **effective) if effective else base


def execute_module(
    analyzed: AnalyzedModule,
    args: dict[str, Any],
    flowchart: Flowchart | None = None,
    options: ExecutionOptions | None = None,
    program: AnalyzedProgram | None = None,
    kernel_cache: KernelCache | None = None,
    plan: ExecutionPlan | None = None,
    backend: Any = None,
) -> dict[str, Any]:
    """Execute a module with the given inputs; returns its results.

    Array arguments are NumPy arrays shaped to the declared bounds; scalar
    arguments are Python numbers. ``kernel_cache`` carries compiled kernels
    across executions of the same ``(analyzed, flowchart)`` pair (a
    :class:`~repro.core.pipeline.CompileResult` keeps one for its lifetime);
    without it a transient cache is built per call. ``plan`` supplies a
    prebuilt (possibly hand-forced) :class:`ExecutionPlan`; without it the
    cost-driven planner runs once for this execution — ``backend="auto"``
    asks it to choose, an explicit backend pins the plan.

    ``backend`` supplies a pre-instantiated
    :class:`~repro.runtime.backends.base.ExecutionBackend` whose lifetime
    the *caller* owns (a :class:`~repro.serve.session.Session` keeps worker
    pools alive across runs this way): it must match the plan's backend
    name, only per-run resources are released afterwards
    (``backend.end_run()``), and ``backend.close()`` is never called here.
    Without it a backend is instantiated for the plan and fully closed.
    """
    options = options or ExecutionOptions()
    if flowchart is None:
        flowchart = schedule_module(analyzed)

    from repro.ps.types import RecordType

    data: dict[str, Any] = {}
    # Bind scalar parameters first: array bounds may use them.
    for pname in analyzed.param_names:
        sym = analyzed.symbol(pname)
        if isinstance(sym.type, RecordType):
            # Record parameters arrive as dotted names ("p.x") or as a dict.
            if pname in args and isinstance(args[pname], dict):
                for fname, fval in args[pname].items():
                    data[f"{pname}.{fname}"] = fval
            continue
        if not isinstance(sym.type, ArrayType):
            if pname not in args:
                raise ExecutionError(f"missing argument {pname!r}")
            data[pname] = args[pname]
    scalar_env = {
        k: int(v) for k, v in data.items() if isinstance(v, (int, np.integer))
    }

    if plan is None:
        from repro.plan.planner import build_plan

        plan = build_plan(analyzed, flowchart, options, scalar_env)
    else:
        # A supplied plan may have been built against another copy of the
        # flowchart tree; re-index it on these descriptor identities.
        plan.bind(flowchart)

    owned = backend is None
    if owned:
        backend = instantiate_backend(plan.backend, workers=plan.workers)
    elif backend.name != plan.backend:
        raise ExecutionError(
            f"supplied backend {backend.name!r} does not match the plan's "
            f"backend {plan.backend!r} — resolve the plan first and hand "
            f"execute_module the matching backend instance"
        )

    try:
        # Input arrays materialise through the backend's storage factory —
        # a process backend places them in named shared-memory segments, so
        # a persistent pool forked on an earlier run re-attaches this run's
        # inputs by name instead of relying on fork-time inheritance.
        for pname in analyzed.param_names:
            sym = analyzed.symbol(pname)
            if isinstance(sym.type, ArrayType):
                if pname not in args:
                    raise ExecutionError(f"missing argument {pname!r}")
                bounds = array_bounds(sym.type, scalar_env)
                data[pname] = RuntimeArray.from_numpy(
                    pname,
                    np.asarray(args[pname], dtype=dtype_for(sym.type.element)),
                    bounds,
                    storage_factory=backend.make_storage,
                )
        # Record parameters may arrive as dicts; flatten dotted names.
        for key, value in args.items():
            if key not in data and "." in key:
                data[key] = value

        kernels: KernelCache | None = None
        if (
            options.use_kernels
            and not options.debug_windows
            and getattr(options, "kernel_tier", "native") != "evaluator"
        ):
            kernels = kernel_cache or KernelCache(analyzed, flowchart)

        state = ExecutionState(
            analyzed,
            flowchart,
            options,
            data,
            Evaluator(data, call_fn=None, enums=_enum_env(analyzed)),
            program=program,
            kernels=kernels,
            plan=plan,
        )
        state.evaluator.call_fn = lambda name, cargs: _call_module(state, name, cargs)

        backend.run(state)
        results = {}
        for rname in analyzed.result_names:
            value = state.data.get(rname)
            if isinstance(value, RuntimeArray):
                value = backend.export_result(value.to_numpy())
            results[rname] = value
        return results
    finally:
        if owned:
            backend.close()
        else:
            backend.end_run()


def execute_program_module(
    program: AnalyzedProgram,
    module_name: str,
    args: dict[str, Any],
    options: ExecutionOptions | None = None,
) -> dict[str, Any]:
    """Execute a module of an analyzed program (module calls resolve)."""
    return execute_module(
        program[module_name], args, options=options, program=program
    )


def _enum_env(analyzed: AnalyzedModule) -> dict[str, int]:
    return {
        member: ordinal
        for member, (_, ordinal) in analyzed.table.enum_members.items()
    }


def _callee_runtime(program: AnalyzedProgram, name: str):
    """The callee's schedule and kernel cache, memoized on the program —
    module calls may fire once per element, and re-scheduling (let alone
    re-``exec``-compiling kernels) per call would make the call path
    slower than the plain evaluator."""
    memo = getattr(program, "_runtime_memo", None)
    if memo is None:
        memo = {}
        program._runtime_memo = memo
    entry = memo.get(name)
    if entry is None:
        callee = program[name]
        flowchart = schedule_module(callee)
        entry = (flowchart, KernelCache(callee, flowchart))
        memo[name] = entry
    return entry


def _callee_plan(
    state: ExecutionState,
    name: str,
    callee,
    flowchart: Flowchart,
    options: ExecutionOptions,
    scalar_env: dict[str, int],
) -> ExecutionPlan:
    """The callee's execution plan, memoized next to its schedule — the
    planner must run once per callee, not once per element call. Trip
    counts are taken from the first call's scalar arguments; strategy
    *safety* is static, so later calls with different sizes stay correct.
    """
    memo = getattr(state.program, "_plan_memo", None)
    if memo is None:
        memo = {}
        state.program._plan_memo = memo
    key = (
        name, options.backend, options.workers, options.vectorize,
        options.use_windows, options.use_kernels, options.debug_windows,
        options.use_collapse, getattr(options, "kernel_tier", "native"),
        getattr(options, "use_fission", True),
        getattr(options, "strategy", None),
        getattr(options, "allow_reassoc", False),
    )
    plan = memo.get(key)
    if plan is None:
        from repro.plan.planner import build_plan

        # Callees run in-process even under "auto": the planner must not
        # hand a per-element module call its own worker pool (nested pools
        # inside worker chunks would oversubscribe or crash).
        plan = build_plan(
            callee, flowchart, options, scalar_env,
            candidates=("serial", "vectorized"),
        )
        memo[key] = plan
    return plan


def _call_module(state: ExecutionState, name: str, cargs: list[Any]) -> Any:
    if state.program is None:
        raise ExecutionError(
            f"module call {name!r} requires program-level execution"
        )
    callee = state.program[name]
    call_args = dict(zip(callee.param_names, cargs))
    # Callees run on the in-process backends: parallelism belongs to the
    # outermost module (nested pools/forks inside worker chunks would
    # oversubscribe or crash).
    callee_options = state.options
    if callee_options.backend not in ("auto", "serial", "vectorized"):
        callee_options = replace(callee_options, backend="auto")
    flowchart, kernel_cache = _callee_runtime(state.program, name)
    scalar_env = {
        k: int(v) for k, v in call_args.items() if isinstance(v, (int, np.integer))
    }
    plan = _callee_plan(
        state, name, callee, flowchart, callee_options, scalar_env
    )
    results = execute_module(
        callee,
        call_args,
        flowchart=flowchart,
        options=callee_options,
        program=state.program,
        kernel_cache=kernel_cache,
        plan=plan,
    )
    values = []
    for rname in callee.result_names:
        v = results[rname]
        rtype = callee.symbol(rname).type
        if isinstance(rtype, ArrayType):
            # Preserve the declared origin so subsequent indexing is exact.
            v = RuntimeArray.from_numpy(
                rname, np.asarray(v), array_bounds(rtype, scalar_env)
            )
        values.append(v)
    return values[0] if len(values) == 1 else tuple(values)
