"""Pluggable parallel execution backends for DOALL loops.

Registry::

    from repro.runtime.backends import create_backend, available_backends
    backend = create_backend(options)     # resolves ExecutionOptions.backend

``"auto"`` resolves to ``vectorized`` (or ``serial`` when
``ExecutionOptions.vectorize`` is off), preserving the historical flags.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.runtime.backends.base import (
    ExecutionBackend,
    ExecutionState,
    chunk_safe,
    equation_is_vector_safe,
)
from repro.runtime.backends.process import ForkProcessBackend, ProcessBackend
from repro.runtime.backends.serial import SerialBackend
from repro.runtime.backends.threaded import ThreadedBackend
from repro.runtime.backends.vectorized import VectorizedBackend

BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    VectorizedBackend.name: VectorizedBackend,
    ThreadedBackend.name: ThreadedBackend,
    ProcessBackend.name: ProcessBackend,
    # The fork-per-wavefront baseline the persistent pool replaced; kept
    # for measurement (bench_kernels) and as a debugging escape hatch.
    ForkProcessBackend.name: ForkProcessBackend,
}


def available_backends() -> list[str]:
    return sorted(BACKENDS)


def resolve_backend_name(options) -> str:
    """Map ExecutionOptions to a registry key (``"auto"`` honours the
    legacy ``vectorize`` flag)."""
    name = getattr(options, "backend", "auto")
    if name == "auto":
        return "vectorized" if options.vectorize else "serial"
    return name


def create_backend(options) -> ExecutionBackend:
    name = resolve_backend_name(options)
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown execution backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return cls(workers=getattr(options, "workers", None))


__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ExecutionState",
    "ForkProcessBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadedBackend",
    "VectorizedBackend",
    "available_backends",
    "chunk_safe",
    "create_backend",
    "equation_is_vector_safe",
    "resolve_backend_name",
]
