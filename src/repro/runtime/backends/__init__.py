"""Pluggable parallel execution backends for DOALL loops.

Registry::

    from repro.runtime.backends import create_backend, available_backends
    backend = create_backend(options)     # resolves ExecutionOptions.backend

``"auto"`` resolves to ``vectorized`` (or ``serial`` when
``ExecutionOptions.vectorize`` is off), preserving the historical flags.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.runtime.backends.base import (
    ExecutionBackend,
    ExecutionState,
    chunk_safe,
    equation_is_vector_safe,
)
from repro.runtime.backends.process import ForkProcessBackend, ProcessBackend
from repro.runtime.backends.serial import SerialBackend
from repro.runtime.backends.threaded import (
    FreeThreadingBackend,
    ThreadedBackend,
    free_threading_active,
)
from repro.runtime.backends.vectorized import VectorizedBackend

BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    VectorizedBackend.name: VectorizedBackend,
    ThreadedBackend.name: ThreadedBackend,
    # Thread-pool dispatch tuned for no-GIL CPython; degrades to exactly
    # ThreadedBackend behaviour on a GIL build, so always constructible.
    FreeThreadingBackend.name: FreeThreadingBackend,
    ProcessBackend.name: ProcessBackend,
    # The fork-per-wavefront baseline the persistent pool replaced; kept
    # for measurement (bench_kernels) and as a debugging escape hatch.
    ForkProcessBackend.name: ForkProcessBackend,
}


def available_backends() -> list[str]:
    return sorted(BACKENDS)


def resolve_backend_name(options) -> str:
    """Legacy direct-construction resolution: ``"auto"`` falls back to the
    historical ``vectorize``-flag behaviour. The executor does NOT use
    this — it asks the cost-driven planner (:mod:`repro.plan.planner`) and
    instantiates ``plan.backend``; this path remains for helpers that walk
    descriptors without a plan (e.g. ``runtime.wavefront``) and for tests
    constructing backends directly."""
    name = getattr(options, "backend", "auto")
    if name == "auto":
        return "vectorized" if options.vectorize else "serial"
    return name


def instantiate_backend(name: str, workers: int | None = None) -> ExecutionBackend:
    """Registry lookup shared by the executor (``plan.backend``) and the
    legacy :func:`create_backend` path."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ExecutionError(
            f"unknown execution backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return cls(workers=workers)


def create_backend(options) -> ExecutionBackend:
    return instantiate_backend(
        resolve_backend_name(options), workers=getattr(options, "workers", None)
    )


__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ExecutionState",
    "ForkProcessBackend",
    "FreeThreadingBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadedBackend",
    "VectorizedBackend",
    "available_backends",
    "chunk_safe",
    "create_backend",
    "equation_is_vector_safe",
    "free_threading_active",
    "instantiate_backend",
    "resolve_backend_name",
]
