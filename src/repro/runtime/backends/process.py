"""Process backends: DOALL chunks in worker processes over shared memory.

Two strategies share the shared-memory storage machinery:

* :class:`ProcessBackend` (``"process"``) — a **persistent pool**: workers
  are forked once, at the first chunk dispatch, inheriting the interpreter
  state *and the warmed kernel cache*; each wavefront then costs one task
  message and one result message per worker instead of a fork/exec/teardown.
  Arrays allocated (or rebound) after the fork are re-attached by name
  through their ``multiprocessing.shared_memory`` segments, so workers
  always address the planes the parent sees.
* :class:`ForkProcessBackend` (``"process-fork"``) — the original
  fork-per-wavefront strategy, kept as the measured baseline (see
  ``benchmarks/bench_kernels.py``) and as the fallback for window-debug
  runs, whose fault-on-overwrite tag arrays must be re-inherited fresh.

Fork is required (the child must inherit the interpreter state without
pickling). On spawn-only platforms (macOS's default, Windows) constructing
either backend raises a clear :class:`ExecutionError` naming the platform
limitation — silently degrading to in-process execution made an explicit
``--backend process`` a lie, and the old half-degraded state crashed later
in ``_ensure_pool`` with an ``AttributeError`` on the missing fork context.
The planner's ``backend="auto"`` never offers the process backends when
fork is unavailable. Result arrays are copied out before the shared
segments are unlinked.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.backends.base import ExecutionBackend, ExecutionState
from repro.runtime.backends.vectorized import VectorizedBackend
from repro.runtime.values import RuntimeArray
from repro.schedule.flowchart import LoopDescriptor


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def require_fork(backend_name: str) -> None:
    """Raise the canonical spawn-only-platform error for ``backend_name``.

    Shared by the backend constructors and the planner-facing helpers so an
    explicit ``--backend process`` fails the same readable way everywhere
    (instead of the historical silent degradation or an ``AttributeError``
    on the missing fork context)."""
    if not _fork_available():
        import sys

        raise ExecutionError(
            f"the {backend_name!r} backend requires the 'fork' start method, "
            f"which this platform ({sys.platform}) does not provide — "
            f"macOS and Windows default to 'spawn'; use --backend threaded, "
            f"or backend='auto' to let the planner pick a supported backend"
        )


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment the parent owns.

    On Python >= 3.13 ``track=False`` skips resource-tracker registration
    outright. Earlier versions register on attach — harmless here, because a
    forked worker shares the parent's tracker process and its name cache is
    a set: the attach re-adds the name the parent's create registered, and
    the parent's ``unlink`` removes it exactly once."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        return shared_memory.SharedMemory(name=name)


class ForkProcessBackend(ExecutionBackend):
    """Fork-per-wavefront baseline (PR 1 semantics)."""

    name = "process-fork"
    serialize_runs = True

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        require_fork(self.name)
        self._warmed = False
        self._segments: list[shared_memory.SharedMemory] = []
        #: id(storage) -> (storage, segment name); the strong reference
        #: keeps the id stable for the backend's lifetime
        self._seg_by_storage: dict[int, tuple[np.ndarray, str]] = {}
        self._ctx = multiprocessing.get_context("fork")

    # -- storage -----------------------------------------------------------

    def make_storage(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self._segments.append(shm)
        arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        arr[...] = 0
        self._seg_by_storage[id(arr)] = (arr, shm.name)
        return arr

    def segment_name_for(self, storage: np.ndarray) -> str | None:
        entry = self._seg_by_storage.get(id(storage))
        if entry is not None and entry[0] is storage:
            return entry[1]
        return None

    def export_result(self, array: np.ndarray) -> np.ndarray:
        # Results must outlive the shared segments backing them.
        return np.array(array)

    def end_run(self) -> None:
        """Unlink this run's shared segments (results were exported as
        copies already). Pool workers that attached them drop their stale
        attachments on the next task's sync (see :func:`_pool_worker`), so
        a persistent backend does not accumulate segments across runs."""
        for shm in self._segments:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        # The mappings themselves are released when the last NumPy view is
        # garbage collected; close() here would raise BufferError while
        # exported views exist.
        self._segments.clear()
        self._seg_by_storage.clear()

    def close(self) -> None:
        self.end_run()

    # -- dispatch ----------------------------------------------------------

    def dispatch_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        self._fork_wavefront(
            state, desc,
            [("span", clo, chi, env, vector_names, True) for clo, chi in spans],
        )

    def dispatch_flat_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        fuse: bool,
    ) -> None:
        self._fork_wavefront(
            state, desc,
            [("flat", flo, fhi, env, [], fuse) for flo, fhi in spans],
        )

    def _fork_wavefront(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        tasks: list[tuple],
    ) -> None:
        """Fork one worker per task (``(kind, lo, hi, env, vector_names,
        fuse)``) and retire the wavefront when every one has exited."""
        # Warm the kernel cache once in the parent: forked children inherit
        # every compiled kernel (and dlopened native library) instead of
        # each child re-compiling per wavefront — and, on the first native
        # wavefront, N children racing N identical cc subprocesses.
        if state.kernels is not None and not self._warmed:
            state.kernels.warm(
                state.options.use_windows,
                tier=getattr(state.options, "kernel_tier", "native"),
            )
            self._warmed = True
        queue = self._ctx.SimpleQueue()
        procs = []
        for task in tasks:
            sub = state.fork()
            p = self._ctx.Process(
                target=self._run_chunk,
                args=(sub, desc, task, queue),
                daemon=True,
            )
            p.start()
            procs.append(p)
        # The barrier: the wavefront retires only when every chunk has.
        # Drain the queue *while* joining — a child blocked in put() (its
        # payload exceeding the pipe buffer) would otherwise never exit
        # and the bare join would deadlock.
        messages: list[tuple[str, Any]] = []
        pending = list(procs)
        while pending:
            while not queue.empty():
                messages.append(queue.get())
            for p in pending[:]:
                p.join(timeout=0.01)
                if p.exitcode is not None:
                    pending.remove(p)
        while not queue.empty():
            messages.append(queue.get())
        failures: list[str] = []
        for status, payload in messages:
            if status == "ok":
                state.merge_counts(payload)
            else:
                failures.append(payload)
        queue.close()
        if failures:
            raise ExecutionError(
                f"DOALL {desc.index} worker failed: " + "; ".join(failures)
            )
        if any(p.exitcode != 0 for p in procs):
            codes = [p.exitcode for p in procs]
            raise ExecutionError(
                f"DOALL {desc.index} worker died (exit codes {codes})"
            )

    def _run_chunk(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        task: tuple,
        queue,
    ) -> None:
        kind, lo, hi, env, vector_names, fuse = task
        try:
            if kind == "flat":
                self.exec_flat_span(state, desc, lo, hi, env, fuse)
            else:
                self.exec_chunk_span(state, desc, lo, hi, env, vector_names)
            queue.put(("ok", state.eval_counts))
        except BaseException as exc:  # broad by design — reported to the parent
            queue.put(("error", f"{type(exc).__name__}: {exc}"))


def _pool_worker(backend: ProcessBackend, state: ExecutionState, task_q, result_q):
    """Persistent-worker main loop (runs in the forked child).

    The child inherited the interpreter state — analyzed module, flowchart,
    compiled kernel cache, and every array allocated before the fork. Each
    task carries the *full* current sync state (scalar bindings plus the
    shared-memory table of array storage — a few hundred bytes; the array
    contents themselves never travel) and the worker applies only the
    deltas: an array is re-attached by segment name exactly when its
    backing segment changed, i.e. it was allocated or rebound wholesale by
    an atomic equation after the fork. Tasks are load-balanced off one
    shared queue, so a worker may see none of a wavefront's tasks —
    per-task full state is what keeps a later task self-sufficient.
    """
    vec = VectorizedBackend(workers=1)
    known: dict[str, str] = {}
    for name, val in state.data.items():
        if isinstance(val, RuntimeArray):
            seg = backend.segment_name_for(val.storage)
            if seg is not None:
                known[name] = seg
    attached: dict[str, shared_memory.SharedMemory] = {}
    while True:
        task = task_q.get()
        if task is None:
            break
        task_id, kind, path, lo, hi, env, scalars, specs, fuse = task
        try:
            state.data.update(scalars)
            for name, (seg, shape, dtype, los, his, windows) in specs.items():
                if known.get(name) == seg:
                    continue
                shm = attached.get(seg)
                if shm is None:
                    shm = _attach_shm(seg)
                    attached[seg] = shm
                storage = np.ndarray(
                    tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf
                )
                state.data[name] = RuntimeArray(
                    name, list(los), list(his), storage, dict(windows), None
                )
                known[name] = seg
            # A persistent pool outlives the run that forked it: drop names
            # whose segments the parent has since unlinked (they are absent
            # from this task's full sync state) and unmap attachments no
            # name references any more, so memory use stays bounded by the
            # *current* run's arrays, not the session's history.
            live = set()
            for name in list(known):
                if name in specs:
                    live.add(known[name])
                else:
                    known.pop(name)
                    state.data.pop(name, None)
            for seg in [s for s in attached if s not in live]:
                shm = attached.pop(seg)
                try:
                    shm.close()
                except BufferError:  # a NumPy view is still alive; retry
                    attached[seg] = shm
            desc = state.flowchart.descriptor_at(path)
            sub = state.fork()
            if kind == "flat":
                # A collapse chunk: the whole flat subrange runs inside one
                # fused nest kernel from the pre-fork-warmed cache — pure
                # compiled work, no GIL shared with sibling workers.
                vec.exec_flat_span(sub, desc, lo, hi, env, fuse)
            else:
                # Native span kernel when the span lowers to C (inherited
                # pre-compiled from the parent's warm), NumPy path otherwise.
                vec.exec_chunk_span(sub, desc, lo, hi, env, [])
            result_q.put((task_id, "ok", sub.eval_counts))
        except BaseException as exc:  # broad by design — reported to the parent
            result_q.put((task_id, "error", f"{type(exc).__name__}: {exc}"))


class ProcessBackend(ForkProcessBackend):
    """Persistent worker pool: fork once, stream subranges thereafter."""

    name = "process"

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._task_seq = 0
        self._path_cache: dict[int, tuple[int, ...]] = {}

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self, state: ExecutionState) -> None:
        if self._procs:
            return
        # Compile every kernel in the parent before forking: workers receive
        # the full cache once, at startup, and never compile anything —
        # native shared objects are dlopened here, so forked workers inherit
        # the loaded libraries without touching the compiler.
        if state.kernels is not None:
            state.kernels.warm(
                state.options.use_windows,
                tier=getattr(state.options, "kernel_tier", "native"),
            )
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        for _ in range(self.workers):
            p = self._ctx.Process(
                target=_pool_worker,
                args=(self, state, self._task_q, self._result_q),
                daemon=True,
            )
            p.start()
            self._procs.append(p)

    def _array_specs(self, state: ExecutionState) -> dict[str, tuple]:
        specs: dict[str, tuple] = {}
        for name, val in state.data.items():
            if not isinstance(val, RuntimeArray):
                continue
            seg = self.segment_name_for(val.storage)
            if seg is not None:
                specs[name] = (
                    seg,
                    val.storage.shape,
                    val.storage.dtype.str,
                    tuple(val.los),
                    tuple(val.his),
                    dict(val.windows),
                )
        return specs

    def _path_for(self, state: ExecutionState, desc: LoopDescriptor):
        path = self._path_cache.get(id(desc))
        if path is None:
            path = state.flowchart.path_of(desc)
            if path is None:
                raise ExecutionError(
                    f"descriptor for DOALL {desc.index} is not part of the "
                    f"executing flowchart"
                )
            self._path_cache[id(desc)] = path
        return path

    # -- dispatch ----------------------------------------------------------

    def dispatch_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        if state.options.debug_windows:
            # A window-debug run: workers must re-inherit the
            # fault-injection tag arrays every wavefront.
            super().dispatch_chunks(state, desc, spans, env, vector_names)
            return
        self._pool_wavefront(state, desc, spans, env, kind="span", fuse=True)

    def dispatch_flat_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        fuse: bool,
    ) -> None:
        if state.options.debug_windows:
            super().dispatch_flat_chunks(state, desc, spans, env, fuse)
            return
        self._pool_wavefront(state, desc, spans, env, kind="flat", fuse=fuse)

    def _pool_wavefront(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        kind: str,
        fuse: bool,
    ) -> None:
        self._ensure_pool(state)
        path = self._path_for(state, desc)
        scalars = {
            k: v
            for k, v in state.data.items()
            if not isinstance(v, RuntimeArray)
        }
        specs = self._array_specs(state)
        batch: set[int] = set()
        for clo, chi in spans:
            task_id = self._task_seq
            self._task_seq += 1
            batch.add(task_id)
            self._task_q.put(
                (task_id, kind, path, clo, chi, env, scalars, specs, fuse)
            )
        # The barrier: every chunk of the wavefront completes (or fails)
        # before the next descriptor runs.
        failures: list[str] = []
        remaining = set(batch)
        while remaining:
            try:
                task_id, status, payload = self._result_q.get(timeout=0.1)
            except queue_mod.Empty:
                if any(p.exitcode is not None for p in self._procs):
                    codes = [p.exitcode for p in self._procs]
                    raise ExecutionError(
                        f"DOALL {desc.index} pool worker died "
                        f"(exit codes {codes})"
                    ) from None
                continue
            if task_id not in remaining:
                continue  # stray result from an aborted batch
            remaining.discard(task_id)
            if status == "ok":
                state.merge_counts(payload)
            else:
                failures.append(payload)
        if failures:
            raise ExecutionError(
                f"DOALL {desc.index} worker failed: " + "; ".join(failures)
            )

    def close(self) -> None:
        if self._procs:
            for _ in self._procs:
                try:
                    self._task_q.put(None)
                except Exception:
                    pass
            for p in self._procs:
                p.join(timeout=5)
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1)
            self._procs = []
            for q in (self._task_q, self._result_q):
                if q is not None:
                    q.close()
                    q.cancel_join_thread()
            self._task_q = None
            self._result_q = None
        self._path_cache.clear()
        super().close()
