"""Process backend: forked wavefront workers over shared-memory arrays.

Target arrays are materialised in ``multiprocessing.shared_memory`` (the
storage-factory hook), so worker processes forked at each wavefront write
their chunk's elements directly into the planes the parent — and every
other worker — maps. Joining all workers is the per-wavefront barrier;
eval-count statistics travel back over a queue.

Fork is required (the child must inherit the interpreter state without
pickling); on platforms without it the backend degrades gracefully to
running the chunks in-process, preserving semantics without parallelism.
Result arrays are copied out before the shared segments are unlinked.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.runtime.backends.base import ExecutionState
from repro.runtime.backends.threaded import ChunkedBackend
from repro.schedule.flowchart import LoopDescriptor


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ProcessBackend(ChunkedBackend):
    name = "process"

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self._segments: list[shared_memory.SharedMemory] = []
        self._ctx = (
            multiprocessing.get_context("fork") if _fork_available() else None
        )

    # -- storage -----------------------------------------------------------

    def make_storage(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        if self._ctx is None:
            return np.zeros(shape, dtype=dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        self._segments.append(shm)
        arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        arr[...] = 0
        return arr

    def export_result(self, array: np.ndarray) -> np.ndarray:
        # Results must outlive the shared segments backing them.
        return np.array(array)

    def close(self) -> None:
        for shm in self._segments:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        # The mappings themselves are released when the last NumPy view is
        # garbage collected; close() here would raise BufferError while
        # exported views exist.
        self._segments.clear()

    # -- dispatch ----------------------------------------------------------

    def dispatch_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        if self._ctx is None:
            for clo, chi in spans:
                self.exec_vector_span(state, desc, clo, chi, env, vector_names)
            return
        queue = self._ctx.SimpleQueue()
        procs = []
        for clo, chi in spans:
            sub = state.fork()
            p = self._ctx.Process(
                target=self._run_chunk,
                args=(sub, desc, clo, chi, env, vector_names, queue),
                daemon=True,
            )
            p.start()
            procs.append(p)
        # The barrier: the wavefront retires only when every chunk has.
        # Drain the queue *while* joining — a child blocked in put() (its
        # payload exceeding the pipe buffer) would otherwise never exit
        # and the bare join would deadlock.
        messages: list[tuple[str, Any]] = []
        pending = list(procs)
        while pending:
            while not queue.empty():
                messages.append(queue.get())
            for p in pending[:]:
                p.join(timeout=0.01)
                if p.exitcode is not None:
                    pending.remove(p)
        while not queue.empty():
            messages.append(queue.get())
        failures: list[str] = []
        for status, payload in messages:
            if status == "ok":
                state.merge_counts(payload)
            else:
                failures.append(payload)
        queue.close()
        if failures:
            raise ExecutionError(
                f"DOALL {desc.index} worker failed: " + "; ".join(failures)
            )
        if any(p.exitcode != 0 for p in procs):
            codes = [p.exitcode for p in procs]
            raise ExecutionError(
                f"DOALL {desc.index} worker died (exit codes {codes})"
            )

    def _run_chunk(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
        queue,
    ) -> None:
        try:
            self.exec_vector_span(state, desc, lo, hi, env, vector_names)
            queue.put(("ok", state.eval_counts))
        except BaseException as exc:  # noqa: BLE001 — reported to the parent
            queue.put(("error", f"{type(exc).__name__}: {exc}"))
