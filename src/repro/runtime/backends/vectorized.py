"""Vectorized backend: each DOALL dimension becomes a NumPy axis.

A ``DOALL`` subrange executes as one NumPy operation over the whole index
range; nested DOALLs broadcast against each other (outer indices gain a
trailing axis). An inner ``DO`` nested under a vectorised ``DOALL`` keeps
its own scalar loop — e.g. the ``DOALL R (DO C (...))`` schedule of
per-row scans.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.runtime.backends.base import ExecutionBackend, ExecutionState
from repro.schedule.flowchart import LoopDescriptor


class VectorizedBackend(ExecutionBackend):
    name = "vectorized"

    def exec_parallel_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        self.exec_vector_span(state, desc, lo, hi, env, vector_names)

    def exec_vector_span(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        """Run one contiguous subrange of a DOALL as a vector operation.
        The chunked backends reuse this per worker chunk."""
        env2 = dict(env)
        for vn in vector_names:
            env2[vn] = np.asarray(env2[vn])[..., None]
        env2[desc.index] = np.arange(lo, hi + 1)
        for d in desc.body:
            self.exec_descriptor(state, d, env2, vector_names + [desc.index])
