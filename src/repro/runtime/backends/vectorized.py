"""Vectorized backend: each DOALL dimension becomes a NumPy axis.

Under a vector plan a ``DOALL`` subrange executes as one NumPy operation
over the whole index range; nested DOALLs broadcast against each other
(outer indices gain a trailing axis). An inner ``DO`` nested under a
vectorised ``DOALL`` keeps its own scalar loop — e.g. the ``DOALL R (DO C
(...))`` schedule of per-row scans. The span machinery itself lives in
:class:`~repro.runtime.backends.base.ExecutionBackend` (every backend runs
vector spans — the chunked backends per worker chunk).
"""

from __future__ import annotations

from repro.runtime.backends.base import ExecutionBackend


class VectorizedBackend(ExecutionBackend):
    name = "vectorized"
