"""The execution-backend interface and the shared flowchart walk.

A backend *executes* a scheduled flowchart according to an
:class:`~repro.plan.ir.ExecutionPlan`. All backends share one walk
(sequential ``DO`` loops, equation evaluation, lazy target allocation) and
one strategy dispatch — a ``DOALL`` runs by whatever its
:class:`~repro.plan.ir.LoopPlan` says:

* ``serial`` / ``iterate`` — scalar iterations in subrange order (the
  reference semantics; ``iterate`` exists so a low-trip outer DOALL hands
  the workers to a chunked inner loop);
* ``nest`` — the whole nest as one fused compiled kernel;
* ``vector`` — the whole subrange as one NumPy operation;
* ``chunk`` — the subrange split into contiguous chunks handed to
  :meth:`ExecutionBackend.dispatch_chunks`, the one hook the parallel
  backends override (:class:`~repro.runtime.backends.threaded.ThreadedBackend`
  submits chunks to a thread pool;
  :class:`~repro.runtime.backends.process.ProcessBackend` to a persistent
  pool of forked workers over shared memory, with a barrier per wavefront).

No backend re-derives chunking, safety, or kernel decisions from the
flowchart: those live in the plan, produced once per execution by
:mod:`repro.plan.planner` (a state constructed without a plan gets one
built on first use, so hand-built executions behave identically — the
planner remains the single decision point). Equation evaluation dispatches
through the compiled-kernel cache when one is attached to the state (see
:mod:`repro.runtime.kernels`); the tree-walking evaluator remains the
fallback.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.ps.semantics import AnalyzedEquation, AnalyzedModule, AnalyzedProgram
from repro.ps.symbols import SymbolKind
from repro.ps.types import ArrayType
from repro.runtime.evaluator import Evaluator
from repro.runtime.values import (
    RuntimeArray,
    StorageFactory,
    array_bounds,
    default_storage,
    eval_bound,
)
from repro.schedule.flowchart import (
    Descriptor,
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
    collapse_chain,
    equation_vector_safe,
    loop_chunk_safe,
    split_range,
)


@dataclass
class ExecutionState:
    """Everything one module execution mutates: the data environment,
    evaluation statistics, and the storage factory backends plug in."""

    analyzed: AnalyzedModule
    flowchart: Flowchart
    options: Any  # ExecutionOptions (kept untyped to avoid an import cycle)
    data: dict[str, Any]
    evaluator: Evaluator
    program: AnalyzedProgram | None = None
    #: statistics: equation label -> number of element evaluations
    eval_counts: dict[str, int] = field(default_factory=dict)
    #: how target arrays are materialised (process backend: shared memory)
    storage_factory: StorageFactory = default_storage
    #: compiled-kernel cache (None: evaluate everything on the tree walk)
    kernels: Any = None  # KernelCache | None (untyped: import cycle)
    #: the ExecutionPlan driving strategy dispatch (built lazily when a
    #: state is constructed by hand without one)
    plan: Any = None  # ExecutionPlan | None (untyped: import cycle)

    def plan_of(self, desc, backend: str | None = None):
        """The LoopPlan for ``desc``, building the module plan on first
        use — the planner, not the backend, owns every strategy decision.
        ``backend`` pins the lazily built plan to the backend actually
        walking the state (a hand-driven walk must not execute under a
        plan costed for a different backend)."""
        if self.plan is None:
            from repro.plan.planner import build_plan

            self.plan = build_plan(
                self.analyzed,
                self.flowchart,
                self.options,
                self.scalar_env(),
                backend=backend,
            )
        return self.plan.loop_for(desc)

    def scalar_env(self) -> dict[str, int]:
        return {
            k: int(v)
            for k, v in self.data.items()
            if isinstance(v, (int, np.integer))
        }

    def fork(self) -> ExecutionState:
        """A shallow copy with private eval counts, for one worker chunk.
        The data environment stays shared (threads) or becomes copy-on-write
        (forked processes); either way chunk workers only *write* array
        elements, which chunk-safety guarantees are disjoint."""
        return ExecutionState(
            self.analyzed,
            self.flowchart,
            self.options,
            self.data,
            self.evaluator,
            program=self.program,
            eval_counts={},
            storage_factory=self.storage_factory,
            kernels=self.kernels,
            plan=self.plan,
        )

    def merge_counts(self, counts: dict[str, int]) -> None:
        for label, n in counts.items():
            self.eval_counts[label] = self.eval_counts.get(label, 0) + n

    def kernel_for(self, eq: AnalyzedEquation, vector: bool):
        """The compiled kernel for ``eq`` (None: use the evaluator)."""
        if self.kernels is None:
            return None
        return self.kernels.kernel_for(eq, vector, self.options.use_windows)

    def kernel_tier(self) -> str:
        """The nest-kernel tier this execution looks up first
        (``"native"`` unless the options narrowed it)."""
        return getattr(self.options, "kernel_tier", "native")


def equation_is_vector_safe(eq: AnalyzedEquation) -> bool:
    """Cached vector-safety verdict (see ``repro.schedule.flowchart``)."""
    return equation_vector_safe(eq)


def chunk_safe(state: ExecutionState, desc: LoopDescriptor) -> bool:
    """Cached chunk-safety verdict: precomputed at flowchart-build time by
    :func:`repro.schedule.flowchart.annotate_flowchart`, derived on first
    use for hand-built flowcharts."""
    return loop_chunk_safe(
        desc, state.analyzed, state.flowchart.windows, state.options.use_windows
    )


class ExecutionBackend:
    """Base class: the shared walk plus the hooks backends override."""

    #: registry key, e.g. ``"serial"`` — set by each subclass
    name = "base"

    #: whether a long-lived owner (a serve :class:`Session`) must
    #: serialise concurrent runs on one instance — the process backends
    #: stream every run's wavefronts through one task/result queue pair,
    #: so interleaved runs would consume each other's results
    serialize_runs = False

    def __init__(self, workers: int | None = None):
        self.workers = max(1, workers if workers is not None else os.cpu_count() or 1)

    # -- lifecycle ---------------------------------------------------------

    def run(self, state: ExecutionState) -> None:
        """Execute the whole flowchart against ``state``."""
        state.storage_factory = self.make_storage
        if state.kernels is not None:
            # Kernels with module calls dispatch through the cache's call
            # box; point it at this execution's handler before anything runs
            # (forked pool workers inherit the binding with the cache).
            state.kernels.bind_call_fn(state.evaluator.call_fn)
        if state.plan is None:
            # A hand-built state: plan for *this* backend (the executor
            # normally supplies the plan and instantiates plan.backend).
            from repro.plan.planner import build_plan

            state.plan = build_plan(
                state.analyzed,
                state.flowchart,
                state.options,
                state.scalar_env(),
                backend=self.name,
            )
        self.exec_descriptor_list(state, state.flowchart.descriptors, {}, [])

    def end_run(self) -> None:
        """Release *per-run* resources (e.g. this run's shared-memory
        segments) while keeping long-lived ones — worker pools, warmed
        caches — for the next run. Called after results are exported when
        the backend's lifetime outlives one execution (a
        :class:`~repro.serve.session.Session` owns such backends);
        :meth:`close` implies it."""

    def close(self) -> None:
        """Release pools/segments. Called after results are exported."""
        self.end_run()

    # -- storage hooks -----------------------------------------------------

    def make_storage(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        return default_storage(shape, dtype)

    def export_result(self, array: np.ndarray) -> np.ndarray:
        """Detach a result from backend-owned storage (a no-op unless the
        storage dies with the backend, as shared memory does)."""
        return array

    # -- the walk ----------------------------------------------------------

    def exec_descriptor(
        self,
        state: ExecutionState,
        desc: Descriptor,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        if isinstance(desc, NodeDescriptor):
            if desc.node.is_equation:
                self.exec_equation(state, desc.node.equation, env, vector_names)
            return
        assert isinstance(desc, LoopDescriptor)
        scalar_env = state.scalar_env()
        lo = eval_bound(desc.subrange.lo, scalar_env)
        hi = eval_bound(desc.subrange.hi, scalar_env)
        if hi < lo:
            return
        plan = None if vector_names else state.plan_of(desc, self.name)
        if plan is not None and plan.strategy == "fission":
            self.exec_fission_loop(state, desc, lo, hi, env)
            return
        if desc.parallel:
            self.exec_parallel_loop(state, desc, lo, hi, env, vector_names)
        else:
            if plan is not None and plan.strategy == "scan":
                self.exec_scan_loop(state, desc, lo, hi, env)
                return
            self.exec_sequential_loop(state, desc, lo, hi, env, vector_names)

    def exec_fission_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
    ) -> None:
        """Run a loop planned as a dependence split: one replica loop per
        group, in topological order over the full subrange. The replicas
        are planned descriptors in their own right (marker paths), so the
        ordinary sibling walk applies — a promoted piece runs its DOALL
        strategy, a lone recurrence its scan, a decoupled replica run its
        pipeline group. Each equation lands in exactly one replica, so
        evaluation counts match the unfissioned walk."""
        from repro.schedule.fission import fission_split

        split = fission_split(
            state.analyzed, state.flowchart, desc, state.options.use_windows
        )
        if split is None:
            # Memoized at annotate time; missing means a foreign flowchart
            # copy — run the loop as scheduled (bit-exact, just unsplit).
            self.exec_sequential_loop(state, desc, lo, hi, env, [])
            return
        self.exec_descriptor_list(state, list(split.pieces), env, [])

    def exec_scan_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
    ) -> None:
        """Run a ``DO`` loop planned as a blocked scan. The base backend
        has no worker pool, so this is the in-order reference fallback
        (serial/vectorized/process); the threaded backends override it
        with the three-phase parallel engine."""
        self.exec_sequential_loop(state, desc, lo, hi, env, [])

    def exec_sequential_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        for i in range(lo, hi + 1):
            env2 = dict(env)
            env2[desc.index] = i
            self.exec_descriptor_list(state, desc.body, env2, vector_names)

    def exec_descriptor_list(
        self,
        state: ExecutionState,
        descs: list[Descriptor] | tuple[Descriptor, ...],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        """Walk a sibling sequence in flowchart order, recognising pipeline
        groups: when a loop's plan is the head of a decoupled sibling run
        (strategy ``"pipeline"`` with its stage structure attached), the
        whole run is handed to :meth:`exec_pipeline_group` as one unit.
        Inside a vector span the plan is already spent, so groups are only
        recognised on the scalar walk."""
        i = 0
        n = len(descs)
        while i < n:
            desc = descs[i]
            if not vector_names and isinstance(desc, LoopDescriptor):
                plan = state.plan_of(desc, self.name)
                if (
                    plan is not None
                    and plan.strategy == "pipeline"
                    and plan.stages
                    and plan.group_size
                    and i + plan.group_size <= n
                ):
                    self.exec_pipeline_group(
                        state, list(descs[i : i + plan.group_size]), plan, env
                    )
                    i += plan.group_size
                    continue
            self.exec_descriptor(state, desc, env, vector_names)
            i += 1

    #: how a DOALL with no LoopPlan runs (hand-built flowcharts whose
    #: descriptors are not part of the state's planned flowchart)
    fallback_strategy = "vector"

    def exec_parallel_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        """Run a DOALL by its LoopPlan. Inside a vector span the nest is
        already one NumPy operation — nested DOALLs broadcast structurally
        and the plan has nothing left to decide."""
        if vector_names:
            self.exec_vector_span(state, desc, lo, hi, env, vector_names)
            return
        plan = state.plan_of(desc, self.name)
        strategy = plan.strategy if plan is not None else self.fallback_strategy
        if strategy == "nest":
            if self.exec_nest_kernel(state, desc, lo, hi, env):
                return
            strategy = "serial"  # kernels unavailable: the reference walk
        if strategy in ("serial", "iterate"):
            self.exec_sequential_loop(state, desc, lo, hi, env, vector_names)
        elif strategy == "vector":
            self.exec_vector_span(state, desc, lo, hi, env, vector_names)
        elif strategy == "chunk":
            self.exec_chunked_loop(state, desc, lo, hi, env, vector_names, plan)
        elif strategy == "collapse":
            self.exec_collapsed_loop(state, desc, lo, hi, env, plan)
        elif strategy == "pipeline":
            # A group member reached outside its group walk (e.g. a
            # hand-driven walk of one descriptor): run the subrange as one
            # span — bit-exact, just undecoupled.
            self.exec_chunk_span(state, desc, lo, hi, env, vector_names)
        elif strategy == "fission":
            # Normally intercepted in exec_descriptor; kept for direct calls.
            self.exec_fission_loop(state, desc, lo, hi, env)
        else:
            raise ExecutionError(f"unknown plan strategy {strategy!r}")

    def exec_vector_span(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        """Run one contiguous subrange of a DOALL as a vector operation.
        The chunked backends reuse this per worker chunk."""
        env2 = dict(env)
        for vn in vector_names:
            env2[vn] = np.asarray(env2[vn])[..., None]
        env2[desc.index] = np.arange(lo, hi + 1)
        for d in desc.body:
            self.exec_descriptor(state, d, env2, vector_names + [desc.index])

    def exec_nest_kernel(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        variant: str = "full",
    ) -> bool:
        """Run the whole nest through its fused compiled kernel — the
        native (C) tier first, then the NumPy tier; False when no kernel is
        available (the caller falls back to the scalar walk). ``variant``
        selects the emission (``"seq"``: the in-order nest a pipeline
        sequential stage runs block-wise)."""
        if state.kernels is None:
            return False
        kernel = state.kernels.nest_kernel_for(
            desc, state.options.use_windows, variant=variant,
            tier=state.kernel_tier(),
        )
        if kernel is None:
            return False
        for eq in desc.nested_equations():
            self.ensure_targets(state, eq)
        try:
            counts = kernel(state.data, env, lo, hi)
        except KeyError as exc:
            raise ExecutionError(f"unbound name {exc.args[0]!r}") from None
        state.merge_counts(counts)
        return True

    def exec_chunked_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
        plan: Any,
    ) -> None:
        """Split the subrange into the planned chunk count and hand the
        spans to :meth:`dispatch_chunks`. Targets are allocated up front so
        workers never race on the data environment — inside a chunk they
        only write array elements, which the planner's chunk-safety verdict
        guarantees are disjoint."""
        parts = plan.parts if plan is not None and plan.parts else self.workers
        for eq in desc.nested_equations():
            self.ensure_targets(state, eq)
        spans = split_range(lo, hi, parts)
        if len(spans) < 2:
            self.exec_chunk_span(state, desc, lo, hi, env, vector_names)
            return
        self.dispatch_chunks(state, desc, spans, env, vector_names)

    def exec_native_span(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
    ) -> bool:
        """Run one chunk subrange through the composite native span kernel
        (one C function per equation); False when the span is not natively
        available so the caller falls through to ``exec_vector_span``.
        Targets are pre-allocated by the chunk dispatcher before spans run,
        so the kernel only writes disjoint elements."""
        if state.kernels is None or state.kernel_tier() != "native":
            return False
        kernel = state.kernels.span_kernel_for(desc, state.options.use_windows)
        if kernel is None:
            return False
        try:
            counts = kernel(state.data, env, lo, hi)
        except KeyError as exc:
            raise ExecutionError(f"unbound name {exc.args[0]!r}") from None
        state.merge_counts(counts)
        return True

    def exec_chunk_span(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        """One worker's chunk of a chunk-dispatched DOALL: the native span
        kernel when one compiles (cffi releases the GIL around the C call,
        so threaded chunks genuinely overlap), the NumPy per-equation
        distribution otherwise."""
        if not vector_names and self.exec_native_span(state, desc, lo, hi, env):
            return
        self.exec_vector_span(state, desc, lo, hi, env, vector_names)

    def dispatch_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        """Execute the chunk spans. The base implementation runs them
        inline — a plan forced onto a backend without a worker pool stays
        correct, just not concurrent; the parallel backends override this
        with their pools."""
        for clo, chi in spans:
            self.exec_chunk_span(state, desc, clo, chi, env, vector_names)

    # -- pipeline groups ---------------------------------------------------

    def exec_seq_block(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
    ) -> None:
        """One in-order block of a pipeline *sequential* stage: the fused
        ``"seq"``-variant nest kernel when the nest lowers, the strictly
        ordered per-iteration walk otherwise (whose inner loops were
        planned in-stage, so they never re-enter a worker pool)."""
        if self.exec_nest_kernel(state, desc, lo, hi, env, variant="seq"):
            return
        for i in range(lo, hi + 1):
            env2 = dict(env)
            env2[desc.index] = i
            for d in desc.body:
                self.exec_descriptor(state, d, env2, [])

    def exec_rep_block(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
    ) -> None:
        """One frontier-released block of a pipeline *replicated* stage —
        exactly a chunk span (native span kernel when one compiles, the
        NumPy distribution otherwise)."""
        self.exec_chunk_span(state, desc, lo, hi, env, [])

    def exec_pipeline_group(
        self,
        state: ExecutionState,
        descs: list[Descriptor],
        plan: Any,
        env: dict[str, Any],
    ) -> None:
        """Execute one pipeline group (the run of sibling loops whose head
        carries ``plan``). The base implementation executes the member
        loops whole, in flowchart order — sequential members through the
        in-order stage path, replicated members as one span — which *is*
        the reference order, so a pipeline plan forced onto a backend
        without the decoupled engine stays correct, just not concurrent.
        :class:`~repro.runtime.backends.threaded.ThreadedBackend` overrides
        this with the block-decoupled stage engine."""
        scalar_env = state.scalar_env()
        for desc in descs:
            assert isinstance(desc, LoopDescriptor)
            for eq in desc.nested_equations():
                self.ensure_targets(state, eq)
        for desc in descs:
            lo = eval_bound(desc.subrange.lo, scalar_env)
            hi = eval_bound(desc.subrange.hi, scalar_env)
            if hi < lo:
                continue
            if desc.parallel:
                self.exec_rep_block(state, desc, lo, hi, env)
            else:
                self.exec_seq_block(state, desc, lo, hi, env)

    # -- collapsed nests ---------------------------------------------------

    def _flat_geometry(
        self, state: ExecutionState, desc: LoopDescriptor, lo: int, hi: int
    ) -> tuple[list[LoopDescriptor], list[Descriptor], list[int], list[int]]:
        """(chain, body-below-chain, per-loop lows, per-loop extents) of the
        collapsed iteration space rooted at ``desc``; ``[lo, hi]`` is the
        root subrange already evaluated by the caller."""
        chain, chain_body = collapse_chain(desc)
        scalar_env = state.scalar_env()
        los = [lo]
        extents = [max(0, hi - lo + 1)]
        for loop in chain[1:]:
            llo = eval_bound(loop.subrange.lo, scalar_env)
            lhi = eval_bound(loop.subrange.hi, scalar_env)
            los.append(llo)
            extents.append(max(0, lhi - llo + 1))
        return chain, chain_body, los, extents

    def exec_collapsed_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        plan: Any,
    ) -> None:
        """Run a collapse-planned DOALL chain: flatten the perfect nest
        into one ``[0, prod(extents) - 1]`` iteration space, split it into
        the planned chunk count, and hand the *flat* subranges to
        :meth:`dispatch_flat_chunks`. Each chunk executes through the
        chunk-parameterized fused nest kernel (per-equation scalar walk
        when no kernel is available or the plan disabled fusion)."""
        _chain, _body, _los, extents = self._flat_geometry(state, desc, lo, hi)
        flat = 1
        for n in extents:
            flat *= n
        if flat <= 0:
            return
        for eq in desc.nested_equations():
            self.ensure_targets(state, eq)
        parts = plan.parts if plan is not None and plan.parts else self.workers
        fuse = plan.fuse if plan is not None else True
        spans = split_range(0, flat - 1, parts)
        if len(spans) < 2:
            self.exec_flat_span(state, desc, 0, flat - 1, env, fuse)
            return
        self.dispatch_flat_chunks(state, desc, spans, env, fuse)

    def exec_flat_span(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        flo: int,
        fhi: int,
        env: dict[str, Any],
        fuse: bool = True,
    ) -> None:
        """Execute one contiguous flat subrange of a collapsed chain —
        through the fused flat-variant nest kernel when available, else by
        the delinearized per-equation walk. The chunked backends reuse
        this per worker chunk."""
        kernel = None
        if fuse and state.kernels is not None:
            kernel = state.kernels.nest_kernel_for(
                desc, state.options.use_windows, variant="flat",
                tier=state.kernel_tier(),
            )
        if kernel is not None:
            try:
                counts = kernel(state.data, env, flo, fhi)
            except KeyError as exc:
                raise ExecutionError(f"unbound name {exc.args[0]!r}") from None
            state.merge_counts(counts)
            return
        self.exec_flat_walk(state, desc, flo, fhi, env)

    def exec_flat_walk(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        flo: int,
        fhi: int,
        env: dict[str, Any],
    ) -> None:
        """The per-equation reference path over a flat subrange: recover
        the chain indices from each flat offset (row-major, innermost
        fastest — ascending flat order is exactly the serial nest order)
        and walk the body descriptors element by element. The body walk is
        *strictly serial* and never consults loop plans: this path may
        already be running inside a pool worker, and a body DOALL planned
        "collapse"/"chunk" re-entering chunk dispatch would block on the
        very pool executing it."""
        scalar_env = state.scalar_env()
        lo = eval_bound(desc.subrange.lo, scalar_env)
        hi = eval_bound(desc.subrange.hi, scalar_env)
        chain, chain_body, los, extents = self._flat_geometry(
            state, desc, lo, hi
        )
        for flat in range(flo, fhi + 1):
            env2 = dict(env)
            r = flat
            for k in range(len(chain) - 1, 0, -1):
                env2[chain[k].index] = r % extents[k] + los[k]
                r //= extents[k]
            env2[chain[0].index] = r + los[0]
            for d in chain_body:
                self._exec_descriptor_strictly_serial(state, d, env2)

    def _exec_descriptor_strictly_serial(
        self, state: ExecutionState, desc: Descriptor, env: dict[str, Any]
    ) -> None:
        """Execute a descriptor in subrange order, treating every loop —
        parallel or not — as a sequential scalar loop (the reference
        semantics, ignoring plans)."""
        if isinstance(desc, NodeDescriptor):
            if desc.node.is_equation:
                self.exec_equation(state, desc.node.equation, env, [])
            return
        assert isinstance(desc, LoopDescriptor)
        scalar_env = state.scalar_env()
        lo = eval_bound(desc.subrange.lo, scalar_env)
        hi = eval_bound(desc.subrange.hi, scalar_env)
        for i in range(lo, hi + 1):
            env2 = dict(env)
            env2[desc.index] = i
            for d in desc.body:
                self._exec_descriptor_strictly_serial(state, d, env2)

    def dispatch_flat_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        fuse: bool,
    ) -> None:
        """Execute the flat chunk spans. Inline in the base (correct
        without a pool); the parallel backends override this alongside
        :meth:`dispatch_chunks`."""
        for flo, fhi in spans:
            self.exec_flat_span(state, desc, flo, fhi, env, fuse)

    # -- equations ---------------------------------------------------------

    def exec_equation(
        self,
        state: ExecutionState,
        eq: AnalyzedEquation,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        vector = bool(vector_names)
        if vector and not equation_is_vector_safe(eq):
            self._exec_equation_scalar_fallback(state, eq, env, vector_names)
            return

        if eq.atomic:
            self._exec_atomic(state, eq, env)
            return

        self.ensure_targets(state, eq)
        kernel = state.kernel_for(eq, vector)
        if kernel is not None:
            try:
                count = kernel(state.data, env)
            except KeyError as exc:
                # A missing data/env binding inside a kernel is the
                # evaluator's "unbound name" error.
                raise ExecutionError(f"unbound name {exc.args[0]!r}") from None
            state.eval_counts[eq.label] = (
                state.eval_counts.get(eq.label, 0) + count
            )
            return
        value = state.evaluator.eval(eq.rhs, env, vector=vector)
        state.eval_counts[eq.label] = state.eval_counts.get(eq.label, 0) + (
            int(np.size(value)) if vector else 1
        )
        target = eq.targets[0]
        holder = state.data.get(target.name)
        if isinstance(holder, RuntimeArray):
            subs = [
                state.evaluator.eval(s, env, vector=vector)
                for s in target.subscripts
            ]
            holder.set(subs, value)
        else:
            state.data[target.name] = (
                value.item() if isinstance(value, np.ndarray) else value
            )

    def _exec_equation_scalar_fallback(
        self,
        state: ExecutionState,
        eq: AnalyzedEquation,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        """Iterate the vectorised indices element by element."""
        shape = _broadcast_shape(env, vector_names)
        grids = [
            np.broadcast_to(np.asarray(env[vn]), shape) for vn in vector_names
        ]
        flat = [g.reshape(-1) for g in grids]
        for i in range(flat[0].size if flat else 1):
            env2 = dict(env)
            for vn, g in zip(vector_names, flat):
                env2[vn] = int(g[i])
            self.exec_equation(state, eq, env2, [])

    def _exec_atomic(
        self, state: ExecutionState, eq: AnalyzedEquation, env: dict[str, Any]
    ) -> None:
        value = state.evaluator.eval(eq.rhs, env, vector=False)
        values = value if isinstance(value, tuple) else (value,)
        if len(values) != len(eq.targets):
            raise ExecutionError(
                f"{eq.label}: expected {len(eq.targets)} results, got {len(values)}"
            )
        for target, v in zip(eq.targets, values):
            sym = state.analyzed.symbol(target.name)
            if isinstance(sym.type, ArrayType):
                dense = v.to_numpy() if isinstance(v, RuntimeArray) else np.asarray(v)
                bounds = array_bounds(sym.type, state.scalar_env())
                state.data[target.name] = RuntimeArray.from_numpy(
                    target.name,
                    dense,
                    bounds,
                    storage_factory=state.storage_factory,
                )
            else:
                state.data[target.name] = v
        state.eval_counts[eq.label] = state.eval_counts.get(eq.label, 0) + 1

    def ensure_targets(self, state: ExecutionState, eq: AnalyzedEquation) -> None:
        """Allocate target arrays on first definition."""
        for target in eq.targets:
            if target.name in state.data:
                continue
            sym = state.analyzed.symbol(target.name)
            if isinstance(sym.type, ArrayType):
                bounds = array_bounds(sym.type, state.scalar_env())
                windows: dict[int, int] = {}
                if state.options.use_windows and sym.kind is SymbolKind.VAR:
                    windows = dict(state.flowchart.window_of(target.name))
                state.data[target.name] = RuntimeArray.allocate(
                    target.name,
                    sym.type.element,
                    bounds,
                    windows=windows,
                    debug=state.options.debug_windows,
                    storage_factory=state.storage_factory,
                )
            # Scalars are created on assignment.


def _broadcast_shape(env: dict[str, Any], vector_names: list[str]):
    shapes = [np.asarray(env[vn]).shape for vn in vector_names]
    return np.broadcast_shapes(*shapes) if shapes else ()
