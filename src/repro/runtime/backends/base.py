"""The execution-backend interface and the shared flowchart walk.

A backend is a strategy for *executing* a scheduled flowchart. All backends
share one walk (sequential ``DO`` loops, equation evaluation, lazy target
allocation); they differ only in how a ``DOALL`` subrange is run:

* :class:`~repro.runtime.backends.serial.SerialBackend` — one scalar
  iteration at a time (the reference semantics);
* :class:`~repro.runtime.backends.vectorized.VectorizedBackend` — the whole
  subrange as one NumPy operation;
* :class:`~repro.runtime.backends.threaded.ThreadedBackend` — chunked
  subranges on a thread pool (NumPy kernels release the GIL);
* :class:`~repro.runtime.backends.process.ProcessBackend` — chunked
  subranges on a persistent pool of forked workers writing to shared-memory
  arrays, with a barrier per wavefront (and
  :class:`~repro.runtime.backends.process.ForkProcessBackend`, the
  fork-per-wavefront baseline it replaced).

Equation evaluation dispatches through the compiled-kernel cache when one
is attached to the state (see :mod:`repro.runtime.kernels`); the tree-
walking evaluator remains the fallback. The chunked backends rely on the
``DOALL`` guarantee that iterations are independent; :func:`chunk_safe`
additionally rejects nests whose execution would race on shared interpreter
state (scalar targets, atomic equations, windowed dimensions subscripted by
a nest index).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.ps.semantics import AnalyzedEquation, AnalyzedModule, AnalyzedProgram
from repro.ps.symbols import SymbolKind
from repro.ps.types import ArrayType
from repro.runtime.evaluator import Evaluator
from repro.runtime.values import (
    RuntimeArray,
    StorageFactory,
    array_bounds,
    default_storage,
    eval_bound,
)
from repro.schedule.flowchart import (
    Descriptor,
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
    equation_vector_safe,
    loop_chunk_safe,
)


@dataclass
class ExecutionState:
    """Everything one module execution mutates: the data environment,
    evaluation statistics, and the storage factory backends plug in."""

    analyzed: AnalyzedModule
    flowchart: Flowchart
    options: Any  # ExecutionOptions (kept untyped to avoid an import cycle)
    data: dict[str, Any]
    evaluator: Evaluator
    program: AnalyzedProgram | None = None
    #: statistics: equation label -> number of element evaluations
    eval_counts: dict[str, int] = field(default_factory=dict)
    #: how target arrays are materialised (process backend: shared memory)
    storage_factory: StorageFactory = default_storage
    #: compiled-kernel cache (None: evaluate everything on the tree walk)
    kernels: Any = None  # KernelCache | None (untyped: import cycle)

    def scalar_env(self) -> dict[str, int]:
        return {
            k: int(v)
            for k, v in self.data.items()
            if isinstance(v, (int, np.integer))
        }

    def fork(self) -> ExecutionState:
        """A shallow copy with private eval counts, for one worker chunk.
        The data environment stays shared (threads) or becomes copy-on-write
        (forked processes); either way chunk workers only *write* array
        elements, which chunk-safety guarantees are disjoint."""
        return ExecutionState(
            self.analyzed,
            self.flowchart,
            self.options,
            self.data,
            self.evaluator,
            program=self.program,
            eval_counts={},
            storage_factory=self.storage_factory,
            kernels=self.kernels,
        )

    def merge_counts(self, counts: dict[str, int]) -> None:
        for label, n in counts.items():
            self.eval_counts[label] = self.eval_counts.get(label, 0) + n

    def kernel_for(self, eq: AnalyzedEquation, vector: bool):
        """The compiled kernel for ``eq`` (None: use the evaluator)."""
        if self.kernels is None:
            return None
        return self.kernels.kernel_for(eq, vector, self.options.use_windows)


def equation_is_vector_safe(eq: AnalyzedEquation) -> bool:
    """Cached vector-safety verdict (see ``repro.schedule.flowchart``)."""
    return equation_vector_safe(eq)


def chunk_safe(state: ExecutionState, desc: LoopDescriptor) -> bool:
    """Cached chunk-safety verdict: precomputed at flowchart-build time by
    :func:`repro.schedule.flowchart.annotate_flowchart`, derived on first
    use for hand-built flowcharts."""
    return loop_chunk_safe(
        desc, state.analyzed, state.flowchart.windows, state.options.use_windows
    )


class ExecutionBackend:
    """Base class: the shared walk plus the hooks backends override."""

    #: registry key, e.g. ``"serial"`` — set by each subclass
    name = "base"

    def __init__(self, workers: int | None = None):
        self.workers = max(1, workers if workers is not None else os.cpu_count() or 1)

    # -- lifecycle ---------------------------------------------------------

    def run(self, state: ExecutionState) -> None:
        """Execute the whole flowchart against ``state``."""
        state.storage_factory = self.make_storage
        for desc in state.flowchart.descriptors:
            self.exec_descriptor(state, desc, {}, [])

    def close(self) -> None:
        """Release pools/segments. Called after results are exported."""

    # -- storage hooks -----------------------------------------------------

    def make_storage(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        return default_storage(shape, dtype)

    def export_result(self, array: np.ndarray) -> np.ndarray:
        """Detach a result from backend-owned storage (a no-op unless the
        storage dies with the backend, as shared memory does)."""
        return array

    # -- the walk ----------------------------------------------------------

    def exec_descriptor(
        self,
        state: ExecutionState,
        desc: Descriptor,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        if isinstance(desc, NodeDescriptor):
            if desc.node.is_equation:
                self.exec_equation(state, desc.node.equation, env, vector_names)
            return
        assert isinstance(desc, LoopDescriptor)
        scalar_env = state.scalar_env()
        lo = eval_bound(desc.subrange.lo, scalar_env)
        hi = eval_bound(desc.subrange.hi, scalar_env)
        if hi < lo:
            return
        if desc.parallel:
            self.exec_parallel_loop(state, desc, lo, hi, env, vector_names)
        else:
            self.exec_sequential_loop(state, desc, lo, hi, env, vector_names)

    def exec_sequential_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        for i in range(lo, hi + 1):
            env2 = dict(env)
            env2[desc.index] = i
            for d in desc.body:
                self.exec_descriptor(state, d, env2, vector_names)

    def exec_parallel_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        raise NotImplementedError

    # -- equations ---------------------------------------------------------

    def exec_equation(
        self,
        state: ExecutionState,
        eq: AnalyzedEquation,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        vector = bool(vector_names)
        if vector and not equation_is_vector_safe(eq):
            self._exec_equation_scalar_fallback(state, eq, env, vector_names)
            return

        if eq.atomic:
            self._exec_atomic(state, eq, env)
            return

        self.ensure_targets(state, eq)
        kernel = state.kernel_for(eq, vector)
        if kernel is not None:
            try:
                count = kernel(state.data, env)
            except KeyError as exc:
                # A missing data/env binding inside a kernel is the
                # evaluator's "unbound name" error.
                raise ExecutionError(f"unbound name {exc.args[0]!r}") from None
            state.eval_counts[eq.label] = (
                state.eval_counts.get(eq.label, 0) + count
            )
            return
        value = state.evaluator.eval(eq.rhs, env, vector=vector)
        state.eval_counts[eq.label] = state.eval_counts.get(eq.label, 0) + (
            int(np.size(value)) if vector else 1
        )
        target = eq.targets[0]
        holder = state.data.get(target.name)
        if isinstance(holder, RuntimeArray):
            subs = [
                state.evaluator.eval(s, env, vector=vector)
                for s in target.subscripts
            ]
            holder.set(subs, value)
        else:
            state.data[target.name] = (
                value.item() if isinstance(value, np.ndarray) else value
            )

    def _exec_equation_scalar_fallback(
        self,
        state: ExecutionState,
        eq: AnalyzedEquation,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        """Iterate the vectorised indices element by element."""
        shape = _broadcast_shape(env, vector_names)
        grids = [
            np.broadcast_to(np.asarray(env[vn]), shape) for vn in vector_names
        ]
        flat = [g.reshape(-1) for g in grids]
        for i in range(flat[0].size if flat else 1):
            env2 = dict(env)
            for vn, g in zip(vector_names, flat):
                env2[vn] = int(g[i])
            self.exec_equation(state, eq, env2, [])

    def _exec_atomic(
        self, state: ExecutionState, eq: AnalyzedEquation, env: dict[str, Any]
    ) -> None:
        value = state.evaluator.eval(eq.rhs, env, vector=False)
        values = value if isinstance(value, tuple) else (value,)
        if len(values) != len(eq.targets):
            raise ExecutionError(
                f"{eq.label}: expected {len(eq.targets)} results, got {len(values)}"
            )
        for target, v in zip(eq.targets, values):
            sym = state.analyzed.symbol(target.name)
            if isinstance(sym.type, ArrayType):
                dense = v.to_numpy() if isinstance(v, RuntimeArray) else np.asarray(v)
                bounds = array_bounds(sym.type, state.scalar_env())
                state.data[target.name] = RuntimeArray.from_numpy(
                    target.name,
                    dense,
                    bounds,
                    storage_factory=state.storage_factory,
                )
            else:
                state.data[target.name] = v
        state.eval_counts[eq.label] = state.eval_counts.get(eq.label, 0) + 1

    def ensure_targets(self, state: ExecutionState, eq: AnalyzedEquation) -> None:
        """Allocate target arrays on first definition."""
        for target in eq.targets:
            if target.name in state.data:
                continue
            sym = state.analyzed.symbol(target.name)
            if isinstance(sym.type, ArrayType):
                bounds = array_bounds(sym.type, state.scalar_env())
                windows: dict[int, int] = {}
                if state.options.use_windows and sym.kind is SymbolKind.VAR:
                    windows = dict(state.flowchart.window_of(target.name))
                state.data[target.name] = RuntimeArray.allocate(
                    target.name,
                    sym.type.element,
                    bounds,
                    windows=windows,
                    debug=state.options.debug_windows,
                    storage_factory=state.storage_factory,
                )
            # Scalars are created on assignment.


def _broadcast_shape(env: dict[str, Any], vector_names: list[str]):
    shapes = [np.asarray(env[vn]).shape for vn in vector_names]
    return np.broadcast_shapes(*shapes) if shapes else ()
