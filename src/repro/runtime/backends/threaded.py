"""Threaded backends: planned DOALL chunks on a thread pool.

The planner splits a chunk-planned ``DOALL`` into balanced contiguous
chunks; each chunk runs through :meth:`~repro.runtime.backends.base.
ExecutionBackend.exec_chunk_span` — the *native span kernel* when the span
lowers to C (cffi's ABI mode releases the GIL around the C invocation, so
chunks genuinely overlap on today's GIL-ful CPython), the vectorised NumPy
path otherwise (NumPy kernels release the GIL too, but the per-equation
Python bookkeeping between them serialises). Waiting on all futures is the
per-wavefront barrier. Chunk-safety (scalar targets, atomic equations,
window aliasing) is the planner's concern: a DOALL this backend sees with
a ``vector`` or ``serial`` plan simply runs that strategy via the shared
base dispatch.

:class:`FreeThreadingBackend` is the same dispatch registered as
``free-threading``: on a no-GIL CPython build (3.13t/3.14 with the GIL
disabled) even the pure-Python spans overlap, so *every* chunk scales with
workers, not just the native ones. On a regular GIL build it degrades
cleanly to exactly :class:`ThreadedBackend` behaviour — same pool, same
dispatch — so pinning it is always safe.
"""

from __future__ import annotations

import heapq
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any

import numpy as np

from repro.runtime.backends.base import ExecutionBackend, ExecutionState
from repro.runtime.values import eval_bound
from repro.schedule.flowchart import Descriptor, LoopDescriptor, split_range

#: how many blocks a stage may run ahead of its downstream neighbour — the
#: bounded hand-off buffer of the decoupled pipeline (small enough to keep
#: the working set of in-flight blocks cache-warm, large enough to absorb
#: per-block jitter between stages)
PIPELINE_LEAD = 8


def free_threading_active() -> bool:
    """True when this interpreter is actually running without a GIL (a
    free-threaded CPython build with the GIL not re-enabled at runtime)."""
    try:
        return not sys._is_gil_enabled()
    except AttributeError:  # < 3.13: always GIL-ful
        return False


class ThreadedBackend(ExecutionBackend):
    name = "threaded"

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None
        # A session-owned backend may serve overlapping runs from several
        # request threads; pool creation must happen exactly once.
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-doall",
                    )
        return self._pool

    def _pool_wavefront(self, state: ExecutionState, spans, run_span) -> None:
        """One wavefront on the pool: a private substate per chunk,
        ``run_span(substate, lo, hi)`` submitted per span, then the
        barrier — every chunk completes (or raises) before the next
        descriptor runs — and the eval-count merge."""
        pool = self._ensure_pool()
        substates = [state.fork() for _ in spans]
        futures = [
            pool.submit(run_span, sub, lo, hi)
            for sub, (lo, hi) in zip(substates, spans)
        ]
        for f in futures:
            f.result()
        for sub in substates:
            state.merge_counts(sub.eval_counts)

    def dispatch_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        self._pool_wavefront(
            state, spans,
            lambda sub, lo, hi: self.exec_chunk_span(
                sub, desc, lo, hi, env, vector_names
            ),
        )

    def dispatch_flat_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        fuse: bool,
    ) -> None:
        """Flat collapse chunks on the thread pool: the fused flat kernels
        interleave NumPy spans (GIL released) with per-row bookkeeping
        (GIL held), which the planner's collapse cost model prices for
        this backend."""
        self._pool_wavefront(
            state, spans,
            lambda sub, lo, hi: self.exec_flat_span(
                sub, desc, lo, hi, env, fuse
            ),
        )

    # -- blocked scans -----------------------------------------------------

    def _scan_coefficient(self, state, expr, env, n, dtype) -> np.ndarray:
        """Evaluate a loop-varying coefficient over the whole subrange as
        one vector span, materialised contiguous in the target dtype."""
        vals = np.asarray(state.evaluator.eval(expr, env, vector=True))
        if vals.ndim == 0:
            return np.full(n, vals[()], dtype=dtype)
        if vals.shape != (n,):
            vals = np.broadcast_to(vals, (n,))
        return np.ascontiguousarray(vals, dtype=dtype)

    def exec_scan_block(self, kern, t, b, a, ap) -> None:
        """Phase-1 hook: one block's local sweep (overridable for fault
        injection in tests)."""
        kern.block(t, b, a, ap)

    def exec_scan_fix(self, kern, t, incoming, ap) -> None:
        """Phase-3 hook: one block's carry fix-up."""
        kern.fix(t, incoming, ap)

    def _scan_phase(self, tasks) -> None:
        """Submit one parallel scan phase and join *every* future before
        re-raising the first failure — all-or-nothing poison that leaves
        the pool usable (the same unwind contract as the pipeline engine;
        a failed run's partial writes are overwritten on re-run)."""
        pool = self._ensure_pool()
        futures = [pool.submit(fn, *args) for fn, *args in tasks]
        first: BaseException | None = None
        for f in futures:
            try:
                f.result()
            except BaseException as exc:
                if first is None:
                    first = exc
        if first is not None:
            raise first

    def exec_scan_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
    ) -> None:
        """The three-phase blocked scan: parallel per-block local sweeps,
        a serial exclusive scan of the block carries, and a parallel
        per-block fix-up (see :mod:`repro.runtime.kernels.scan`). Falls
        back to the in-order walk when the kernel bundle is missing, the
        range is too small to split, or the seed element precedes the
        target's storage."""
        from repro.schedule.scan_detect import scan_info

        use_windows = state.options.use_windows
        info = scan_info(state.analyzed, state.flowchart, desc, use_windows)
        n = hi - lo + 1
        kern = None
        if info is not None and state.kernels is not None:
            kern = state.kernels.scan_kernel_for(
                desc, use_windows, tier=state.kernel_tier()
            )
        plan = state.plan_of(desc, self.name)
        parts = plan.parts if plan is not None and plan.parts else self.workers
        parts = max(1, min(parts, self.workers, n // 2))
        if kern is None or parts < 2:
            super().exec_scan_loop(state, desc, lo, hi, env)
            return
        eq = desc.body[0].node.equation
        self.ensure_targets(state, eq)
        arr = state.data[info.target]
        if lo - 1 < arr.los[0]:
            # No stored seed element below the subrange: keep the
            # reference walk (whatever it does, the scan must match it).
            super().exec_scan_loop(state, desc, lo, hi, env)
            return
        dtype = arr.storage.dtype
        seed = dtype.type(arr.get([lo - 1]))
        env2 = dict(env)
        env2[desc.index] = np.arange(lo, hi + 1)
        b = self._scan_coefficient(state, info.b_expr, env2, n, dtype)
        a = None
        ap = None
        if info.kind == "linrec":
            a = self._scan_coefficient(state, info.a_expr, env2, n, dtype)
            ap = np.empty(n, dtype=dtype)
        off = lo - arr.los[0]
        t = arr.storage[off : off + n]
        spans = split_range(0, n - 1, parts)
        self._scan_phase([
            (
                self.exec_scan_block, kern,
                t[s : e + 1], b[s : e + 1],
                a[s : e + 1] if a is not None else None,
                ap[s : e + 1] if ap is not None else None,
            )
            for s, e in spans
        ])
        incoming = seed
        carries = []
        for s, e in spans:
            carries.append(incoming)
            incoming = kern.combine(
                incoming, t[s : e + 1],
                ap[s : e + 1] if ap is not None else None,
            )
        self._scan_phase([
            (
                self.exec_scan_fix, kern,
                t[s : e + 1], carries[k],
                ap[s : e + 1] if ap is not None else None,
            )
            for k, (s, e) in enumerate(spans)
        ])
        state.eval_counts[eq.label] = state.eval_counts.get(eq.label, 0) + n

    def exec_pipeline_group(
        self,
        state: ExecutionState,
        descs: list[Descriptor],
        plan: Any,
        env: dict[str, Any],
    ) -> None:
        """The decoupled pipeline engine: one long-lived pool task per
        stage worker, hand-offs through per-stage *done frontiers* on a
        shared condition variable.

        The group's iteration range is cut into blocks of the planned
        ``queue_depth``. Stage ``k`` may run block ``b`` once its upstream
        neighbour has *completed* ``b`` (``done[k-1] > b``) — block
        boundaries are the only synchronisation points, and the planner
        admits only groups whose inter-loop reads are satisfied at or
        before the producing row, so a completed upstream block covers
        every read of the same block downstream. A stage may run at most
        :data:`PIPELINE_LEAD` blocks ahead of its downstream neighbour
        (the bounded hand-off buffer). Sequential stages hold one worker
        and take blocks strictly in order; replicated stages hold
        ``StagePlan.workers`` workers claiming successive ready blocks,
        with a heap-merged completion frontier so ``done`` only ever
        advances contiguously.

        Failure is all-or-nothing: the first exception poisons the group —
        every waiter wakes, drains, and exits — and is re-raised to the
        caller after all stage tasks have been joined, leaving the pool
        usable. The planner guarantees the total worker count fits the
        pool; anything that doesn't falls back to the base in-order walk.

        A ``scan``-kind stage (a sequential head whose recurrence the
        planner recognised) is *peeled*: its member loops run up front as
        whole-range blocked scans on the full pool, then the remaining
        stages run decoupled — by the time consumers start, the
        recurrence is already materialised, so every hand-off frontier
        the engine tracks for it is trivially satisfied by excluding it
        from the stage list."""
        stages = plan.stages
        if any(s.kind == "scan" for s in stages):
            scalar_env = state.scalar_env()
            remaining = []
            for s in stages:
                if s.kind != "scan":
                    remaining.append(s)
                    continue
                for m in s.members:
                    member = descs[m]
                    assert isinstance(member, LoopDescriptor)
                    mlo = eval_bound(member.subrange.lo, scalar_env)
                    mhi = eval_bound(member.subrange.hi, scalar_env)
                    if mhi >= mlo:
                        self.exec_scan_loop(state, member, mlo, mhi, env)
            if len(remaining) < 2:
                # One stage (the common scan + single-consumer group):
                # nothing left to decouple — run the leftovers directly,
                # replicated members split across the whole pool.
                for s in remaining:
                    for m in s.members:
                        member = descs[m]
                        assert isinstance(member, LoopDescriptor)
                        for eq in member.nested_equations():
                            self.ensure_targets(state, eq)
                        mlo = eval_bound(member.subrange.lo, scalar_env)
                        mhi = eval_bound(member.subrange.hi, scalar_env)
                        if mhi < mlo:
                            continue
                        if member.parallel:
                            spans = split_range(mlo, mhi, self.workers)
                            if len(spans) < 2:
                                self.exec_rep_block(state, member, mlo, mhi, env)
                            else:
                                self.dispatch_chunks(state, member, spans, env, [])
                        else:
                            self.exec_seq_block(state, member, mlo, mhi, env)
                return
            plan = replace(plan, stages=remaining)
            stages = remaining
        n_stages = len(stages)
        tasks_needed = sum(
            1 if s.kind == "sequential" else max(1, s.workers) for s in stages
        )
        scalar_env = state.scalar_env()
        head = descs[0]
        assert isinstance(head, LoopDescriptor)
        lo = eval_bound(head.subrange.lo, scalar_env)
        hi = eval_bound(head.subrange.hi, scalar_env)
        if hi < lo:
            return
        block = max(1, int(plan.queue_depth or 1))
        nblocks = (hi - lo + block) // block
        if n_stages < 2 or nblocks < 2 or tasks_needed > self.workers:
            # Nothing to decouple (or the plan outgrew this pool — only
            # possible for hand-built plans): the in-order reference walk.
            super().exec_pipeline_group(state, descs, plan, env)
            return
        spans = [
            (lo + b * block, min(hi, lo + (b + 1) * block - 1))
            for b in range(nblocks)
        ]
        for desc in descs:
            assert isinstance(desc, LoopDescriptor)
            for eq in desc.nested_equations():
                self.ensure_targets(state, eq)

        cond = threading.Condition()
        claim = [0] * n_stages  # next block index each stage hands out
        done = [0] * n_stages  # contiguously completed block count
        finished: list[list[int]] = [[] for _ in range(n_stages)]
        failure: list[BaseException] = []
        last = n_stages - 1

        def stage_worker(k: int, sub: ExecutionState) -> None:
            try:
                while True:
                    with cond:
                        while True:
                            if failure:
                                return
                            b = claim[k]
                            if b >= nblocks:
                                return
                            if (k == 0 or done[k - 1] > b) and (
                                k == last or b < done[k + 1] + PIPELINE_LEAD
                            ):
                                claim[k] = b + 1
                                break
                            cond.wait()
                    blo, bhi = spans[b]
                    for m in stages[k].members:
                        member = descs[m]
                        if member.parallel:
                            self.exec_rep_block(sub, member, blo, bhi, env)
                        else:
                            self.exec_seq_block(sub, member, blo, bhi, env)
                    with cond:
                        heapq.heappush(finished[k], b)
                        while finished[k] and finished[k][0] == done[k]:
                            heapq.heappop(finished[k])
                            done[k] += 1
                        cond.notify_all()
            except BaseException as exc:  # poison the group, then unwind
                with cond:
                    if not failure:
                        failure.append(exc)
                    cond.notify_all()

        pool = self._ensure_pool()
        substates: list[ExecutionState] = []
        futures = []
        for k, stage in enumerate(stages):
            n_workers = 1 if stage.kind == "sequential" else max(1, stage.workers)
            for _ in range(n_workers):
                sub = state.fork()
                substates.append(sub)
                futures.append(pool.submit(stage_worker, k, sub))
        for f in futures:
            f.result()  # workers trap their own exceptions: this is the join
        if failure:
            raise failure[0]
        for sub in substates:
            state.merge_counts(sub.eval_counts)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class FreeThreadingBackend(ThreadedBackend):
    """``free-threading``: the thread-pool dispatch on a no-GIL CPython.

    Deliberately constructible on any interpreter — on a GIL build it *is*
    the threaded backend (same pool, same chunk dispatch), so scripts can
    pin ``--backend free-threading`` and run everywhere; the extra
    parallelism on pure-Python spans simply appears when the interpreter
    provides it (:func:`free_threading_active`)."""

    name = "free-threading"
