"""Threaded backends: planned DOALL chunks on a thread pool.

The planner splits a chunk-planned ``DOALL`` into balanced contiguous
chunks; each chunk runs through :meth:`~repro.runtime.backends.base.
ExecutionBackend.exec_chunk_span` — the *native span kernel* when the span
lowers to C (cffi's ABI mode releases the GIL around the C invocation, so
chunks genuinely overlap on today's GIL-ful CPython), the vectorised NumPy
path otherwise (NumPy kernels release the GIL too, but the per-equation
Python bookkeeping between them serialises). Waiting on all futures is the
per-wavefront barrier. Chunk-safety (scalar targets, atomic equations,
window aliasing) is the planner's concern: a DOALL this backend sees with
a ``vector`` or ``serial`` plan simply runs that strategy via the shared
base dispatch.

:class:`FreeThreadingBackend` is the same dispatch registered as
``free-threading``: on a no-GIL CPython build (3.13t/3.14 with the GIL
disabled) even the pure-Python spans overlap, so *every* chunk scales with
workers, not just the native ones. On a regular GIL build it degrades
cleanly to exactly :class:`ThreadedBackend` behaviour — same pool, same
dispatch — so pinning it is always safe.
"""

from __future__ import annotations

import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.runtime.backends.base import ExecutionBackend, ExecutionState
from repro.schedule.flowchart import LoopDescriptor


def free_threading_active() -> bool:
    """True when this interpreter is actually running without a GIL (a
    free-threaded CPython build with the GIL not re-enabled at runtime)."""
    try:
        return not sys._is_gil_enabled()
    except AttributeError:  # < 3.13: always GIL-ful
        return False


class ThreadedBackend(ExecutionBackend):
    name = "threaded"

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None
        # A session-owned backend may serve overlapping runs from several
        # request threads; pool creation must happen exactly once.
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-doall",
                    )
        return self._pool

    def _pool_wavefront(self, state: ExecutionState, spans, run_span) -> None:
        """One wavefront on the pool: a private substate per chunk,
        ``run_span(substate, lo, hi)`` submitted per span, then the
        barrier — every chunk completes (or raises) before the next
        descriptor runs — and the eval-count merge."""
        pool = self._ensure_pool()
        substates = [state.fork() for _ in spans]
        futures = [
            pool.submit(run_span, sub, lo, hi)
            for sub, (lo, hi) in zip(substates, spans)
        ]
        for f in futures:
            f.result()
        for sub in substates:
            state.merge_counts(sub.eval_counts)

    def dispatch_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        self._pool_wavefront(
            state, spans,
            lambda sub, lo, hi: self.exec_chunk_span(
                sub, desc, lo, hi, env, vector_names
            ),
        )

    def dispatch_flat_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        fuse: bool,
    ) -> None:
        """Flat collapse chunks on the thread pool: the fused flat kernels
        interleave NumPy spans (GIL released) with per-row bookkeeping
        (GIL held), which the planner's collapse cost model prices for
        this backend."""
        self._pool_wavefront(
            state, spans,
            lambda sub, lo, hi: self.exec_flat_span(
                sub, desc, lo, hi, env, fuse
            ),
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class FreeThreadingBackend(ThreadedBackend):
    """``free-threading``: the thread-pool dispatch on a no-GIL CPython.

    Deliberately constructible on any interpreter — on a GIL build it *is*
    the threaded backend (same pool, same chunk dispatch), so scripts can
    pin ``--backend free-threading`` and run everywhere; the extra
    parallelism on pure-Python spans simply appears when the interpreter
    provides it (:func:`free_threading_active`)."""

    name = "free-threading"
