"""Threaded backend: chunked DOALL subranges on a thread pool.

The outermost ``DOALL`` of a wavefront is split into balanced contiguous
chunks (one per worker); each chunk runs the vectorised NumPy path, so the
heavy lifting happens inside NumPy kernels that release the GIL. Waiting on
all futures is the per-wavefront barrier. A DOALL that is not chunk-safe
(scalar targets, atomic equations, window aliasing) falls back to the
single-threaded vectorised span, preserving semantics.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.runtime.backends.base import ExecutionState, chunk_safe
from repro.runtime.backends.vectorized import VectorizedBackend
from repro.schedule.flowchart import LoopDescriptor, split_range


class ChunkedBackend(VectorizedBackend):
    """Shared machinery for backends that split DOALL subranges into
    worker chunks. Subclasses implement :meth:`dispatch_chunks`."""

    def exec_parallel_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        # Only the *outermost* DOALL of a nest is chunked (vector_names is
        # empty there); inner DOALLs vectorise within each chunk.
        if (
            vector_names
            or self.workers < 2
            or hi - lo + 1 < 2
            or not chunk_safe(state, desc)
        ):
            self.exec_vector_span(state, desc, lo, hi, env, vector_names)
            return
        # Allocate every target up front so workers never race on the
        # data environment — inside a chunk they only write array elements.
        for eq in desc.nested_equations():
            self.ensure_targets(state, eq)
        spans = split_range(lo, hi, self.workers)
        self.dispatch_chunks(state, desc, spans, env, vector_names)

    def dispatch_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        raise NotImplementedError


class ThreadedBackend(ChunkedBackend):
    name = "threaded"

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def dispatch_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-doall"
            )
        substates = [state.fork() for _ in spans]
        futures = [
            self._pool.submit(
                self.exec_vector_span, sub, desc, clo, chi, env, vector_names
            )
            for sub, (clo, chi) in zip(substates, spans)
        ]
        # The barrier: every chunk of the wavefront completes (or raises)
        # before the next descriptor runs.
        for f in futures:
            f.result()
        for sub in substates:
            state.merge_counts(sub.eval_counts)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
