"""Threaded backend: planned DOALL chunks on a thread pool.

The planner splits a chunk-planned ``DOALL`` into balanced contiguous
chunks; each chunk runs the vectorised NumPy path, so the heavy lifting
happens inside NumPy kernels that release the GIL. Waiting on all futures
is the per-wavefront barrier. Chunk-safety (scalar targets, atomic
equations, window aliasing) is the planner's concern: a DOALL this backend
sees with a ``vector`` or ``serial`` plan simply runs that strategy via
the shared base dispatch.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.runtime.backends.base import ExecutionBackend, ExecutionState
from repro.schedule.flowchart import LoopDescriptor


class ThreadedBackend(ExecutionBackend):
    name = "threaded"

    def __init__(self, workers: int | None = None):
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None

    def dispatch_chunks(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        spans: list[tuple[int, int]],
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-doall"
            )
        substates = [state.fork() for _ in spans]
        futures = [
            self._pool.submit(
                self.exec_vector_span, sub, desc, clo, chi, env, vector_names
            )
            for sub, (clo, chi) in zip(substates, spans)
        ]
        # The barrier: every chunk of the wavefront completes (or raises)
        # before the next descriptor runs.
        for f in futures:
            f.result()
        for sub in substates:
            state.merge_counts(sub.eval_counts)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
