"""Serial backend: the scalar reference semantics.

A ``DOALL`` is semantically unordered; the serial backend simply runs it
low-to-high like a ``DO``, one scalar element evaluation at a time. Every
other backend is cross-checked against this one.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.backends.base import ExecutionBackend, ExecutionState
from repro.schedule.flowchart import LoopDescriptor


class SerialBackend(ExecutionBackend):
    name = "serial"

    def exec_parallel_loop(
        self,
        state: ExecutionState,
        desc: LoopDescriptor,
        lo: int,
        hi: int,
        env: dict[str, Any],
        vector_names: list[str],
    ) -> None:
        self.exec_sequential_loop(state, desc, lo, hi, env, vector_names)
