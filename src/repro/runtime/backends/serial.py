"""Serial backend: the scalar reference semantics.

A ``DOALL`` is semantically unordered; under a serial plan it runs
low-to-high like a ``DO``, one scalar element evaluation at a time — or,
when the planner fused the nest, as one compiled nest kernel producing the
identical element order and stores. Every other backend is cross-checked
against this one (with kernels off, the pure tree-walking evaluator).
"""

from __future__ import annotations

from repro.runtime.backends.base import ExecutionBackend


class SerialBackend(ExecutionBackend):
    name = "serial"

    #: a hand-built descriptor without a plan runs scalar, preserving the
    #: reference semantics this backend exists to provide
    fallback_strategy = "serial"
