"""Runtime values: symbolic-bound evaluation and window-backed arrays.

A PS array dimension declared ``lo .. hi`` is stored with origin ``lo``. A
*virtual* dimension (section 3.4) is backed by a window of ``w`` planes
addressed modulo ``w`` — valid because the scheduler proved every read is at
most ``w - 1`` planes behind the write front. ``debug=True`` arms per-slot
tags that catch any read of a plane that has already been overwritten (the
failure-injection tests rely on this)."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.ps.ast import BinOp, Expr, IntLit, Name, UnOp
from repro.ps.types import ArrayType, BoolType, RealType, Type

#: ``(shape, dtype) -> ndarray`` — how a backend materialises array storage.
#: The default is plain ``np.zeros``; the process backend supplies a factory
#: that places storage in ``multiprocessing.shared_memory`` so forked
#: wavefront workers write into the same planes the parent reads.
StorageFactory = Callable[[tuple[int, ...], np.dtype], np.ndarray]


def default_storage(shape: tuple[int, ...], dtype) -> np.ndarray:
    return np.zeros(shape, dtype=dtype)


def eval_bound(expr: Expr, env: dict[str, int]) -> int:
    """Evaluate a subrange-bound expression with integer parameter values."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Name):
        if expr.ident not in env:
            raise ExecutionError(f"unbound name {expr.ident!r} in subrange bound")
        v = env[expr.ident]
        return int(v)
    if isinstance(expr, UnOp):
        v = eval_bound(expr.operand, env)
        if expr.op == "-":
            return -v
        if expr.op == "+":
            return v
        raise ExecutionError(f"invalid bound operator {expr.op!r}")
    if isinstance(expr, BinOp):
        a = eval_bound(expr.left, env)
        b = eval_bound(expr.right, env)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "div":
            return a // b
        if expr.op == "mod":
            return a % b
        raise ExecutionError(f"invalid bound operator {expr.op!r}")
    raise ExecutionError(f"invalid bound expression {type(expr).__name__}")


def dtype_for(element: Type):
    if element == RealType:
        return np.float64
    if element == BoolType:
        return np.bool_
    return np.int64


@dataclass
class RuntimeArray:
    """An array with per-dimension origins and optional window dimensions."""

    name: str
    los: list[int]
    his: list[int]
    storage: np.ndarray
    windows: dict[int, int]  # dim -> window size
    tags: np.ndarray | None = None  # debug: logical index stored per slot

    @classmethod
    def allocate(
        cls,
        name: str,
        element: Type,
        bounds: list[tuple[int, int]],
        windows: dict[int, int] | None = None,
        debug: bool = False,
        storage_factory: StorageFactory | None = None,
    ) -> RuntimeArray:
        make = storage_factory or default_storage
        windows = dict(windows or {})
        los = [lo for lo, _ in bounds]
        his = [hi for _, hi in bounds]
        shape = []
        for d, (lo, hi) in enumerate(bounds):
            extent = hi - lo + 1
            if extent < 0:
                raise ExecutionError(
                    f"dimension {d} of {name!r} has negative extent "
                    f"({lo} .. {hi})"
                )
            if d in windows:
                extent = min(extent, windows[d])
                windows[d] = extent
            shape.append(extent)
        storage = make(tuple(shape), dtype_for(element))
        tags = None
        if debug and windows:
            tags = make(tuple(shape), np.int64)
            tags[...] = -(10**9)
        return cls(name, los, his, storage, windows, tags)

    @property
    def rank(self) -> int:
        return len(self.los)

    @property
    def allocated_elements(self) -> int:
        return int(self.storage.size)

    def _map_index(self, d: int, idx):
        rel = idx - self.los[d]
        if d in self.windows:
            return rel % self.windows[d]
        return rel

    def _check_range(self, d: int, idx) -> None:
        lo, hi = self.los[d], self.his[d]
        bad = (idx < lo) | (idx > hi)
        if np.any(bad):
            raise ExecutionError(
                f"index {idx} out of range [{lo}, {hi}] in dimension {d} of "
                f"{self.name!r}"
            )

    def get(self, indices, clip: bool = False):
        """Read elements. ``clip`` clamps indices into range (used by the
        vectorised evaluator, whose masked lanes may form out-of-range
        subscripts that the `where` discards)."""
        mapped = []
        for d, idx in enumerate(indices):
            if not np.isscalar(idx) and not isinstance(idx, (int, np.integer)):
                idx = np.asarray(idx)
            if clip:
                idx = np.clip(idx, self.los[d], self.his[d])
            else:
                self._check_range(d, np.asarray(idx))
            mapped.append(self._map_index(d, idx))
        out = self.storage[tuple(mapped)]
        if self.tags is not None and not clip:
            expected = self._expected_tag(indices)
            actual = self.tags[tuple(mapped)]
            if np.any(actual != expected):
                raise ExecutionError(
                    f"window violation: read of {self.name} at {indices} "
                    f"finds a plane that has been overwritten"
                )
        return out

    def set(self, indices, value) -> None:
        mapped = []
        for d, idx in enumerate(indices):
            self._check_range(d, np.asarray(idx))
            mapped.append(self._map_index(d, idx))
        self.storage[tuple(mapped)] = value
        if self.tags is not None:
            self.tags[tuple(mapped)] = self._expected_tag(indices)

    def _expected_tag(self, indices):
        """The logical windowed coordinate(s) encoded as a single tag."""
        tag = 0
        for d in sorted(self.windows):
            tag = tag * (self.his[d] - self.los[d] + 2) + (
                np.asarray(indices[d]) - self.los[d]
            )
        return tag

    def to_numpy(self) -> np.ndarray:
        """Dense copy (only valid when no window dims exist)."""
        if self.windows:
            raise ExecutionError(
                f"{self.name!r} uses window storage; dense view unavailable"
            )
        return self.storage

    @classmethod
    def from_numpy(
        cls,
        name: str,
        array: np.ndarray,
        bounds: list[tuple[int, int]],
        storage_factory: StorageFactory | None = None,
    ) -> RuntimeArray:
        expected = tuple(hi - lo + 1 for lo, hi in bounds)
        if array.shape != expected:
            raise ExecutionError(
                f"argument {name!r} has shape {array.shape}, expected "
                f"{expected} from the declared bounds"
            )
        if storage_factory is None:
            storage = np.array(array)
        else:
            storage = storage_factory(expected, array.dtype)
            storage[...] = array
        return cls(
            name,
            [lo for lo, _ in bounds],
            [hi for _, hi in bounds],
            storage,
            {},
        )


def zero_scalar(t: Type):
    if t == RealType:
        return 0.0
    if t == BoolType:
        return False
    return 0


def array_bounds(arr_type: ArrayType, env: dict[str, int]) -> list[tuple[int, int]]:
    return [(eval_bound(d.lo, env), eval_bound(d.hi, env)) for d in arr_type.dims]
