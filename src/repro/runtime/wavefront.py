"""Windowed wavefront execution of a hyperplane-transformed module.

Section 4 prefers the code shape where the program "rotate[s] the input
array into A'[...], work[s] entirely with the transformed array A' in the
recurrence, and unrotate[s] back into the return parameter" — only then does
the window-3 allocation (``3 x maxK x M'`` instead of a full
``maxK x M' x M'``) actually hold, because the extraction of ``newA`` must
read each time plane *before* the window overwrites it.

:func:`execute_transformed_windowed` implements that fusion generically:

1. the transformed array is allocated as a window of ``1 + max pi.d``
   planes over its time dimension;
2. extraction equations (those referencing the transformed array outside
   its defining loop) are pre-bucketed by the time plane they need;
3. as the outer iterative time loop retires each plane, the extraction
   points that need it run immediately.

The debug window tags verify no plane is read after being overwritten.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ExecutionError
from repro.hyperplane.pipeline import HyperplaneResult
from repro.ps.semantics import AnalyzedEquation
from repro.ps.types import ArrayType
from repro.runtime.evaluator import Evaluator
from repro.runtime.values import RuntimeArray, array_bounds, dtype_for, eval_bound
from repro.schedule.flowchart import Flowchart, LoopDescriptor, NodeDescriptor
from repro.schedule.scheduler import schedule_module


@dataclass
class WavefrontReport:
    results: dict[str, Any]
    allocated_elements: dict[str, int]
    window: int
    n_planes: int


def _equations_in(descs) -> list[AnalyzedEquation]:
    out = []
    for d in descs:
        if isinstance(d, NodeDescriptor):
            if d.node.is_equation:
                out.append(d.node.equation)
        else:
            out.extend(_equations_in(d.body))
    return out


def execute_transformed_windowed(
    hyper: HyperplaneResult,
    args: dict[str, Any],
    debug: bool = True,
) -> WavefrontReport:
    """Execute the transformed module with window storage for the
    transformed array and fused extraction."""
    analyzed = hyper.transformed
    flowchart: Flowchart = schedule_module(analyzed)
    new_array = hyper.new_array
    window = hyper.recurrence_window

    # Scalar environment (parameters only; the transformed modules the
    # rewriter emits draw every bound from parameters).
    scalars = {
        k: int(v) for k, v in args.items() if isinstance(v, (int, np.integer))
    }

    data: dict[str, Any] = dict(scalars)
    for pname in analyzed.param_names:
        sym = analyzed.symbol(pname)
        if isinstance(sym.type, ArrayType):
            data[pname] = RuntimeArray.from_numpy(
                pname,
                np.asarray(args[pname], dtype=dtype_for(sym.type.element)),
                array_bounds(sym.type, scalars),
            )

    evaluator = Evaluator(data)

    # Allocate the transformed array with a window on its time dimension.
    sym = analyzed.symbol(new_array)
    assert isinstance(sym.type, ArrayType)
    bounds = array_bounds(sym.type, scalars)
    data[new_array] = RuntimeArray.allocate(
        new_array, sym.type.element, bounds, windows={0: window}, debug=debug
    )

    # Locate the defining time loop and classify the other descriptors.
    time_loop: LoopDescriptor | None = None
    extraction: list[AnalyzedEquation] = []
    others: list = []
    for desc in flowchart.descriptors:
        eqs = (
            _equations_in([desc])
            if isinstance(desc, (LoopDescriptor, NodeDescriptor))
            else []
        )
        defines = any(t.name == new_array for eq in eqs for t in eq.targets)
        reads = any(r.name == new_array for eq in eqs for r in eq.refs)
        if defines:
            if not isinstance(desc, LoopDescriptor) or desc.parallel:
                raise ExecutionError(
                    "transformed recurrence is not under an iterative time loop"
                )
            time_loop = desc
        elif reads:
            extraction.extend(eqs)
        else:
            others.append(desc)

    if time_loop is None:
        raise ExecutionError(f"no defining loop for {new_array!r} found")

    # Run the independent descriptors first (there are typically none: the
    # rewriter merges initialisation into the recurrence).
    from repro.runtime.backends import create_backend
    from repro.runtime.backends.base import ExecutionState
    from repro.runtime.executor import ExecutionOptions

    options = ExecutionOptions(vectorize=True)
    backend = create_backend(options)
    state = ExecutionState(
        analyzed,
        flowchart,
        options,
        data,
        evaluator,
    )
    for desc in others:
        backend.exec_descriptor(state, desc, {}, [])

    # Bucket extraction points by the time plane they need.
    buckets: dict[int, list[tuple[AnalyzedEquation, dict[str, int]]]] = {}
    for eq in extraction:
        # Allocate its target (results are dense).
        for target in eq.targets:
            tsym = analyzed.symbol(target.name)
            if isinstance(tsym.type, ArrayType) and target.name not in data:
                data[target.name] = RuntimeArray.allocate(
                    target.name, tsym.type.element, array_bounds(tsym.type, scalars)
                )
        dim_ranges = [
            range(
                eval_bound(d.subrange.lo, scalars),
                eval_bound(d.subrange.hi, scalars) + 1,
            )
            for d in eq.dims
        ]
        refs = [r for r in eq.refs if r.name == new_array]
        for point in itertools.product(*dim_ranges):
            env = {d.index: v for d, v in zip(eq.dims, point)}
            planes = [
                int(evaluator.eval(r.subscripts[0], env)) for r in refs
            ]
            need = max(planes)
            if need - min(planes) >= window:
                raise ExecutionError(
                    "extraction reads planes wider apart than the window; "
                    "cannot fuse"
                )
            buckets.setdefault(need, []).append((eq, env))

    # The fused time loop.
    t_lo = eval_bound(time_loop.subrange.lo, scalars)
    t_hi = eval_bound(time_loop.subrange.hi, scalars)
    for t in range(t_lo, t_hi + 1):
        env = {time_loop.index: t}
        for d in time_loop.body:
            backend.exec_descriptor(state, d, env, [])
        for eq, point_env in buckets.pop(t, []):
            value = evaluator.eval(eq.rhs, point_env, vector=False)
            target = eq.targets[0]
            subs = [
                int(evaluator.eval(s, point_env)) for s in target.subscripts
            ]
            holder = data[target.name]
            if isinstance(holder, RuntimeArray):
                holder.set(subs, value)
            else:
                data[target.name] = value
    if buckets:
        raise ExecutionError(
            f"extraction points remained for planes {sorted(buckets)} outside "
            f"the time range [{t_lo}, {t_hi}]"
        )

    results: dict[str, Any] = {}
    for rname in analyzed.result_names:
        v = data.get(rname)
        results[rname] = v.to_numpy() if isinstance(v, RuntimeArray) else v

    allocated = {
        name: v.allocated_elements
        for name, v in data.items()
        if isinstance(v, RuntimeArray)
    }
    return WavefrontReport(
        results=results,
        allocated_elements=allocated,
        window=window,
        n_planes=t_hi - t_lo + 1,
    )
