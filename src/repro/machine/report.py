"""Speedup tables over processor counts."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cost import MachineModel
from repro.machine.simulator import SimulationResult, simulate_flowchart
from repro.ps.semantics import AnalyzedModule
from repro.schedule.flowchart import Flowchart


@dataclass
class SpeedupTable:
    processors: list[int]
    cycles: list[int]

    @property
    def speedups(self) -> list[float]:
        base = self.cycles[0]
        return [base / c for c in self.cycles]

    @property
    def efficiencies(self) -> list[float]:
        return [s / p for s, p in zip(self.speedups, self.processors)]

    def rows(self) -> list[tuple[int, int, float, float]]:
        return list(zip(self.processors, self.cycles, self.speedups, self.efficiencies))

    def pretty(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        lines.append(f"{'P':>4}  {'cycles':>12}  {'speedup':>8}  {'efficiency':>10}")
        for p, c, s, e in self.rows():
            lines.append(f"{p:>4}  {c:>12}  {s:>8.2f}  {e:>10.2f}")
        return "\n".join(lines)


def speedup_table(
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    args: dict[str, int],
    processors: list[int],
    model: MachineModel | None = None,
    collapse: bool = True,
) -> SpeedupTable:
    model = model or MachineModel()
    cycles = []
    for p in processors:
        result = simulate_flowchart(
            analyzed, flowchart, args, model.with_processors(p), collapse=collapse
        )
        cycles.append(result.cycles)
    return SpeedupTable(list(processors), cycles)
