"""Speedup tables over processor counts, and predicted-vs-measured
comparisons of the cost model against real execution backends."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.machine.cost import MachineModel
from repro.machine.simulator import simulate_flowchart
from repro.ps.semantics import AnalyzedModule
from repro.schedule.flowchart import Flowchart


@dataclass
class SpeedupTable:
    processors: list[int]
    cycles: list[int]

    @property
    def speedups(self) -> list[float]:
        base = self.cycles[0]
        return [base / c for c in self.cycles]

    @property
    def efficiencies(self) -> list[float]:
        return [s / p for s, p in zip(self.speedups, self.processors)]

    def rows(self) -> list[tuple[int, int, float, float]]:
        return list(zip(self.processors, self.cycles, self.speedups, self.efficiencies))

    def pretty(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        lines.append(f"{'P':>4}  {'cycles':>12}  {'speedup':>8}  {'efficiency':>10}")
        for p, c, s, e in self.rows():
            lines.append(f"{p:>4}  {c:>12}  {s:>8.2f}  {e:>10.2f}")
        return "\n".join(lines)


def speedup_table(
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    args: dict[str, int],
    processors: list[int],
    model: MachineModel | None = None,
    collapse: bool = True,
) -> SpeedupTable:
    model = model or MachineModel()
    cycles = []
    for p in processors:
        result = simulate_flowchart(
            analyzed, flowchart, args, model.with_processors(p), collapse=collapse
        )
        cycles.append(result.cycles)
    return SpeedupTable(list(processors), cycles)


# ---------------------------------------------------------------------------
# Predicted vs measured: the cost model against a real execution backend
# ---------------------------------------------------------------------------


@dataclass
class BackendSpeedupReport:
    """Cost-model predictions next to measured wall-clock speedups for one
    backend over a range of worker counts. The baseline for *measured*
    speedups is the serial reference backend; *predicted* speedups come from
    the simulated MIMD machine at P = workers."""

    workload: str
    backend: str
    workers: list[int]
    seconds: list[float]
    baseline_seconds: float
    predicted: list[float]
    baseline_backend: str = "serial"
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def measured(self) -> list[float]:
        return [
            self.baseline_seconds / s if s else float("inf")
            for s in self.seconds
        ]

    def rows(self) -> list[tuple[int, float, float, float]]:
        return list(zip(self.workers, self.predicted, self.measured, self.seconds))

    def pretty(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        lines.append(
            f"baseline ({self.baseline_backend}): "
            f"{self.baseline_seconds * 1e3:.1f} ms"
        )
        lines.append(
            f"{'workers':>8}  {'predicted':>10}  {'measured':>10}  {'seconds':>10}"
        )
        for w, pred, meas, sec in self.rows():
            lines.append(f"{w:>8}  {pred:>9.2f}x  {meas:>9.2f}x  {sec:>10.4f}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form for benchmark trajectory artifacts."""
        return {
            "workload": self.workload,
            "backend": self.backend,
            "baseline_backend": self.baseline_backend,
            "baseline_seconds": self.baseline_seconds,
            "workers": list(self.workers),
            "seconds": list(self.seconds),
            "measured_speedup": self.measured,
            "predicted_speedup": list(self.predicted),
            **self.extras,
        }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_backend_speedups(
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    run_args: dict[str, Any],
    backend: str,
    workers_counts: list[int],
    model: MachineModel | None = None,
    repeats: int = 1,
    execution=None,
    workload: str = "",
    collapse: bool = True,
) -> BackendSpeedupReport:
    """Execute ``analyzed`` on ``backend`` across ``workers_counts`` and
    pair each measured wall-clock speedup (over the serial reference
    backend) with the cost model's prediction at the same processor count.

    ``run_args`` are full execution inputs; its integer entries feed the
    simulator's loop bounds. ``execution`` supplies base ExecutionOptions
    (e.g. ``use_windows=True``)."""
    import numpy as np

    from repro.runtime.executor import ExecutionOptions, execute_module

    base = ExecutionOptions.resolve(execution)
    scalar_args = {
        k: int(v)
        for k, v in run_args.items()
        if isinstance(v, (int, np.integer))
    }

    baseline_seconds = _best_of(
        lambda: execute_module(
            analyzed,
            run_args,
            flowchart=flowchart,
            options=ExecutionOptions.resolve(base, backend="serial"),
        ),
        repeats,
    )
    model = model or MachineModel()
    serial_sim = simulate_flowchart(
        analyzed, flowchart, scalar_args, model.with_processors(1), collapse=collapse
    )
    seconds: list[float] = []
    predicted: list[float] = []
    for w in workers_counts:
        options = ExecutionOptions.resolve(base, backend=backend, workers=w)
        seconds.append(
            _best_of(
                lambda: execute_module(
                    analyzed, run_args, flowchart=flowchart, options=options
                ),
                repeats,
            )
        )
        parallel_sim = simulate_flowchart(
            analyzed,
            flowchart,
            scalar_args,
            model.with_processors(w),
            collapse=collapse,
        )
        predicted.append(parallel_sim.speedup_against(serial_sim))
    return BackendSpeedupReport(
        workload=workload or analyzed.name,
        backend=backend,
        workers=list(workers_counts),
        seconds=seconds,
        baseline_seconds=baseline_seconds,
        predicted=predicted,
    )


# ---------------------------------------------------------------------------
# Predicted vs planned vs measured: the planner against the stopwatch
# ---------------------------------------------------------------------------


@dataclass
class PlanComparison:
    """For one workload: what the calibrated model *predicted* each backend
    would cost, what the planner consequently *planned*, and what the wall
    clock *measured*. The planner is honest when the backend it picks for
    ``auto`` lands within noise of the measured-best backend."""

    workload: str
    auto_backend: str
    #: per candidate backend: predicted cycles, plan fingerprint, seconds
    rows: list[dict[str, Any]] = field(default_factory=list)

    @property
    def best_backend(self) -> str:
        return min(self.rows, key=lambda r: r["seconds"])["backend"]

    @property
    def auto_seconds(self) -> float:
        for r in self.rows:
            if r["backend"] == self.auto_backend:
                return r["seconds"]
        raise ValueError(
            f"auto-planned backend {self.auto_backend!r} was not measured "
            f"(rows: {[r['backend'] for r in self.rows]})"
        )

    @property
    def best_seconds(self) -> float:
        return min(r["seconds"] for r in self.rows)

    def pretty(self, title: str = "") -> str:
        lines = [title] if title else []
        lines.append(
            f"auto plans {self.auto_backend!r}; measured best "
            f"{self.best_backend!r}"
        )
        lines.append(f"{'backend':>12}  {'predicted':>12}  {'seconds':>10}  planned")
        for r in sorted(self.rows, key=lambda r: r["predicted_cycles"]):
            strategies = ",".join(s for _, s in r["strategies"])
            lines.append(
                f"{r['backend']:>12}  {r['predicted_cycles']:>12.0f}  "
                f"{r['seconds']:>10.4f}  {strategies}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "auto_backend": self.auto_backend,
            "best_backend": self.best_backend,
            "auto_seconds": self.auto_seconds,
            "best_seconds": self.best_seconds,
            "rows": self.rows,
        }


def compare_plans(
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    run_args: dict[str, Any],
    backends: list[str] | None = None,
    workers: int | None = None,
    execution=None,
    repeats: int = 3,
    workload: str = "",
    calibration=None,
) -> PlanComparison:
    """Plan and execute ``analyzed`` on every candidate backend, pairing
    the planner's predicted cycles with measured wall clock, and record
    which backend ``auto`` would pick.

    ``calibration`` is an optional
    :class:`~repro.plan.calibration.PlanCalibration`: the ``auto`` decision
    consults it (so a store primed by an earlier comparison corrects a
    mispredicting model), and every measured row is recorded back into it —
    the feedback loop of the plan cache's online recalibration."""
    import numpy as np

    from repro.plan.planner import AUTO_CANDIDATES, build_plan
    from repro.runtime.backends.process import _fork_available
    from repro.runtime.executor import ExecutionOptions, execute_module

    backends = list(backends or AUTO_CANDIDATES)
    if not _fork_available():
        # Spawn-only platform: pinning a process backend raises by design,
        # so the comparison measures the backends that can actually run.
        backends = [
            b for b in backends if b not in ("process", "process-fork")
        ]
    base = ExecutionOptions.resolve(execution)
    if workers is None:
        workers = base.workers
    scalars = {
        k: int(v)
        for k, v in run_args.items()
        if isinstance(v, (int, np.integer))
    }

    auto_plan = build_plan(
        analyzed, flowchart,
        ExecutionOptions.resolve(base, backend="auto", workers=workers),
        scalars, calibration=calibration,
    )
    if auto_plan.backend not in backends:
        # auto must always be measurable against its own pick
        backends.append(auto_plan.backend)
    rows: list[dict[str, Any]] = []
    for backend in backends:
        options = ExecutionOptions.resolve(
            base, backend=backend, workers=workers
        )
        plan = build_plan(analyzed, flowchart, options, scalars)
        seconds = _best_of(
            lambda options=options, plan=plan: execute_module(
                analyzed, run_args, flowchart=flowchart, options=options, plan=plan
            ),
            repeats,
        )
        rows.append(
            {
                "backend": backend,
                "predicted_cycles": plan.cycles,
                "strategies": plan.strategies(),
                "seconds": seconds,
            }
        )
        if calibration is not None:
            calibration.record(
                analyzed.name, scalars, backend, seconds,
                predicted_cycles=plan.cycles, workers=workers,
            )

    # The pipeline candidate: when the workload has a decoupleable sibling
    # run, measure the forced-pipeline plan as its own row (distinct
    # calibration key, so the store learns what decoupling actually buys
    # on this machine — not just what the model predicts).
    from repro.plan.planner import PIPELINE_BACKENDS

    pipe_backend = next(
        (b for b in PIPELINE_BACKENDS if b in backends), None
    )
    if pipe_backend is not None:
        options = ExecutionOptions.resolve(
            base, backend=pipe_backend, workers=workers, strategy="pipeline"
        )
        plan = build_plan(analyzed, flowchart, options, scalars)
        if any(s == "pipeline" for _, s in plan.strategies()):
            key = f"{pipe_backend}+pipeline"
            seconds = _best_of(
                lambda: execute_module(
                    analyzed, run_args, flowchart=flowchart,
                    options=options, plan=plan,
                ),
                repeats,
            )
            rows.append(
                {
                    "backend": key,
                    "predicted_cycles": plan.cycles,
                    "strategies": plan.strategies(),
                    "seconds": seconds,
                }
            )
            if calibration is not None:
                calibration.record(
                    analyzed.name, scalars, key, seconds,
                    predicted_cycles=plan.cycles, workers=workers,
                )
    return PlanComparison(
        workload=workload or analyzed.name,
        auto_backend=auto_plan.backend,
        rows=rows,
    )

