"""Cost model for the simulated MIMD machine and the execution planner.

Costs are in abstract cycles. The *structural* defaults (``op_cost`` …
``call_cost``) are loosely calibrated to a 1980s shared-memory
multiprocessor (cheap scalar ops, noticeable fork/barrier overhead) — the
regime the paper targets, where loop-level parallelism pays only when the
loop body times the iteration count dominates the synchronisation cost.

The *execution-mode* fields are calibrated against this repo's own runtime
(``BENCH_kernels.json``): the same equation costs wildly different numbers
of cycles depending on whether it runs on the tree-walking evaluator, a
per-equation compiled kernel, a fused nest kernel, or the NumPy vector
path. One cycle is anchored at roughly 50 ns of the calibration machine;
only ratios matter to the planner. ``MachineModel.from_kernel_bench``
re-derives the mode overheads from a fresh benchmark artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ps.ast import (
    BinOp,
    BoolLit,
    Call,
    Expr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    Name,
    RealLit,
    UnOp,
)

#: execution modes the model distinguishes (see :func:`element_cost`);
#: "gather" is the vector path off the affine fast path (fancy indexing)
EXECUTION_MODES = (
    "abstract", "evaluator", "kernel", "nest", "collapse", "vector",
    "gather", "native",
)


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the simulated machine."""

    processors: int = 1
    op_cost: int = 1  # one arithmetic/logical operation
    memory_cost: int = 2  # one array element read or write
    loop_overhead: int = 2  # per-iteration loop bookkeeping
    doall_fork: int = 20  # spawning a concurrent loop
    doall_barrier: int = 20  # joining it
    call_cost: int = 50  # module invocation overhead

    # -- execution-mode costs, calibrated against BENCH_kernels.json --------
    #: per-element tax of the tree-walking reference evaluator
    eval_element_overhead: float = 3300.0
    #: per-element tax of a per-equation compiled scalar kernel (one Python
    #: call + prologue hoisting per element)
    kernel_element_overhead: float = 95.0
    #: per-element tax inside a fused nest kernel (hoisting amortised over
    #: the whole nest; only the compiled loop body remains)
    nest_element_overhead: float = 12.0
    #: per-row bookkeeping of a *flat* (collapse-chunked) nest kernel: one
    #: divmod cascade, one arange, and the row-segment clipping — elements
    #: inside a row run as NumPy spans and price like ``vector``
    collapse_row_overhead: float = 60.0
    #: fraction of the structural equation cost one element costs inside a
    #: cffi-compiled native nest kernel (calibrated from BENCH_native.json;
    #: real machine code, so well below the NumPy vector factor)
    native_element_factor: float = 0.017
    #: per-invocation cost of one native kernel call (the cffi wrapper
    #: marshals array pointers, geometry, and scalars)
    native_call_overhead: float = 400.0
    #: fraction of the scalar equation cost a NumPy vector op pays per
    #: element once the span is large enough to amortise dispatch
    vector_element_factor: float = 0.012
    #: the same fraction for a vector equation whose array references miss
    #: the slice-based affine fast path: clipped *fancy indexing* gathers
    #: build broadcast index arrays and touch every element through a
    #: take-style C loop — an order of magnitude over the slice path (the
    #: hyperplane-transformed workloads live here, and pricing them like
    #: cheap spans made the planner blind to the native serial tier
    #: beating them)
    vector_gather_factor: float = 0.12
    #: per-equation launch cost of one NumPy vector span
    vector_setup: float = 250.0
    #: submitting + collecting one chunk on the thread pool
    chunk_dispatch: float = 3500.0
    #: one-time cost of standing up one pipeline stage worker (thread-pool
    #: submit + the stage's frontier bookkeeping setup)
    pipeline_stage_spinup: float = 3500.0
    #: per-block cost of one hand-off across a pipeline stage boundary
    #: (frontier publish + consumer wake-up under the shared condition)
    pipeline_link_overhead: float = 900.0
    #: per-element factor on the scan strategy's phase-1 block sweep
    #: relative to the native streaming walk of the same equation (local
    #: scan does the same FMA/compare chain plus, for linear recurrences,
    #: the running coefficient product)
    scan_reduce_factor: float = 1.15
    #: per-element factor on the scan strategy's phase-3 fix-up sweep
    #: (one combine against a block-constant carry — cheaper than the
    #: full recurrence body)
    scan_fixup_factor: float = 0.4
    #: joining one full wave of scan block tasks (two such barriers per
    #: scan: after the block sweep and after the fix-up sweep)
    scan_phase_barrier: float = 2500.0
    #: submitting + collecting one chunk task on the persistent process pool
    process_dispatch: float = 40000.0
    #: one-time cost of forking the persistent process pool
    process_spinup: float = 120000.0

    def with_processors(self, p: int) -> MachineModel:
        return replace(self, processors=p)

    def element_overhead(self, mode: str) -> float:
        """The per-element execution-mode tax added to the structural
        equation cost (``"abstract"``: the paper-era machine, no tax;
        ``"collapse"`` rows are NumPy spans, taxed per row not per
        element)."""
        if mode in ("abstract", "vector", "collapse", "gather", "native"):
            return 0.0
        if mode == "evaluator":
            return self.eval_element_overhead
        if mode == "kernel":
            return self.kernel_element_overhead
        if mode == "nest":
            return self.nest_element_overhead
        raise ValueError(f"unknown execution mode {mode!r}")

    def element_cost(self, eq, mode: str = "abstract") -> float:
        """Cycles for one element of ``eq`` under an execution mode.
        ``"abstract"`` stays integral — the paper-era simulator artifacts
        print whole cycle counts."""
        base = equation_cost(eq, self)
        if mode in ("vector", "collapse"):
            return base * self.vector_element_factor
        if mode == "gather":
            return base * self.vector_gather_factor
        if mode == "native":
            return base * self.native_element_factor
        overhead = self.element_overhead(mode)
        return base + overhead if overhead else base

    @classmethod
    def from_kernel_bench(
        cls, bench: dict, base: MachineModel | None = None
    ) -> MachineModel:
        """Recalibrate the execution-mode overheads from a
        ``BENCH_kernels.json`` payload (see ``benchmarks/bench_kernels.py``).

        The Jacobi rows carry enough information to solve for the per-element
        costs: a grid of ``M`` swept ``maxK`` times performs
        ``(maxK + 1) * (M + 2)^2`` element evaluations per run (eq.1 and
        eq.2 once each, eq.3 over ``maxK - 1`` sweeps); each row records its
        own ``maxk`` (rows from older artifacts fall back to the historical
        8). The compiled scalar kernel row anchors the cycle length (its
        overhead is held at the default); evaluator and vector overheads are
        then solved from their measured per-element seconds.
        """
        from repro.core.paper import jacobi_analyzed

        base = base or cls()
        analyzed = jacobi_analyzed()
        eq3 = next(eq for eq in analyzed.equations if eq.label == "eq.3")
        eqc = equation_cost(eq3, base)

        def per_element(backend: str) -> tuple[float, float]:
            rows = [
                r
                for r in bench.get("rows", [])
                if r["workload"] == "jacobi" and r["backend"] == backend
            ]
            if not rows:
                raise ValueError(f"no jacobi/{backend} rows in bench payload")
            row = max(rows, key=lambda r: r["grid"])
            elements = (row.get("maxk", 8) + 1) * (row["grid"] + 2) ** 2
            return row["evaluator_seconds"] / elements, row["kernel_seconds"] / elements

        eval_s, kernel_s = per_element("serial")
        _, vector_s = per_element("vectorized")
        cycle = kernel_s / (eqc + base.kernel_element_overhead)
        return replace(
            base,
            eval_element_overhead=max(0.0, eval_s / cycle - eqc),
            vector_element_factor=max(1e-6, (vector_s / cycle) / eqc),
        )

    @classmethod
    def from_native_bench(
        cls, bench: dict, base: MachineModel | None = None
    ) -> MachineModel:
        """Recalibrate ``native_element_factor`` from a
        ``BENCH_native.json`` payload (see ``benchmarks/bench_native.py``).

        The serial Jacobi row pairs the fused NumPy nest kernel and the
        native kernel on the same grid; the native per-element factor is
        derived from that measured ratio against the nest overhead the
        model already carries — a pure ratio, so it transfers between
        machines the same way the other mode constants do.

        When the payload additionally carries a **threaded** Jacobi row
        (the threaded-native gate: native span kernels dispatched on the
        thread pool, with ``workers``), ``chunk_dispatch`` is recalibrated
        too. The serial nest row anchors seconds-per-cycle; the threaded
        row's wall clock is then modelled as native span work (overlapping
        across ``workers``) plus one dispatch per chunk, approximating the
        dispatch count as ``maxk * workers`` (one chunked wavefront per
        sweep). The residual over the compute term, divided by that count,
        is the measured per-dispatch cost — clamped positive, and left
        untouched when the residual is noise (measured <= modelled
        compute)."""
        from repro.core.paper import jacobi_analyzed

        base = base or cls()
        rows = [
            r
            for r in bench.get("rows", [])
            if r["workload"] == "jacobi" and r["backend"] == "serial"
            and r.get("nest_seconds") and r.get("native_seconds")
        ]
        if not rows:
            raise ValueError("no jacobi/serial rows in native bench payload")
        row = max(rows, key=lambda r: r["grid"])
        analyzed = jacobi_analyzed()
        eq3 = next(eq for eq in analyzed.equations if eq.label == "eq.3")
        eqc = equation_cost(eq3, base)
        nest_per_element = eqc + base.nest_element_overhead
        ratio = row["native_seconds"] / row["nest_seconds"]
        model = replace(
            base,
            native_element_factor=max(1e-6, ratio * nest_per_element / eqc),
        )

        threaded = [
            r
            for r in bench.get("rows", [])
            if r["workload"] == "jacobi" and r["backend"] == "threaded"
            and r.get("native_seconds") and r.get("workers")
        ]
        if threaded:
            trow = max(threaded, key=lambda r: r["grid"])
            maxk = trow.get("maxk", 8)
            workers = max(1, int(trow["workers"]))
            elements = (maxk + 1) * (trow["grid"] + 2) ** 2
            # seconds per cycle, anchored on the serial nest row
            cycle = row["nest_seconds"] / (
                (row.get("maxk", 8) + 1)
                * (row["grid"] + 2) ** 2
                * nest_per_element
            )
            compute_cycles = (
                elements * eqc * model.native_element_factor / workers
            )
            dispatches = max(1, maxk * workers)
            residual = trow["native_seconds"] / cycle - compute_cycles
            if residual > 0:
                model = replace(
                    model, chunk_dispatch=max(1.0, residual / dispatches)
                )
        return model


def expression_cost(expr: Expr, model: MachineModel) -> int:
    """Worst-case cycles to evaluate a (normalised, element-wise)
    expression on one processor. ``if`` costs its condition plus the wider
    branch — MIMD processors take one side, and the simulator charges the
    worst case."""
    if isinstance(expr, (IntLit, RealLit, BoolLit)):
        return 0
    if isinstance(expr, Name):
        return 0  # scalar/index access folded into the op cost
    if isinstance(expr, Index):
        subs = sum(expression_cost(s, model) for s in expr.subscripts)
        base = 0 if isinstance(expr.base, Name) else expression_cost(expr.base, model)
        return base + subs + model.memory_cost
    if isinstance(expr, FieldRef):
        return model.memory_cost
    if isinstance(expr, BinOp):
        return (
            model.op_cost
            + expression_cost(expr.left, model)
            + expression_cost(expr.right, model)
        )
    if isinstance(expr, UnOp):
        return model.op_cost + expression_cost(expr.operand, model)
    if isinstance(expr, IfExpr):
        return expression_cost(expr.cond, model) + max(
            expression_cost(expr.then, model), expression_cost(expr.orelse, model)
        )
    if isinstance(expr, Call):
        args = sum(expression_cost(a, model) for a in expr.args)
        from repro.ps.semantics import is_builtin

        overhead = model.op_cost * 4 if is_builtin(expr.func) else model.call_cost
        return args + overhead
    raise TypeError(f"no cost rule for {type(expr).__name__}")


def equation_cost(eq, model: MachineModel) -> int:
    """Cycles for one element-wise execution of an equation: evaluate the
    right-hand side, then store (subscript arithmetic is part of op flow)."""
    rhs = expression_cost(eq.rhs, model)
    store = model.memory_cost * len(eq.targets)
    return rhs + store
