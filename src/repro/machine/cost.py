"""Cost model for the simulated MIMD machine.

Costs are in abstract cycles. Defaults are loosely calibrated to a 1980s
shared-memory multiprocessor (cheap scalar ops, noticeable fork/barrier
overhead) — the regime the paper targets, where loop-level parallelism pays
only when the loop body times the iteration count dominates the
synchronisation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ps.ast import (
    BinOp,
    BoolLit,
    Call,
    Expr,
    FieldRef,
    IfExpr,
    Index,
    IntLit,
    Name,
    RealLit,
    UnOp,
)


@dataclass(frozen=True)
class MachineModel:
    """Parameters of the simulated machine."""

    processors: int = 1
    op_cost: int = 1  # one arithmetic/logical operation
    memory_cost: int = 2  # one array element read or write
    loop_overhead: int = 2  # per-iteration loop bookkeeping
    doall_fork: int = 20  # spawning a concurrent loop
    doall_barrier: int = 20  # joining it
    call_cost: int = 50  # module invocation overhead

    def with_processors(self, p: int) -> MachineModel:
        return MachineModel(
            processors=p,
            op_cost=self.op_cost,
            memory_cost=self.memory_cost,
            loop_overhead=self.loop_overhead,
            doall_fork=self.doall_fork,
            doall_barrier=self.doall_barrier,
            call_cost=self.call_cost,
        )


def expression_cost(expr: Expr, model: MachineModel) -> int:
    """Worst-case cycles to evaluate a (normalised, element-wise)
    expression on one processor. ``if`` costs its condition plus the wider
    branch — MIMD processors take one side, and the simulator charges the
    worst case."""
    if isinstance(expr, (IntLit, RealLit, BoolLit)):
        return 0
    if isinstance(expr, Name):
        return 0  # scalar/index access folded into the op cost
    if isinstance(expr, Index):
        subs = sum(expression_cost(s, model) for s in expr.subscripts)
        base = 0 if isinstance(expr.base, Name) else expression_cost(expr.base, model)
        return base + subs + model.memory_cost
    if isinstance(expr, FieldRef):
        return model.memory_cost
    if isinstance(expr, BinOp):
        return (
            model.op_cost
            + expression_cost(expr.left, model)
            + expression_cost(expr.right, model)
        )
    if isinstance(expr, UnOp):
        return model.op_cost + expression_cost(expr.operand, model)
    if isinstance(expr, IfExpr):
        return expression_cost(expr.cond, model) + max(
            expression_cost(expr.then, model), expression_cost(expr.orelse, model)
        )
    if isinstance(expr, Call):
        args = sum(expression_cost(a, model) for a in expr.args)
        from repro.ps.semantics import is_builtin

        overhead = model.op_cost * 4 if is_builtin(expr.func) else model.call_cost
        return args + overhead
    raise TypeError(f"no cost rule for {type(expr).__name__}")


def equation_cost(eq, model: MachineModel) -> int:
    """Cycles for one element-wise execution of an equation: evaluate the
    right-hand side, then store (subscript arithmetic is part of op flow)."""
    rhs = expression_cost(eq.rhs, model)
    store = model.memory_cost * len(eq.targets)
    return rhs + store
