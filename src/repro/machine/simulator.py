"""Flowchart simulator: cycle counts on the idealised MIMD machine.

Semantics:

* ``DO`` — iterations run back-to-back on the current processor team's
  leader: ``n * (loop_overhead + body)``;
* ``DOALL`` — iterations are distributed over ``P`` processors:
  ``fork + ceil(n / P) * (loop_overhead + body) + barrier``. Nested DOALLs
  do not multiply processors (the machine is flat): the *outermost* parallel
  loop takes the team, inner DOALLs run sequentially inside an iteration —
  matching how a 1987 MIMD runtime maps a DOALL nest, and keeping the model
  pessimistic rather than magically square.

An option models *collapsed* nests (``collapse=True``), where perfectly
nested DOALLs share the team as one flattened iteration space; the paper's
"DOALL I (DOALL J ...)" would typically be compiled that way.

``mode`` selects the per-element execution tax of the calibrated machine
model: ``"abstract"`` (default) is the paper's idealised machine, while
``"evaluator"`` / ``"kernel"`` / ``"nest"`` / ``"vector"`` predict this
repo's own runtime paths (see :class:`repro.machine.cost.MachineModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from repro.machine.cost import MachineModel
from repro.ps.semantics import AnalyzedModule
from repro.runtime.values import eval_bound
from repro.schedule.flowchart import (
    Descriptor,
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
    collapse_chain,
)


@dataclass
class SimulationResult:
    cycles: float
    model: MachineModel
    breakdown: dict[str, float] = field(default_factory=dict)

    def speedup_against(self, baseline: SimulationResult) -> float:
        return baseline.cycles / self.cycles if self.cycles else float("inf")


def simulate_flowchart(
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    args: dict[str, int],
    model: MachineModel,
    collapse: bool = True,
    mode: str = "abstract",
) -> SimulationResult:
    """Simulate a scheduled module for given scalar parameter values."""
    scalars = {k: int(v) for k, v in args.items()}
    # Pre-resolve any scalar locals defined by constant equations? The
    # simulator only needs loop bounds, which the paper's modules draw from
    # parameters; computed bounds fall back to a conservative estimate.
    breakdown: dict[str, int] = {}
    total = 0
    for desc in flowchart.descriptors:
        c = _cost(desc, scalars, model, parallel_available=True, collapse=collapse, mode=mode)
        label = _label(desc)
        breakdown[label] = breakdown.get(label, 0) + c
        total += c
    return SimulationResult(total, model, breakdown)


def predicted_speedup(
    analyzed: AnalyzedModule,
    flowchart: Flowchart,
    args: dict[str, int],
    workers: int,
    model: MachineModel | None = None,
    collapse: bool = True,
    mode: str = "abstract",
) -> float:
    """Cost-model speedup of the schedule at ``workers`` processors over one
    — the paper's prediction, for comparison against a backend's measured
    wall-clock speedup (see :func:`repro.machine.report.measure_backend_speedups`)."""
    model = model or MachineModel()
    serial = simulate_flowchart(
        analyzed, flowchart, args, model.with_processors(1), collapse=collapse,
        mode=mode,
    )
    parallel = simulate_flowchart(
        analyzed, flowchart, args, model.with_processors(workers),
        collapse=collapse, mode=mode,
    )
    return parallel.speedup_against(serial)


def _label(desc: Descriptor) -> str:
    if isinstance(desc, NodeDescriptor):
        return desc.node.id
    eqs = _equations_inside(desc)
    inner = ",".join(eqs) if eqs else "?"
    return f"{desc.keyword} {desc.index} ({inner})"


def _equations_inside(desc: Descriptor) -> list[str]:
    if isinstance(desc, NodeDescriptor):
        return [desc.node.id] if desc.node.is_equation else []
    out: list[str] = []
    for d in desc.body:
        out.extend(_equations_inside(d))
    return out


def _extent(desc: LoopDescriptor, scalars: dict[str, int]) -> int:
    lo = eval_bound(desc.subrange.lo, scalars)
    hi = eval_bound(desc.subrange.hi, scalars)
    return max(0, hi - lo + 1)


def _cost(
    desc: Descriptor,
    scalars: dict[str, int],
    model: MachineModel,
    parallel_available: bool,
    collapse: bool,
    mode: str = "abstract",
) -> float:
    if isinstance(desc, NodeDescriptor):
        if desc.node.is_equation:
            return model.element_cost(desc.node.equation, mode)
        return 0
    assert isinstance(desc, LoopDescriptor)

    if desc.parallel and parallel_available:
        if collapse:
            chain, body = collapse_chain(desc)
            n = 1
            for loop in chain:
                n *= _extent(loop, scalars)
            body_cost = sum(
                _cost(d, scalars, model, parallel_available=False,
                      collapse=collapse, mode=mode)
                for d in body
            )
            per_iter = model.loop_overhead * len(chain) + body_cost
            if n == 0:
                return model.doall_fork + model.doall_barrier
            chunks = ceil(n / model.processors)
            return model.doall_fork + chunks * per_iter + model.doall_barrier
        n = _extent(desc, scalars)
        body_cost = sum(
            _cost(d, scalars, model, parallel_available=False,
                  collapse=collapse, mode=mode)
            for d in desc.body
        )
        per_iter = model.loop_overhead + body_cost
        chunks = ceil(n / model.processors)
        return model.doall_fork + chunks * per_iter + model.doall_barrier

    # Sequential execution (DO, or DOALL without a free team).
    n = _extent(desc, scalars)
    body_cost = sum(
        _cost(d, scalars, model, parallel_available=parallel_available,
              collapse=collapse, mode=mode)
        for d in desc.body
    )
    return n * (model.loop_overhead + body_cost)
