"""Simulated MIMD machine.

The paper's compiler emitted annotated C for MIMD machines; we cannot run
1987 hardware, so this package provides an idealised machine model that
executes flowcharts under their DO/DOALL semantics: an iterative loop runs
its iterations back-to-back on one processor; a concurrent loop distributes
iterations over P processors with a fork/barrier cost. The absolute cycle
counts are model artifacts; the *shapes* (who wins, where speedups saturate)
are the reproduction targets.
"""

from repro.machine.cost import MachineModel, equation_cost, expression_cost
from repro.machine.report import SpeedupTable, speedup_table
from repro.machine.simulator import SimulationResult, simulate_flowchart

__all__ = [
    "MachineModel",
    "SimulationResult",
    "SpeedupTable",
    "equation_cost",
    "expression_cost",
    "simulate_flowchart",
    "speedup_table",
]
