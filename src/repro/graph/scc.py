"""Maximally Strongly Connected Components and their scheduling order.

The paper's Schedule-Graph begins: "Find the MSCC's of the graph {Mi}" and
then processes them one by one — necessarily in a producer-before-consumer
(topological) order of the condensation, since the flowchart it concatenates
is executed front to back. Figure 5 numbers the Relaxation module's seven
components 1..7 in exactly that order with declaration-order tie-breaking;
:func:`condensation_order` reproduces it deterministically.

The implementation is an iterative Tarjan (no recursion limits on large
modules) followed by Kahn's algorithm over the condensation with a priority
queue keyed on the smallest member node's ``order``.
"""

from __future__ import annotations

import heapq

from repro.graph.depgraph import GraphView


def strongly_connected_components(view: GraphView) -> list[frozenset[str]]:
    """Tarjan's algorithm, iterative. Returns SCCs in *reverse* topological
    order (every SCC precedes its predecessors), unsorted otherwise."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[frozenset[str]] = []
    counter = 0

    # Deterministic iteration order.
    roots = sorted(view.node_ids)

    for root in roots:
        if root in index:
            continue
        # Each frame: (node, iterator over successors).
        work: list[tuple[str, list[str], int]] = [(root, sorted(view.successors(root)), 0)]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs, i = work.pop()
            advanced = False
            while i < len(succs):
                succ = succs[i]
                i += 1
                if succ not in index:
                    work.append((node, succs, i))
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(view.successors(succ)), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            # All successors done.
            if lowlink[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                result.append(frozenset(comp))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return result


def condensation_order(view: GraphView) -> list[frozenset[str]]:
    """SCCs in deterministic topological (producer-first) order.

    Ties are broken by the smallest ``Node.order`` in each component, which
    sorts data items by declaration order before equations by source order —
    reproducing the component numbering of the paper's Figure 5.
    """
    comps = strongly_connected_components(view)
    comp_of: dict[str, int] = {}
    for ci, comp in enumerate(comps):
        for n in comp:
            comp_of[n] = ci

    n_comps = len(comps)
    out: list[set[int]] = [set() for _ in range(n_comps)]
    indegree = [0] * n_comps
    for edge in view.edges():
        a, b = comp_of[edge.src], comp_of[edge.dst]
        if a != b and b not in out[a]:
            out[a].add(b)
            indegree[b] += 1

    def key(ci: int) -> tuple:
        return min(view.graph.nodes[n].order for n in comps[ci])

    ready = [(key(ci), ci) for ci in range(n_comps) if indegree[ci] == 0]
    heapq.heapify(ready)
    ordered: list[frozenset[str]] = []
    while ready:
        _, ci = heapq.heappop(ready)
        ordered.append(comps[ci])
        for nb in out[ci]:
            indegree[nb] -= 1
            if indegree[nb] == 0:
                heapq.heappush(ready, (key(nb), nb))
    if len(ordered) != n_comps:  # pragma: no cover - cannot happen post-Tarjan
        raise RuntimeError("condensation is cyclic")
    return ordered
