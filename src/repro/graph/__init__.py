"""Dependency-graph substrate (paper section 3.1).

Nodes are the module's data items and equations; directed edges run from
producer to consumer. Each node carries one label per dimension and each
reference edge carries per-subscript labels (position in target, subscript
expression class, offset) — the attributes of the paper's Figure 2.
"""

from repro.graph.build import build_dependency_graph
from repro.graph.depgraph import (
    DependencyGraph,
    DimLabel,
    Edge,
    EdgeKind,
    GraphView,
    Node,
    NodeKind,
)
from repro.graph.labels import SubscriptClass, SubscriptInfo, classify_subscript
from repro.graph.scc import condensation_order, strongly_connected_components

__all__ = [
    "DependencyGraph",
    "DimLabel",
    "Edge",
    "EdgeKind",
    "GraphView",
    "Node",
    "NodeKind",
    "SubscriptClass",
    "SubscriptInfo",
    "build_dependency_graph",
    "classify_subscript",
    "condensation_order",
    "strongly_connected_components",
]
