"""Edge-label attributes (paper Figure 2).

Every subscript of an array reference is classified as one of

* ``I``            — the bare index variable (class ``IDENTITY``);
* ``I - constant`` — the index variable minus a positive constant (class
  ``OFFSET``; the offset amount is recorded);
* *any other expression* (class ``OTHER``).

The paper's scheduling algorithm (step 3) only accepts ``I`` and ``I - c`` in
a dimension being scheduled, and deletes the ``I - c`` edges to break
recursion (step 4). Forward references such as ``I + 1`` fall into ``OTHER``
— but their *delta* is still recorded because the hyperplane transformation
of section 4 needs the full constant-offset dependence vector.

The label also records whether a constant subscript is structurally equal to
the *upper bound* of the dimension's subrange (``A[maxK]``): that is the
second virtual-dimension criterion of section 3.4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ps.ast import BinOp, Expr, IntLit, Name, UnOp, expr_equal, names_in
from repro.ps.semantics import EquationDim
from repro.ps.types import SubrangeType


class SubscriptClass(enum.Enum):
    IDENTITY = "I"
    OFFSET = "I - constant"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


def _symbolic_offset(expr: Expr, index: str) -> str | None:
    """Detect ``index - name`` where ``name`` is a non-index identifier —
    the symbolic-offset form of Myers & Gokhale [14] ("an extension to the
    method which handles certain forms of symbolic offsets in recursive
    equations"). Returns the offset name or None."""
    if (
        isinstance(expr, BinOp)
        and expr.op == "-"
        and isinstance(expr.left, Name)
        and expr.left.ident == index
        and isinstance(expr.right, Name)
        and expr.right.ident != index
    ):
        return expr.right.ident
    return None


@dataclass
class SubscriptInfo:
    """Classification of one subscript position of one array reference."""

    array_pos: int  # which dimension of the referenced array
    expr: Expr  # the (normalised) subscript expression
    cls: SubscriptClass
    eq_dim: int | None = None  # matching equation-dimension position
    index: str | None = None  # the single index variable involved, if any
    delta: int | None = None  # expr == index + delta, when affine with slope 1
    const: int | None = None  # literal value, when the expr is index-free
    is_upper_bound: bool = False  # expr == declared upper bound of the dim
    indices: frozenset[str] = frozenset()  # all index variables mentioned
    symbolic_offset: str | None = None  # m in "I - m" (the [14] extension)

    @property
    def offset(self) -> int | None:
        """The paper's "offset amount": c in ``I - c`` (positive), else None."""
        if self.cls is SubscriptClass.OFFSET:
            assert self.delta is not None
            return -self.delta
        return None

    def describe(self) -> str:
        """Human-readable label, Figure-2 style."""
        if self.cls is SubscriptClass.IDENTITY:
            return f"{self.index}"
        if self.cls is SubscriptClass.OFFSET:
            return f"{self.index} - {self.offset}"
        if self.symbolic_offset is not None:
            return f"{self.index} - {self.symbolic_offset}"
        if self.const is not None or (self.index is None and not self.indices):
            tag = "=hi" if self.is_upper_bound else ""
            return f"const{tag}"
        if self.delta is not None and self.delta > 0:
            return f"{self.index} + {self.delta}"
        return "other"


def _literal_int(expr: Expr) -> int | None:
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, UnOp) and expr.op in ("-", "+"):
        v = _literal_int(expr.operand)
        if v is None:
            return None
        return -v if expr.op == "-" else v
    if isinstance(expr, BinOp) and expr.op in ("+", "-", "*"):
        left = _literal_int(expr.left)
        right = _literal_int(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    return None


def _probe(expr: Expr, index: str, value: int) -> int | None:
    """Evaluate ``expr`` with ``index := value``; None if any other name or a
    non-linear construct appears."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Name):
        return value if expr.ident == index else None
    if isinstance(expr, UnOp) and expr.op in ("-", "+"):
        v = _probe(expr.operand, index, value)
        if v is None:
            return None
        return -v if expr.op == "-" else v
    if isinstance(expr, BinOp) and expr.op in ("+", "-", "*", "div", "mod"):
        left = _probe(expr.left, index, value)
        right = _probe(expr.right, index, value)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "div":
            return None if right == 0 else int(left / right)
        return None if right == 0 else left - right * int(left / right)
    return None


def classify_subscript(
    expr: Expr,
    array_pos: int,
    dims: list[EquationDim],
    dim_subrange: SubrangeType | None,
) -> SubscriptInfo:
    """Classify one subscript expression of an array reference appearing in
    an equation quantified over ``dims``. ``dim_subrange`` is the declared
    subrange of the referenced array's dimension ``array_pos`` (used for the
    upper-bound test)."""
    index_names = [d.index for d in dims]
    mentioned = names_in(expr) & set(index_names)

    if not mentioned:
        const = _literal_int(expr)
        is_ub = bool(dim_subrange is not None and expr_equal(expr, dim_subrange.hi))
        return SubscriptInfo(
            array_pos=array_pos,
            expr=expr,
            cls=SubscriptClass.OTHER,
            const=const,
            is_upper_bound=is_ub,
            indices=frozenset(),
        )

    if len(mentioned) > 1:
        return SubscriptInfo(
            array_pos=array_pos,
            expr=expr,
            cls=SubscriptClass.OTHER,
            indices=frozenset(mentioned),
        )

    index = next(iter(mentioned))
    eq_dim = index_names.index(index)
    # Numeric probing: expr must be index + delta (slope exactly 1).
    f0 = _probe(expr, index, 0)
    f1 = _probe(expr, index, 1)
    f2 = _probe(expr, index, 2)
    if f0 is not None and f1 is not None and f2 is not None and f1 - f0 == 1 and f2 - f1 == 1:
        delta = f0
        if delta == 0:
            cls = SubscriptClass.IDENTITY
        elif delta < 0:
            cls = SubscriptClass.OFFSET
        else:
            cls = SubscriptClass.OTHER  # "I + constant" is any-other-expression
        return SubscriptInfo(
            array_pos=array_pos,
            expr=expr,
            cls=cls,
            eq_dim=eq_dim,
            index=index,
            delta=delta,
            indices=frozenset({index}),
        )
    return SubscriptInfo(
        array_pos=array_pos,
        expr=expr,
        cls=SubscriptClass.OTHER,
        eq_dim=eq_dim,
        index=index,
        indices=frozenset({index}),
        symbolic_offset=_symbolic_offset(expr, index),
    )
