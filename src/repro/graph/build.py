"""Dependency-graph construction from an analyzed module (paper section 3.1).

Edge inventory, following the paper:

* "data dependency edges from all variables on the right hand side of an
  equation to the equation" — one edge per textual reference, labelled with
  the Figure-2 subscript attributes;
* "from the equation to the variable on the left hand side" — the LHS edge,
  labelled with the (identity/constant) target subscripts;
* "from variables defining a subrange bound to variables using that
  subrange" — e.g. ``M -> InitialA, A, newA`` and ``maxK -> A``;
* bound edges also run to equations whose *dimension* bounds use the
  variable (the generated loop needs the bound before it can run);
* "hierarchical edges ... between the fields of a record and the record
  itself".
"""

from __future__ import annotations

from repro.graph.depgraph import DependencyGraph, DimLabel, Edge, EdgeKind, Node, NodeKind
from repro.graph.labels import SubscriptInfo, classify_subscript
from repro.ps.ast import Name, walk_expr
from repro.ps.semantics import AnalyzedEquation, AnalyzedModule
from repro.ps.types import ArrayType, RecordType, SubrangeType


def _dim_labels(t) -> list[DimLabel]:
    if isinstance(t, ArrayType):
        return [DimLabel(d.name, d) for d in t.dims]
    return []


def _add_field_nodes(
    g: DependencyGraph, base_id: str, rec: RecordType, order: tuple[int, int]
) -> None:
    for fname, ftype in rec.fields.items():
        fid = f"{base_id}.{fname}"
        node = Node(
            fid,
            NodeKind.DATA,
            _dim_labels(ftype),
            order,
            symbol=None,
            fieldpath=tuple(fid.split(".")[1:]),
        )
        g.add_node(node)
        g.add_edge(base_id, fid, EdgeKind.HIERARCHICAL)
        if isinstance(ftype, RecordType):
            _add_field_nodes(g, fid, ftype, order)


def _bound_symbols(sub: SubrangeType, table) -> list[str]:
    names: list[str] = []
    for bound in (sub.lo, sub.hi):
        for node in walk_expr(bound):
            if isinstance(node, Name) and table.symbol(node.ident) is not None:
                if node.ident not in names:
                    names.append(node.ident)
    return names


def _classify_ref(
    eq: AnalyzedEquation, subscripts, src_node: Node
) -> list[SubscriptInfo]:
    infos: list[SubscriptInfo] = []
    for pos, sub in enumerate(subscripts):
        dim_sub = src_node.dims[pos].subrange if pos < len(src_node.dims) else None
        infos.append(classify_subscript(sub, pos, eq.dims, dim_sub))
    return infos


def build_dependency_graph(analyzed: AnalyzedModule) -> DependencyGraph:
    g = DependencyGraph()
    table = analyzed.table

    # -- data nodes (declaration order) --------------------------------------
    for sym in table.symbols.values():
        node = Node(sym.name, NodeKind.DATA, _dim_labels(sym.type), (0, sym.order), symbol=sym)
        g.add_node(node)
        if isinstance(sym.type, RecordType):
            _add_field_nodes(g, sym.name, sym.type, (0, sym.order))

    # -- equation nodes -------------------------------------------------------
    for i, eq in enumerate(analyzed.equations):
        dims = [DimLabel(d.index, d.subrange) for d in eq.dims]
        g.add_node(Node(eq.label, NodeKind.EQUATION, dims, (1, i), equation=eq))

    # -- bound edges to arrays --------------------------------------------------
    seen_bound: set[tuple[str, str]] = set()
    for sym in table.symbols.values():
        if isinstance(sym.type, ArrayType):
            for dim in sym.type.dims:
                for name in _bound_symbols(dim, table):
                    if (name, sym.name) not in seen_bound:
                        seen_bound.add((name, sym.name))
                        g.add_edge(name, sym.name, EdgeKind.BOUND)

    # -- per-equation edges -------------------------------------------------------
    for eq in analyzed.equations:
        # RHS reference edges (one per textual reference).
        for ref in eq.refs:
            src_id = ref.name + "".join(f".{f}" for f in ref.fieldpath)
            src_node = g.node(src_id)
            infos = _classify_ref(eq, ref.subscripts, src_node)
            g.add_edge(src_id, eq.label, EdgeKind.DATA, subscripts=infos, ref=ref)

        # Bound edges for the equation's own loop dimensions.
        for name in eq.bound_uses:
            if (name, eq.label) not in seen_bound:
                seen_bound.add((name, eq.label))
                g.add_edge(name, eq.label, EdgeKind.BOUND)

        # LHS edge(s): equation -> defined variable.
        for target in eq.targets:
            dst_node = g.node(target.name)
            infos = _classify_ref(eq, target.subscripts, dst_node)
            g.add_edge(eq.label, target.name, EdgeKind.DATA, subscripts=infos, is_lhs=True)

    return g


def data_adjacency(g: DependencyGraph) -> dict[str, set[str]]:
    """Aggregated (deduplicated) adjacency over DATA edges — the shape shown
    in the paper's Figure 3."""
    adj: dict[str, set[str]] = {n: set() for n in g.nodes}
    for e in g.edges.values():
        if e.kind is EdgeKind.DATA:
            adj[e.src].add(e.dst)
    return adj


def bound_adjacency(g: DependencyGraph) -> dict[str, set[str]]:
    """Aggregated adjacency over BOUND edges."""
    adj: dict[str, set[str]] = {n: set() for n in g.nodes}
    for e in g.edges.values():
        if e.kind is EdgeKind.BOUND:
            adj[e.src].add(e.dst)
    return adj
