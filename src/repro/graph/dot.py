"""Rendering of dependency graphs: Graphviz dot and a plain-text listing
(used by the Figure-3 benchmark to print the Relaxation graph)."""

from __future__ import annotations

from repro.graph.depgraph import DependencyGraph, EdgeKind


def to_dot(g: DependencyGraph, name: str = "depgraph") -> str:
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for node in g.nodes.values():
        shape = "box" if node.is_equation else "ellipse"
        dims = ",".join(d.name for d in node.dims)
        label = node.id if not dims else f"{node.id}[{dims}]"
        lines.append(f'  "{node.id}" [shape={shape}, label="{label}"];')
    for e in g.edges.values():
        attrs = []
        if e.kind is EdgeKind.BOUND:
            attrs.append("style=dashed")
        elif e.kind is EdgeKind.HIERARCHICAL:
            attrs.append("style=dotted")
        if e.subscripts and not e.is_lhs:
            label = ",".join(s.describe() for s in e.subscripts)
            attrs.append(f'label="{label}"')
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{e.src}" -> "{e.dst}"{attr_text};')
    lines.append("}")
    return "\n".join(lines)


def to_text(g: DependencyGraph) -> str:
    """Deterministic plain-text listing: one line per edge, grouped by kind."""
    lines: list[str] = []
    by_kind = {EdgeKind.DATA: [], EdgeKind.BOUND: [], EdgeKind.HIERARCHICAL: []}
    for e in g.edges.values():
        if e.is_lhs:
            desc = f"{e.src} -> {e.dst}  (defines)"
        elif e.subscripts:
            label = ", ".join(s.describe() for s in e.subscripts)
            desc = f"{e.src} -> {e.dst}  [{label}]"
        else:
            desc = f"{e.src} -> {e.dst}"
        by_kind[e.kind].append(desc)
    for kind, title in (
        (EdgeKind.DATA, "data dependency edges"),
        (EdgeKind.BOUND, "subrange-bound edges"),
        (EdgeKind.HIERARCHICAL, "hierarchical edges"),
    ):
        if by_kind[kind]:
            lines.append(f"{title}:")
            lines.extend(f"  {d}" for d in sorted(by_kind[kind]))
    return "\n".join(lines)
