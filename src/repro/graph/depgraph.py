"""The dependency graph G = (N, E) of a PS module (paper section 3.1).

* **Nodes** are the data items and the equations of the module. Each node is
  annotated with one label per dimension (``A[K,I,J]`` has three).
* **Edges** are directed producer -> consumer. There is one *reference edge*
  per textual array/scalar reference (the paper labels each with the
  subscript-expression attributes of Figure 2), one *LHS edge* from each
  equation to the item it defines, *bound edges* from variables that define a
  subrange bound to the items using that subrange, and *hierarchical edges*
  from a record to its fields.

The scheduler works on progressively smaller *views* of the graph (after
deleting ``I - c`` edges, step 4 of Schedule-Component); :class:`GraphView`
provides those without copying.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.graph.labels import SubscriptInfo
from repro.ps.semantics import AnalyzedEquation, Reference
from repro.ps.symbols import Symbol
from repro.ps.types import SubrangeType


class NodeKind(enum.Enum):
    DATA = "data"
    EQUATION = "equation"


class EdgeKind(enum.Enum):
    DATA = "data"  # producer -> consumer reference (or LHS definition)
    BOUND = "bound"  # bound variable -> item whose subrange uses it
    HIERARCHICAL = "hierarchical"  # record -> field


@dataclass
class DimLabel:
    """One node label: the subrange occupying one dimension of the node."""

    name: str  # index-variable / subrange name
    subrange: SubrangeType

    def __repr__(self) -> str:  # pragma: no cover
        return f"DimLabel({self.name})"


@dataclass
class Node:
    id: str
    kind: NodeKind
    dims: list[DimLabel]
    order: tuple[int, int]  # (0, decl order) for data, (1, eq order) for eqs
    symbol: Symbol | None = None
    equation: AnalyzedEquation | None = None
    fieldpath: tuple[str, ...] = ()

    @property
    def is_data(self) -> bool:
        return self.kind is NodeKind.DATA

    @property
    def is_equation(self) -> bool:
        return self.kind is NodeKind.EQUATION

    @property
    def rank(self) -> int:
        return len(self.dims)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Node({self.id})"


@dataclass
class Edge:
    id: int
    src: str
    dst: str
    kind: EdgeKind
    subscripts: list[SubscriptInfo] = field(default_factory=list)
    ref: Reference | None = None
    is_lhs: bool = False  # True for equation -> defined-variable edges

    def __repr__(self) -> str:  # pragma: no cover
        tag = {EdgeKind.DATA: "", EdgeKind.BOUND: " [bound]", EdgeKind.HIERARCHICAL: " [hier]"}
        return f"Edge({self.src} -> {self.dst}{tag[self.kind]})"


class DependencyGraph:
    """A labelled multigraph. Node ids are symbol names (``A``), field paths
    (``p.x``) or equation labels (``eq.3``)."""

    def __init__(self) -> None:
        self.nodes: dict[str, Node] = {}
        self.edges: dict[int, Edge] = {}
        self._next_edge = 0
        self._out: dict[str, list[int]] = {}
        self._in: dict[str, list[int]] = {}

    # -- construction --------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.id in self.nodes:
            raise ValueError(f"duplicate node {node.id!r}")
        self.nodes[node.id] = node
        self._out[node.id] = []
        self._in[node.id] = []
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        kind: EdgeKind = EdgeKind.DATA,
        subscripts: list[SubscriptInfo] | None = None,
        ref: Reference | None = None,
        is_lhs: bool = False,
    ) -> Edge:
        if src not in self.nodes or dst not in self.nodes:
            raise ValueError(f"edge endpoints must exist: {src} -> {dst}")
        edge = Edge(
            self._next_edge,
            src,
            dst,
            kind,
            subscripts=subscripts or [],
            ref=ref,
            is_lhs=is_lhs,
        )
        self._next_edge += 1
        self.edges[edge.id] = edge
        self._out[src].append(edge.id)
        self._in[dst].append(edge.id)
        return edge

    # -- queries -------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        return self.nodes[node_id]

    def out_edges(self, node_id: str) -> list[Edge]:
        return [self.edges[e] for e in self._out[node_id]]

    def in_edges(self, node_id: str) -> list[Edge]:
        return [self.edges[e] for e in self._in[node_id]]

    def successors(self, node_id: str) -> list[str]:
        return [self.edges[e].dst for e in self._out[node_id]]

    def predecessors(self, node_id: str) -> list[str]:
        return [self.edges[e].src for e in self._in[node_id]]

    def edges_between(self, src: str, dst: str) -> list[Edge]:
        return [self.edges[e] for e in self._out[src] if self.edges[e].dst == dst]

    def data_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.is_data]

    def equation_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.is_equation]

    def full_view(self) -> GraphView:
        return GraphView(self, frozenset(self.nodes), frozenset(self.edges))


@dataclass(frozen=True)
class GraphView:
    """An induced sub-multigraph: a node subset and an edge subset. Edges
    whose endpoints fall outside the node set are excluded implicitly."""

    graph: DependencyGraph
    node_ids: frozenset[str]
    edge_ids: frozenset[int]

    def contains_edge(self, edge: Edge) -> bool:
        return (
            edge.id in self.edge_ids
            and edge.src in self.node_ids
            and edge.dst in self.node_ids
        )

    def nodes(self) -> list[Node]:
        return [self.graph.nodes[n] for n in sorted(self.node_ids)]

    def edges(self) -> list[Edge]:
        return [
            self.graph.edges[e]
            for e in sorted(self.edge_ids)
            if self.contains_edge(self.graph.edges[e])
        ]

    def successors(self, node_id: str) -> list[str]:
        return [
            e.dst for e in self.graph.out_edges(node_id) if self.contains_edge(e)
        ]

    def out_edges(self, node_id: str) -> list[Edge]:
        return [e for e in self.graph.out_edges(node_id) if self.contains_edge(e)]

    def in_edges(self, node_id: str) -> list[Edge]:
        return [e for e in self.graph.in_edges(node_id) if self.contains_edge(e)]

    def restrict_nodes(self, node_ids: frozenset[str]) -> GraphView:
        return GraphView(self.graph, node_ids & self.node_ids, self.edge_ids)

    def without_edges(self, edge_ids: set[int]) -> GraphView:
        return GraphView(self.graph, self.node_ids, self.edge_ids - frozenset(edge_ids))
