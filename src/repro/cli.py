"""Command-line interface: ``python -m repro <command> module.ps``.

Commands
--------
schedule   print the flowchart (Figure-6 style) and window analysis
graph      print the dependency graph (text or Graphviz dot)
compile    print generated C or Python
transform  run the section-4 hyperplane derivation and print the report
plan       print the cost-driven execution plan (backend, chunking, and
           kernel choice per loop nest)
run        execute a module (scalars via --set, array inputs random or
           loaded from .npy via --load)
serve      compile modules once, warm plans/kernels/worker pools, and
           serve run requests over TCP or a unix socket
client     talk to a running serve daemon (run/plan/describe/stats/...)
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.core.pipeline import CompilerOptions, compile_source
from repro.errors import ReproError
from repro.graph.build import build_dependency_graph
from repro.graph.dot import to_dot, to_text
from repro.hyperplane.pipeline import hyperplane_transform
from repro.plan.ir import STRATEGIES
from repro.ps.parser import parse_module
from repro.ps.printer import format_module
from repro.ps.semantics import analyze_module
from repro.runtime.backends import available_backends
from repro.runtime.executor import ExecutionOptions, execute_module
from repro.schedule.merge import merge_loops
from repro.schedule.scheduler import schedule_module


def _read_module(path: str):
    with open(path, encoding="utf-8") as fh:
        return parse_module(fh.read())


def _flowchart(analyzed, merge: bool):
    if not merge:
        return schedule_module(analyzed)
    graph = build_dependency_graph(analyzed)
    return merge_loops(schedule_module(analyzed, graph), graph)


def _cmd_schedule(args) -> int:
    analyzed = analyze_module(_read_module(args.module))
    flow = schedule_module(analyzed)
    print(flow.pretty())
    if flow.windows:
        print()
        print("virtual dimensions (windows):")
        for name, dims in sorted(flow.windows.items()):
            for d, w in sorted(dims.items()):
                print(f"  {name} dimension {d}: window of {w}")
    return 0


def _cmd_graph(args) -> int:
    analyzed = analyze_module(_read_module(args.module))
    graph = build_dependency_graph(analyzed)
    print(to_dot(graph) if args.dot else to_text(graph))
    return 0


def _cmd_compile(args) -> int:
    with open(args.module, encoding="utf-8") as fh:
        source = fh.read()
    options = CompilerOptions(
        merge_loops=args.merge,
        hyperplane=args.hyperplane,
        use_windows=not args.no_windows,
    )
    result = compile_source(source, options)
    for w in result.warnings:
        print(f"warning: {w}", file=sys.stderr)
    if args.emit == "c":
        if result.c_source is None:
            print("error: C generation failed (see warnings)", file=sys.stderr)
            return 1
        print(result.c_source)
    elif args.emit == "python":
        if result.python_source is None:
            print("error: Python generation failed (see warnings)", file=sys.stderr)
            return 1
        print(result.python_source)
    else:
        print(result.flowchart.pretty())
    return 0


def _cmd_transform(args) -> int:
    analyzed = analyze_module(_read_module(args.module))
    res = hyperplane_transform(analyzed, array=args.array)
    print(f"recursive array     : {res.array}")
    print(f"dependence vectors  : {res.dependences.vectors}")
    print(f"inequalities        : {'; '.join(res.inequalities)}")
    print(f"time vector         : {res.pi}")
    print(f"time equation       : {res.time_equation}")
    print(f"transformation T    : {res.T}")
    print(f"inverse             : {res.Tinv}")
    print(f"recurrence window   : {res.recurrence_window}")
    print()
    print("schedule before:")
    print(res.original_flowchart.pretty())
    print()
    print("schedule after:")
    print(res.transformed_flowchart.pretty())
    if args.emit_module:
        print()
        print(format_module(res.transformed_module))
    return 0


def _execution_options(args, vectorize: bool = True) -> ExecutionOptions:
    """Execution options from the shared CLI flags, through the one
    documented resolution path (``ExecutionOptions.resolve``) that the
    library, the serve daemon, and these commands all use."""
    return ExecutionOptions.resolve(
        None,
        vectorize=vectorize,
        backend=args.backend,
        workers=args.workers,
        use_windows=args.windows,
        use_kernels=not args.no_kernels,
        use_collapse=not args.no_collapse,
        use_fission=False if getattr(args, "no_fission", False) else None,
        kernel_tier=args.kernel_tier,
        strategy=getattr(args, "strategy", None),
        allow_reassoc=getattr(args, "allow_reassoc", False) or None,
    )


def _cmd_plan(args) -> int:
    from repro.plan.calibration import PlanCalibration
    from repro.plan.planner import build_plan

    analyzed = analyze_module(_read_module(args.module))
    flow = _flowchart(analyzed, getattr(args, "merge", False))
    options = _execution_options(args)
    scalars = _parse_assignments(args.set or [])
    # The durable per-machine store, so the provenance block reports the
    # calibration hits/misses an actual auto run would see.
    plan = build_plan(
        analyzed, flow, options, scalars, calibration=PlanCalibration.load()
    )
    text = plan.pretty(cycles=args.cycles)
    print(text)
    print()
    print(plan.explain())
    if args.save:
        from repro.runtime.kernels import native

        sources = native.emittable_nest_sources(
            analyzed, flow, use_windows=args.windows
        )
        out = native.persist_plan(analyzed.name, text, sources)
        print(f"saved plan + {len(sources)} generated C kernel(s) to {out}",
              file=sys.stderr)
    return 0


def _parse_assignments(pairs: Sequence[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--set expects NAME=INT, got {pair!r}")
        name, _, value = pair.partition("=")
        out[name] = int(value)
    return out


def _cmd_run(args) -> int:
    analyzed = analyze_module(_read_module(args.module))
    run_args: dict = dict(_parse_assignments(args.set or []))
    for pair in args.load or []:
        name, _, path = pair.partition("=")
        run_args[name] = np.load(path)
    # Fill remaining array parameters with seeded random data — the same
    # helper the serve daemon uses for "fill": true requests.
    from repro.serve.session import fill_random_arrays

    for pname in fill_random_arrays(analyzed, run_args, seed=args.seed):
        shape = run_args[pname].shape
        print(f"note: filled {pname} with random{shape} (seed {args.seed})",
              file=sys.stderr)
    if args.scalar and args.backend not in ("auto", "serial"):
        raise ReproError(
            f"--scalar is shorthand for --backend serial and conflicts "
            f"with --backend {args.backend}"
        )
    options = _execution_options(args, vectorize=not args.scalar)
    flow = (
        _flowchart(analyzed, True) if getattr(args, "merge", False) else None
    )
    results = execute_module(
        analyzed, run_args, flowchart=flow, options=options
    )
    with np.printoptions(precision=6, suppress=True):
        for name, value in results.items():
            print(f"{name} =")
            print(value)
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import DaemonThread, Session

    session = Session(execution=_execution_options(args))
    for path in args.modules:
        name = session.load_file(path)
        print(f"loaded {name} from {path}", file=sys.stderr)
    warm_sizes = _parse_assignments(args.warm or [])
    session.warm(sizes=warm_sizes or None)
    runner = DaemonThread(
        session,
        host=args.host,
        port=args.port or 0,
        unix_path=args.socket,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
    )
    daemon = runner.start()
    if isinstance(daemon.address, tuple):
        print(f"serving on {daemon.address[0]}:{daemon.address[1]}", flush=True)
    else:
        print(f"serving on {daemon.address}", flush=True)
    try:
        runner.join()
    except KeyboardInterrupt:
        runner.stop()
    return 0


def _client(args):
    from repro.serve import ReproClient

    return ReproClient(host=args.host, port=args.port, unix_path=args.socket)


def _client_overrides(args) -> dict:
    overrides = {"backend": args.backend, "workers": args.workers}
    return {k: v for k, v in overrides.items() if v is not None}


def _cmd_client_run(args) -> int:
    run_args: dict = dict(_parse_assignments(args.set or []))
    for pair in args.load or []:
        name, _, path = pair.partition("=")
        run_args[name] = np.load(path)
    with _client(args) as client:
        results = client.run(
            args.run_module,
            run_args,
            fill=True,
            seed=args.seed,
            **_client_overrides(args),
        )
    with np.printoptions(precision=6, suppress=True):
        for name, value in results.items():
            print(f"{name} =")
            print(value)
    return 0


def _cmd_client_plan(args) -> int:
    sizes = _parse_assignments(args.set or [])
    with _client(args) as client:
        plan = client.plan(args.run_module, sizes, **_client_overrides(args))
    print(f"backend: {plan['backend']}  workers: {plan['workers']}  "
          f"cycles: {plan['cycles']:.0f}")
    for index, strategy in plan["strategies"]:
        print(f"  loop {index}: {strategy}")
    return 0


def _cmd_client_simple(args) -> int:
    import json

    op = args.client_command
    with _client(args) as client:
        if op == "ping":
            print(client.ping())
        elif op == "modules":
            for name in client.modules():
                print(name)
        elif op == "describe":
            print(json.dumps(client.describe(args.run_module), indent=2))
        elif op == "stats":
            print(json.dumps(client.stats(), indent=2))
        elif op == "shutdown":
            print(client.shutdown())
    return 0


def _add_execution_flags(p: argparse.ArgumentParser) -> None:
    """The execution-option flags shared by plan/run/serve — one flag set
    feeding :func:`_execution_options`."""
    p.add_argument("--windows", action="store_true",
                   help="allocate virtual dimensions as windows")
    p.add_argument("--backend", default="auto",
                   choices=["auto", *available_backends()],
                   help="DOALL execution backend (default: planner's choice)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker count for the threaded/process backends")
    p.add_argument("--no-kernels", action="store_true",
                   help="disable compiled kernels (reference evaluator only)")
    p.add_argument("--no-collapse", action="store_true",
                   help="disable flattening of perfect DOALL nests")
    p.add_argument("--no-fission", action="store_true",
                   help="disable dependence-driven loop splitting")
    p.add_argument("--kernel-tier", default="native",
                   choices=["native", "numpy", "evaluator"],
                   help="highest kernel tier (default: native)")
    p.add_argument("--allow-reassoc", action="store_true",
                   help="let the parallel scan strategy reassociate float "
                        "+/* recurrences (bit-for-bit parity with the "
                        "in-order reference is traded for speed)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PS compiler reproduction (Gokhale 1987): scheduling, "
        "windows, hyperplane transformation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="print the flowchart and windows")
    p.add_argument("module", help="PS source file")
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("graph", help="print the dependency graph")
    p.add_argument("module")
    p.add_argument("--dot", action="store_true", help="Graphviz output")
    p.set_defaults(func=_cmd_graph)

    p = sub.add_parser("compile", help="generate code")
    p.add_argument("module")
    p.add_argument("--emit", choices=["c", "python", "flowchart"], default="c")
    p.add_argument("--merge", action="store_true", help="merge compatible loops")
    p.add_argument("--hyperplane", action="store_true",
                   help="apply the section-4 transformation first")
    p.add_argument("--no-windows", action="store_true",
                   help="disable window allocation")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("transform", help="hyperplane derivation report")
    p.add_argument("module")
    p.add_argument("--array", default=None, help="recursive array to transform")
    p.add_argument("--emit-module", action="store_true",
                   help="also print the transformed PS source")
    p.set_defaults(func=_cmd_transform)

    p = sub.add_parser("plan", help="print the cost-driven execution plan")
    p.add_argument("module")
    p.add_argument("--set", action="append", metavar="NAME=INT",
                   help="scalar parameter (trip counts need sizes)")
    p.add_argument("--backend", default="auto",
                   choices=["auto", *available_backends()],
                   help="pin the plan to a backend (default: planner's choice)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker count the plan budgets for")
    p.add_argument("--strategy", default=None, choices=list(STRATEGIES),
                   help="prefer this strategy wherever it is valid "
                        "(pipeline: decouple every partitionable sibling "
                        "run of loops into concurrent stages)")
    p.add_argument("--windows", action="store_true",
                   help="plan for window-allocated virtual dimensions")
    p.add_argument("--no-kernels", action="store_true",
                   help="plan for evaluator-only execution")
    p.add_argument("--no-collapse", action="store_true",
                   help="disable flattening of perfect DOALL nests")
    p.add_argument("--no-fission", action="store_true",
                   help="disable dependence-driven loop splitting")
    p.add_argument("--merge", action="store_true",
                   help="apply the loop-merging pass before planning "
                        "(merged nests are what fission splits)")
    p.add_argument("--kernel-tier", default="native",
                   choices=["native", "numpy", "evaluator"],
                   help="highest kernel tier the plan budgets for "
                        "(default: native, degrading to numpy at run time "
                        "when no C compiler exists)")
    p.add_argument("--allow-reassoc", action="store_true",
                   help="let the scan strategy reassociate float +/* "
                        "recurrences (results differ from the in-order "
                        "reference by rounding)")
    p.add_argument("--cycles", action="store_true",
                   help="include calibrated cycle predictions")
    p.add_argument("--save", action="store_true",
                   help="persist the plan next to the generated C kernels "
                        "in the on-disk native cache (offline builds)")
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("run", help="execute a module")
    p.add_argument("module")
    p.add_argument("--set", action="append", metavar="NAME=INT",
                   help="scalar parameter")
    p.add_argument("--load", action="append", metavar="NAME=FILE.npy",
                   help="array parameter from a .npy file")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for auto-filled array parameters")
    p.add_argument("--scalar", action="store_true",
                   help="use the scalar reference interpreter "
                        "(shorthand for --backend serial)")
    p.add_argument("--windows", action="store_true",
                   help="allocate virtual dimensions as windows")
    p.add_argument("--backend", default="auto",
                   choices=["auto", *available_backends()],
                   help="DOALL execution backend (auto follows --scalar)")
    p.add_argument("--strategy", default=None, choices=list(STRATEGIES),
                   help="prefer this strategy wherever it is valid "
                        "(pipeline: decouple every partitionable sibling "
                        "run of loops into concurrent stages)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker count for the threaded/process backends "
                        "(default: cpu count)")
    p.add_argument("--no-kernels", action="store_true",
                   help="disable compiled equation kernels and run "
                        "everything on the reference tree-walking evaluator")
    p.add_argument("--no-collapse", action="store_true",
                   help="disable flattening of perfect DOALL nests into "
                        "one chunked iteration space")
    p.add_argument("--no-fission", action="store_true",
                   help="disable dependence-driven splitting of sequential "
                        "loops into independent replica loops")
    p.add_argument("--merge", action="store_true",
                   help="apply the loop-merging pass before execution")
    p.add_argument("--kernel-tier", default="native",
                   choices=["native", "numpy", "evaluator"],
                   help="highest kernel tier DOALL nests may use: native "
                        "(cffi-compiled C, the default), numpy "
                        "(exec-compiled NumPy kernels), or evaluator "
                        "(reference tree walk only)")
    p.add_argument("--allow-reassoc", action="store_true",
                   help="let the scan strategy reassociate float +/* "
                        "recurrences (results differ from the in-order "
                        "reference by rounding)")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "serve",
        help="compile once and serve run requests from a warm daemon",
    )
    p.add_argument("modules", nargs="+", metavar="MODULE.ps",
                   help="PS source files to compile and serve")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="TCP port (default: an ephemeral port, printed on "
                        "the ready line)")
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="serve on a unix socket instead of TCP")
    p.add_argument("--warm", action="append", metavar="NAME=INT",
                   help="sizes to pre-plan and prime pools for (repeatable); "
                        "kernels warm regardless")
    p.add_argument("--max-inflight", type=int, default=8, metavar="N",
                   help="requests executing at once (default 8)")
    p.add_argument("--max-queue", type=int, default=32, metavar="N",
                   help="waiting requests beyond which the daemon answers "
                        "Overloaded (default 32)")
    _add_execution_flags(p)
    p.set_defaults(func=_cmd_serve)

    conn = argparse.ArgumentParser(add_help=False)
    conn.add_argument("--host", default="127.0.0.1")
    conn.add_argument("--port", type=int, default=None)
    conn.add_argument("--socket", default=None, metavar="PATH")

    p = sub.add_parser("client", help="talk to a running serve daemon")
    csub = p.add_subparsers(dest="client_command", required=True)

    c = csub.add_parser("run", parents=[conn], help="execute a module")
    c.add_argument("run_module", metavar="MODULE", help="served module name")
    c.add_argument("--set", action="append", metavar="NAME=INT",
                   help="scalar parameter")
    c.add_argument("--load", action="append", metavar="NAME=FILE.npy",
                   help="array parameter from a .npy file")
    c.add_argument("--seed", type=int, default=0,
                   help="seed for daemon-filled array parameters")
    c.add_argument("--backend", default=None,
                   choices=["auto", *available_backends()])
    c.add_argument("--workers", type=int, default=None, metavar="N")
    c.set_defaults(func=_cmd_client_run)

    c = csub.add_parser("plan", parents=[conn],
                        help="show the plan the daemon would execute")
    c.add_argument("run_module", metavar="MODULE")
    c.add_argument("--set", action="append", metavar="NAME=INT")
    c.add_argument("--backend", default=None,
                   choices=["auto", *available_backends()])
    c.add_argument("--workers", type=int, default=None, metavar="N")
    c.set_defaults(func=_cmd_client_plan)

    for op, help_text in [
        ("ping", "check the daemon is alive"),
        ("modules", "list served modules"),
        ("describe", "print a module's parameter/result signature"),
        ("stats", "print session counters and cache statistics"),
        ("shutdown", "stop the daemon (pools torn down, shm unlinked)"),
    ]:
        c = csub.add_parser(op, parents=[conn], help=help_text)
        if op == "describe":
            c.add_argument("run_module", metavar="MODULE")
        c.set_defaults(func=_cmd_client_simple)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. piped through `head`); exit quietly
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
