"""ExecutionPlan IR: the cost-driven planning layer.

The planner sits between the scheduler and the runtime. The scheduler
decides *what may run in parallel* (DO vs DOALL, windows); the planner
decides *how each loop nest actually executes* — which backend, whether a
DOALL is vectorised, chunked across workers (and at which nest level),
collapsed into one flattened chunked iteration space, or lowered into one
fused compiled kernel — using the calibrated
:class:`~repro.machine.cost.MachineModel`, corrected by any measured wall
clock recorded in a :class:`PlanCalibration` store. Every backend consumes
the resulting :class:`ExecutionPlan` instead of re-deriving those choices
at loop entry.
"""

from repro.plan.calibration import CalibrationRecord, PlanCalibration
from repro.plan.ir import (
    STRATEGIES,
    EquationPlan,
    ExecutionPlan,
    LoopPlan,
    PlanError,
)
from repro.plan.planner import build_plan, forced_plan

__all__ = [
    "STRATEGIES",
    "CalibrationRecord",
    "EquationPlan",
    "ExecutionPlan",
    "LoopPlan",
    "PlanCalibration",
    "PlanError",
    "build_plan",
    "forced_plan",
]
