"""The cost-driven planner: annotated flowchart -> ExecutionPlan.

The planner makes every decision the backends used to re-derive at loop
entry, exactly once per (module, options, scalar bindings):

* which backend executes the module — ``backend="auto"`` compares the
  calibrated cost of a serial, vectorized, threaded, and process execution
  at the *effective* parallelism ``min(workers, cpu_count)`` and picks the
  cheapest; an explicit backend pins the plan;
* how each DOALL runs on that backend — scalar walk, fused nest kernel,
  vector span, or chunked across workers;
* where the workers go in a nest — a DOALL whose trip count is below the
  worker count hands the team to a chunk-safe inner DOALL instead of
  leaving workers idle (``iterate`` + inner ``chunk``);
* which kernel variant each equation uses (scalar, vector, fused nest, or
  the reference evaluator for non-kernelizable equations).

Safety verdicts (chunk-safety, vector-safety, nest fusability) come from
the flowchart annotations and the kernel emitter's static checks; the plan
only ever narrows execution strategy, never semantics — any plan must stay
bit-exact against the serial reference evaluator.
"""

from __future__ import annotations

import os
from math import ceil
from types import SimpleNamespace
from typing import Any

from repro.errors import ExecutionError
from repro.machine.cost import MachineModel
from repro.plan.ir import (
    STRATEGIES,
    EquationPlan,
    ExecutionPlan,
    LoopPlan,
    PlanEntry,
    PlanError,
    StagePlan,
)
from repro.runtime.kernels.emit import (
    equation_affine_fast_path,
    kernelizable,
    kernelizable_reason,
    nest_fusable,
)
from repro.runtime.kernels.native import native_emittable, native_span_emittable
from repro.runtime.values import eval_bound
from repro.schedule.flowchart import (
    Flowchart,
    LoopDescriptor,
    NodeDescriptor,
    collapse_chain,
    equation_vector_safe,
    loop_chunk_safe,
    loop_collapse_safe,
)

#: backends that split DOALL subranges into worker chunks
CHUNKED_BACKENDS = ("threaded", "free-threading", "process", "process-fork")

#: backends whose pools run the decoupled pipeline engine — the planner
#: only *prices* pipeline groups for these (shared-memory threads; the
#: process pools copy, and stage hand-offs flow through the module arrays).
#: A forced pipeline still plans on any backend: the base inline engine
#: executes groups stage by stage, correct everywhere, concurrent here.
PIPELINE_BACKENDS = ("threaded", "free-threading")

#: every backend a plan may target (kept in sync with the registry in
#: ``repro.runtime.backends`` — the plan layer must not import the runtime)
KNOWN_BACKENDS = ("serial", "vectorized") + CHUNKED_BACKENDS

#: the candidate set ``backend="auto"`` chooses from
AUTO_CANDIDATES = ("serial", "vectorized", "threaded", "process")

#: assumed trip count when subrange bounds are not statically evaluable
DEFAULT_TRIP = 16

#: a chunk-safe inner DOALL takes the team only when its own trip count
#: keeps every worker busy at least this many chunks deep
INNER_CHUNK_FACTOR = 2


def _default_options() -> Any:
    return SimpleNamespace(
        vectorize=True,
        use_windows=False,
        debug_windows=False,
        backend="auto",
        workers=None,
        use_kernels=True,
        use_collapse=True,
        use_fission=True,
        kernel_tier="native",
        allow_reassoc=False,
    )


def build_plan(
    analyzed,
    flowchart: Flowchart,
    options: Any | None = None,
    scalar_env: dict[str, int] | None = None,
    model: MachineModel | None = None,
    cpu_count: int | None = None,
    backend: str | None = None,
    candidates: tuple[str, ...] | None = None,
    calibration: Any | None = None,
) -> ExecutionPlan:
    """Plan one module execution.

    ``options`` duck-types :class:`repro.runtime.executor.ExecutionOptions`;
    ``scalar_env`` supplies integer parameter values for trip counts (loops
    whose bounds cannot be evaluated get a conservative default);
    ``cpu_count`` bounds the parallelism the cost model believes in (the
    machine's real core count by default — a worker count above it buys
    nothing, which is exactly what ``auto`` must know); ``backend``
    overrides ``options.backend`` (a backend walking a hand-built state
    pins the plan to itself); ``candidates`` narrows what ``auto`` may
    choose from (module calls restrict callees to the in-process backends
    — nested pools inside worker chunks would oversubscribe or crash);
    ``calibration`` is an optional
    :class:`repro.plan.calibration.PlanCalibration` store of measured wall
    clock per (module, sizes, backend) — when it has measurements for this
    configuration, ``auto`` ranks candidates by measured seconds instead of
    trusting predicted cycles alone (online recalibration).
    """
    options = options or _default_options()
    scalar_env = scalar_env or {}
    model = model or MachineModel()
    soft_strategy = getattr(options, "strategy", None)
    if soft_strategy is not None and soft_strategy not in STRATEGIES:
        raise ExecutionError(
            f"unknown strategy {soft_strategy!r}; "
            f"available: {', '.join(STRATEGIES)}"
        )
    # Resolve the machine's core count exactly once: a worker count and an
    # effective-parallelism bound read under two different affinity
    # settings would silently disagree.
    ncpu = os.cpu_count() or 1
    workers = max(1, options.workers if options.workers is not None else ncpu)
    effective = max(1, min(workers, cpu_count if cpu_count is not None else ncpu))
    use_kernels = bool(options.use_kernels) and not options.debug_windows
    use_collapse = bool(getattr(options, "use_collapse", True))
    use_fission = bool(getattr(options, "use_fission", True))
    tier = getattr(options, "kernel_tier", "native")
    allow_reassoc = bool(getattr(options, "allow_reassoc", False))
    if tier == "evaluator":
        use_kernels = False

    requested = backend if backend is not None else getattr(options, "backend", "auto")
    if requested != "auto" and requested not in KNOWN_BACKENDS:
        raise ExecutionError(
            f"unknown execution backend {requested!r}; "
            f"available: {', '.join(KNOWN_BACKENDS)}"
        )
    if requested in ("process", "process-fork"):
        # Pinning a process backend on a spawn-only platform (macOS's
        # default, Windows) must fail up front with the platform named —
        # not degrade silently, not AttributeError later in the pool.
        # require_fork is a no-op when fork exists and consults the same
        # probe the backends do, so one monkeypatch covers both layers.
        from repro.runtime.backends.process import require_fork

        require_fork(requested)
    if requested == "auto" and not options.vectorize:
        # The legacy --scalar path: auto used to follow the vectorize flag.
        requested = "serial"

    if requested == "auto":
        from repro.runtime.backends.process import _fork_available

        if soft_strategy in ("pipeline", "scan") and candidates is None:
            # The decoupled/scan engines live on the thread pools; auto
            # honours the preference by choosing among backends running them.
            candidates = PIPELINE_BACKENDS
        pool = list(candidates or AUTO_CANDIDATES)
        excluded: list[tuple[str, str]] = []
        if not _fork_available():
            # Without fork the process backends cannot run at all (their
            # constructors raise), so auto never offers them.
            excluded = [
                (c, "fork start method unavailable on this platform")
                for c in pool
                if c in ("process", "process-fork")
            ]
            pool = [c for c in pool if c not in ("process", "process-fork")]
        planners: list[_Planner] = []
        for candidate in pool:
            p = _Planner(
                analyzed, flowchart, candidate, workers, effective,
                scalar_env, model, use_kernels, bool(options.use_windows),
                use_collapse=use_collapse, use_fission=use_fission,
                tier=tier,
                force_default=soft_strategy, force_soft=True,
                allow_reassoc=allow_reassoc,
            )
            p.plan_module()
            planners.append(p)
        totals = [p.total for p in planners]
        measured: dict[str, float] = {}
        if calibration is not None:
            totals = calibration.adjusted_costs(
                analyzed.name, scalar_env,
                [(p.backend, p.total) for p in planners],
                workers=workers,
            )
            for p in planners:
                rec = calibration.measured(
                    analyzed.name, scalar_env, p.backend, workers=workers
                )
                if rec is not None:
                    measured[p.backend] = rec.seconds
        best = min(zip(totals, planners), key=lambda pair: pair[0])[1]
        plan = best.finish(analyzed.name, requested="auto", pinned=False)
        plan.provenance = {
            "pipeline_groups": best.pipeline_notes,
            "scan_loops": best.scan_notes,
            "fission_loops": best.fission_notes,
            "slow_loops": best.slow_notes(),
            "mode": "auto",
            "workers": workers,
            "calibrated": bool(measured),
            "candidates": [
                {
                    "backend": p.backend,
                    "predicted_cycles": p.total,
                    "adjusted_cost": adj,
                    "measured_seconds": measured.get(p.backend),
                    "winner": p is best,
                }
                for p, adj in zip(planners, totals)
            ],
            "excluded": excluded,
            "reason": (
                "lowest measured/anchored seconds for these sizes "
                "(online calibration)"
                if measured
                else "lowest predicted cycles (no calibration record "
                "for these sizes)"
            ),
        }
        return plan

    planner = _Planner(
        analyzed, flowchart, requested, workers, effective,
        scalar_env, model, use_kernels, bool(options.use_windows),
        use_collapse=use_collapse, use_fission=use_fission, tier=tier,
        force_default=soft_strategy, force_soft=True,
        allow_reassoc=allow_reassoc,
    )
    planner.plan_module()
    plan = planner.finish(analyzed.name, requested=requested, pinned=True)
    plan.provenance = {
        "pipeline_groups": planner.pipeline_notes,
        "scan_loops": planner.scan_notes,
        "fission_loops": planner.fission_notes,
        "slow_loops": planner.slow_notes(),
        "mode": "pinned",
        "workers": workers,
        "calibrated": False,
        "candidates": [
            {
                "backend": planner.backend,
                "predicted_cycles": planner.total,
                "adjusted_cost": planner.total,
                "measured_seconds": None,
                "winner": True,
            }
        ],
        "excluded": [],
        "reason": f"backend {requested!r} pinned by the caller",
    }
    return plan


def forced_plan(
    analyzed,
    flowchart: Flowchart,
    backend: str,
    options: Any | None = None,
    scalar_env: dict[str, int] | None = None,
    default: str | None = None,
    overrides: dict[tuple[int, ...], str] | None = None,
    model: MachineModel | None = None,
) -> ExecutionPlan:
    """A hand-forced plan: every parallel loop takes ``default`` (when
    given), individual loops take ``overrides[path]``. Strategies are
    validated — forcing ``chunk`` on a chunk-unsafe loop or ``nest`` on an
    unfusable one raises :class:`PlanError` rather than risking semantics.
    """
    options = options or _default_options()
    tier = getattr(options, "kernel_tier", "native")
    use_kernels = bool(options.use_kernels) and not options.debug_windows
    if tier == "evaluator":
        use_kernels = False
    planner = _Planner(
        analyzed,
        flowchart,
        backend,
        max(1, options.workers or os.cpu_count() or 1),
        1,
        scalar_env or {},
        model or MachineModel(),
        use_kernels,
        bool(options.use_windows),
        use_collapse=bool(getattr(options, "use_collapse", True)),
        use_fission=bool(getattr(options, "use_fission", True)),
        tier=tier,
        force_default=default,
        force_overrides=overrides or {},
        allow_reassoc=bool(getattr(options, "allow_reassoc", False)),
    )
    planner.plan_module()
    return planner.finish(analyzed.name, requested=backend, pinned=True)


def valid_strategies(
    analyzed, flowchart: Flowchart, desc: LoopDescriptor, use_windows: bool = False
) -> list[str]:
    """The strategies a parallel loop may be forced to (property tests draw
    from this set)."""
    from repro.schedule.fission import fission_split

    if not desc.parallel:
        out = ["serial"]
        from repro.schedule.scan_detect import scan_info

        info = scan_info(analyzed, flowchart, desc, use_windows)
        if info is not None and (
            not info.is_float or info.op in ("min", "max")
        ):
            # Bit-exact scans only: forcing a float +/* scan needs the
            # caller to opt into reassociation via allow_reassoc.
            out.append("scan")
        if fission_split(analyzed, flowchart, desc, use_windows) is not None:
            out.append("fission")
        return out
    out = ["serial", "vector", "iterate"]
    if nest_fusable(desc, analyzed, flowchart, use_windows):
        out.append("nest")
    if loop_chunk_safe(desc, analyzed, flowchart.windows, use_windows):
        out.append("chunk")
    if loop_collapse_safe(desc, analyzed, flowchart.windows, use_windows):
        out.append("collapse")
    if fission_split(analyzed, flowchart, desc, use_windows) is not None:
        out.append("fission")
    return out


class _Planner:
    """One backend-pinned planning pass (auto runs one per candidate)."""

    def __init__(
        self,
        analyzed,
        flowchart: Flowchart,
        backend: str,
        workers: int,
        parallelism: int,
        scalar_env: dict[str, int],
        model: MachineModel,
        use_kernels: bool,
        use_windows: bool,
        use_collapse: bool = True,
        use_fission: bool = True,
        tier: str = "native",
        force_default: str | None = None,
        force_overrides: dict[tuple[int, ...], str] | None = None,
        force_soft: bool = False,
        allow_reassoc: bool = False,
    ):
        self.analyzed = analyzed
        self.flowchart = flowchart
        self.backend = backend
        self.workers = workers
        self.parallelism = parallelism
        self.scalar_env = scalar_env
        self.model = model
        self.use_kernels = use_kernels
        self.use_windows = use_windows
        self.use_collapse = use_collapse
        self.use_fission = use_fission
        self.tier = tier
        self.force_default = force_default
        self.force_overrides = force_overrides or {}
        self.force_soft = force_soft
        self.allow_reassoc = allow_reassoc
        self.entries: list[PlanEntry] = []
        #: one provenance note per pipeline group considered (chosen or not)
        self.pipeline_notes: list[dict] = []
        #: one provenance note per recognized scan/recurrence loop considered
        self.scan_notes: list[dict] = []
        #: one provenance note per fission-considered loop (split or not)
        self.fission_notes: list[dict] = []
        #: True while planning the body of a pipeline sequential stage that
        #: cannot fuse — inner DOALLs must stay off the pool (the stage
        #: already runs *on* a pool worker)
        self._in_stage = False
        self.loops: dict[tuple[int, ...], LoopPlan] = {}
        self.equations: dict[str, EquationPlan] = {}
        self.total = 0.0
        self._chunked_somewhere = False
        self._trips: dict[int, int | None] = {}
        self._choices: dict[int, tuple[str, int | None, float, str, str | None]] = {}
        #: (id(desc), variant) -> machine-independent native emittability
        self._native: dict[tuple[int, str], bool] = {}
        #: True while emitting the body of a natively executing nest
        self._native_root = False

    # -- shared verdicts ---------------------------------------------------

    def trip(self, desc: LoopDescriptor) -> int | None:
        t = self._trips.get(id(desc))
        if id(desc) not in self._trips:
            try:
                lo = eval_bound(desc.subrange.lo, self.scalar_env)
                hi = eval_bound(desc.subrange.hi, self.scalar_env)
                t = max(0, hi - lo + 1)
            except ExecutionError:
                t = None
            self._trips[id(desc)] = t
        return t

    def _trip_est(self, desc: LoopDescriptor) -> int:
        t = self.trip(desc)
        return DEFAULT_TRIP if t is None else t

    def _chunk_safe(self, desc: LoopDescriptor) -> bool:
        return loop_chunk_safe(
            desc, self.analyzed, self.flowchart.windows, self.use_windows
        )

    def _collapse_safe(self, desc: LoopDescriptor) -> bool:
        return loop_collapse_safe(
            desc, self.analyzed, self.flowchart.windows, self.use_windows
        )

    def _fusable(self, desc: LoopDescriptor) -> bool:
        return self.use_kernels and nest_fusable(
            desc, self.analyzed, self.flowchart, self.use_windows
        )

    def _native_ok(self, desc: LoopDescriptor, variant: str) -> bool:
        """Whether this nest *plans* as native: the tier allows it and the
        nest lowers to bit-exact C. Deliberately machine-independent (no
        compiler probe) so plans — and the golden texts pinning them — are
        identical everywhere; a compiler-less machine degrades to the NumPy
        kernels at run time."""
        if self.tier != "native" or not self.use_kernels:
            return False
        key = (id(desc), variant)
        ok = self._native.get(key)
        if ok is None:
            if variant == "span":
                ok = native_span_emittable(
                    desc, self.analyzed, self.flowchart, self.use_windows
                )
            else:
                ok = native_emittable(
                    desc, self.analyzed, self.flowchart, self.use_windows, variant
                )
            self._native[key] = ok
        return ok

    def _flat_trips(self, desc: LoopDescriptor) -> tuple[int, int | None]:
        """(estimated, exact-or-None) flattened trip count of the collapse
        chain rooted at ``desc``."""
        est, exact = 1, 1
        for loop in collapse_chain(desc)[0]:
            est *= max(1, self._trip_est(loop))
            t = self.trip(loop)
            exact = None if exact is None or t is None else exact * t
        return est, exact

    def _eq_mode(self, eq, ctx: str) -> str:
        """Which execution path an equation takes under ``ctx``; one of the
        cost model's modes ("evaluator" | "kernel" | "vector" | "nest" |
        "collapse" | "native")."""
        if ctx in ("nest", "collapse", "native"):
            return ctx
        if not (self.use_kernels and kernelizable(eq, self.analyzed)):
            return "evaluator"
        if ctx == "vector":
            return "vector" if equation_vector_safe(eq) else "kernel"
        return "kernel"

    # -- costing -----------------------------------------------------------

    def _vector_mode(self, eq) -> str:
        """"vector" for spans riding the slice-based affine fast path,
        "gather" for spans that fall back to clipped fancy indexing —
        an order-of-magnitude per-element difference the backend ranking
        must see (hyperplane-transformed subscripts and windowed
        dimensions live off the path)."""
        if equation_affine_fast_path(
            eq, self.analyzed, self.flowchart, self.use_windows
        ):
            return "vector"
        return "gather"

    def _eq_vector_costs(self, eq, span: float) -> tuple[float, float]:
        """(GIL-releasing, GIL-bound) cycles for one span of ``eq`` on the
        vector path. NumPy spans release the GIL; the per-element scalar
        fallback (vector-unsafe or non-kernelizable equations) holds it —
        the distinction the chunk-cost model needs to price the threaded
        backend honestly."""
        mode = self._eq_mode(eq, "vector")
        m = self.model
        if mode == "vector":
            per_el = m.element_cost(eq, self._vector_mode(eq))
            return (m.vector_setup + span * per_el, 0.0)
        if mode == "evaluator" and equation_vector_safe(eq):
            # vector-safe but non-kernelizable: the vector *evaluator* runs
            # it — one tree walk per span, NumPy per element
            return (
                4 * m.vector_setup
                + 2 * span * m.element_cost(eq, self._vector_mode(eq)),
                0.0,
            )
        # per-element scalar fallback inside the span
        return (0.0, span * m.element_cost(eq, mode))

    def _eq_cost(self, eq, ctx: str, span: float) -> float:
        if ctx == "vector":
            released, bound = self._eq_vector_costs(eq, span)
            return released + bound
        mode = self._eq_mode(eq, ctx)
        if mode == "collapse" and self._vector_mode(eq) == "gather":
            # flat-kernel rows run the same vector lowering per row — off
            # the fast path they pay the gather tax too
            mode = "gather"
        return span * self.model.element_cost(eq, mode)

    def _cost(self, desc, ctx: str, span: float) -> float:
        """Cycles to execute ``desc`` once in context ``ctx`` with ``span``
        elements per vectorised lane (1 on the scalar walk)."""
        if isinstance(desc, NodeDescriptor):
            if not desc.node.is_equation:
                return 0.0
            return self._eq_cost(desc.node.equation, ctx, span)
        assert isinstance(desc, LoopDescriptor)
        t = self._trip_est(desc)
        if ctx in ("nest", "collapse", "native"):
            return sum(self._cost(d, ctx, span * t) for d in desc.body)
        if ctx == "vector":
            released, bound = self._vector_costs(desc, span)
            return released + bound
        # ctx == "walk"
        if not desc.parallel:
            return t * (
                self.model.loop_overhead
                + sum(self._cost(d, "walk", 1) for d in desc.body)
            )
        return self._choose(desc)[2]

    def _cost_serial_root(self, desc: LoopDescriptor) -> float:
        t = self._trip_est(desc)
        return t * (
            self.model.loop_overhead
            + sum(self._cost(d, "walk", 1) for d in desc.body)
        )

    def _cost_nest_root(self, desc: LoopDescriptor) -> float:
        t = self._trip_est(desc)
        if self._native_ok(desc, "full"):
            return self.model.native_call_overhead + sum(
                self._cost(d, "native", t) for d in desc.body
            )
        return self.model.vector_setup + sum(
            self._cost(d, "nest", t) for d in desc.body
        )

    def _cost_vector_root(self, desc: LoopDescriptor) -> float:
        t = self._trip_est(desc)
        return sum(self._cost(d, "vector", t) for d in desc.body)

    def _dispatch_cost(self) -> float:
        if self.backend in ("process", "process-fork"):
            return self.model.process_dispatch
        return self.model.chunk_dispatch

    def _vector_costs(self, desc, span: float) -> tuple[float, float]:
        """(GIL-releasing, GIL-bound) cycles to run ``desc`` once inside a
        vector span of ``span`` elements per lane."""
        if isinstance(desc, NodeDescriptor):
            if not desc.node.is_equation:
                return (0.0, 0.0)
            return self._eq_vector_costs(desc.node.equation, span)
        assert isinstance(desc, LoopDescriptor)
        t = self._trip_est(desc)
        if desc.parallel:
            pairs = [self._vector_costs(d, span * t) for d in desc.body]
            return (sum(r for r, _ in pairs), sum(b for _, b in pairs))
        pairs = [self._vector_costs(d, span) for d in desc.body]
        released = t * sum(r for r, _ in pairs)
        bound = t * (self.model.loop_overhead + sum(b for _, b in pairs))
        return (released, bound)

    def _cost_chunk_root(self, desc: LoopDescriptor, parts: int) -> float:
        t = self._trip_est(desc)
        per_chunk = ceil(t / parts) if parts else t
        if self._native_ok(desc, "span"):
            # Each chunk runs as native span kernels: one C call per
            # equation over the subrange, all behind a released GIL (cffi
            # drops it for the call), so chunks overlap fully on every
            # parallel backend — no GIL-bound residue, which is what lets
            # threads outprice process dispatch whenever the span lowers.
            m = self.model
            neq = len(desc.nested_equations())
            released = neq * m.native_call_overhead + sum(
                self._cost(d, "native", per_chunk) for d in desc.body
            )
            waves = ceil(parts / self.parallelism)
            return (
                m.doall_fork
                + m.doall_barrier
                + parts * self._dispatch_cost()
                + waves * released
            )
        pairs = [self._vector_costs(d, per_chunk) for d in desc.body]
        released = sum(r for r, _ in pairs)
        bound = sum(b for _, b in pairs)
        waves = ceil(parts / self.parallelism)
        # NumPy chunk work overlaps across threads (the GIL is released);
        # scalar-fallback work serializes on the threaded backend but runs
        # truly concurrently in forked processes.
        if self.backend == "threaded":
            bound_total = parts * bound
        else:
            bound_total = waves * bound
        m = self.model
        return (
            m.doall_fork
            + m.doall_barrier
            + parts * self._dispatch_cost()
            + waves * released
            + bound_total
        )

    def _cost_iterate_root(self, desc: LoopDescriptor) -> float:
        t = self._trip_est(desc)
        return t * (
            self.model.loop_overhead
            + sum(self._cost(d, "walk", 1) for d in desc.body)
        )

    def _cost_collapse_root(self, desc: LoopDescriptor, parts: int) -> float:
        """Cycles for the collapsed chain: the flat space splits into
        ``parts`` chunks, each one fused flat-kernel invocation walking the
        chunk row by row — NumPy spans (GIL-releasing, overlapping across
        workers) plus per-row Python bookkeeping (GIL-bound, serialized on
        the threaded backend). One dispatch wave total, against ``chunk``'s
        idle workers when the outer trip is small and ``iterate``'s one
        wave per outer iteration."""
        chain, chain_body = collapse_chain(desc)
        flat, _exact = self._flat_trips(desc)
        inner_trip = max(1, self._trip_est(chain[-1]))
        parts = max(1, min(parts, flat))
        per_chunk_span = ceil(flat / parts)
        if self._native_ok(desc, "flat"):
            # One native C call per chunk: the whole chunk is compiled
            # machine code behind a released GIL (cffi drops it for the
            # call), so chunks overlap fully on every parallel backend and
            # the per-row Python bookkeeping of the NumPy flat kernel
            # disappears.
            released = self.model.native_call_overhead + sum(
                self._cost(d, "native", per_chunk_span) for d in chain_body
            )
            waves = ceil(parts / self.parallelism)
            m = self.model
            return (
                m.doall_fork
                + m.doall_barrier
                + parts * self._dispatch_cost()
                + waves * released
            )
        rows = ceil(per_chunk_span / inner_trip)
        pairs = [
            self._vector_costs(d, min(per_chunk_span, inner_trip))
            for d in chain_body
        ]
        released = rows * sum(r for r, _ in pairs)
        bound = rows * (
            self.model.collapse_row_overhead + sum(b for _, b in pairs)
        )
        waves = ceil(parts / self.parallelism)
        if self.backend == "threaded":
            bound_total = parts * bound
        else:
            bound_total = waves * bound
        m = self.model
        return (
            m.doall_fork
            + m.doall_barrier
            + parts * self._dispatch_cost()
            + waves * released
            + bound_total
        )

    # -- strategy choice ---------------------------------------------------

    def _inner_chunk_candidate(self, desc: LoopDescriptor) -> LoopDescriptor | None:
        """A chunk-safe parallel loop directly in ``desc``'s body whose trip
        count can keep the whole team busy."""
        for d in desc.body:
            if not isinstance(d, LoopDescriptor) or not d.parallel:
                continue
            if not self._chunk_safe(d):
                continue
            it = self.trip(d)
            if it is None or it >= INNER_CHUNK_FACTOR * self.workers:
                return d
        return None

    def _choose(self, desc: LoopDescriptor):
        """(strategy, parts, cycles, reason, chunk_index) for a parallel
        loop met on the scalar walk. Memoized per descriptor."""
        cached = self._choices.get(id(desc))
        if cached is not None:
            return cached
        choice = self._choose_uncached(desc)
        if choice[0] not in STRATEGIES:
            raise PlanError(f"planner produced unknown strategy {choice[0]!r}")
        self._choices[id(desc)] = choice
        return choice

    def _forced_for(self, desc: LoopDescriptor) -> str | None:
        path = self.flowchart.path_of(desc)
        forced = self.force_overrides.get(path, self.force_default)
        if forced is None:
            return None
        if forced not in STRATEGIES:
            raise PlanError(f"unknown forced strategy {forced!r}")
        if forced == "pipeline":
            # Pipeline is a *group* decision made at the sibling-list walk
            # (see _emit_siblings); a loop met individually — outside any
            # partitionable run — plans normally.
            if path in self.force_overrides:
                raise PlanError(
                    "'pipeline' is a group-level strategy; force it as the "
                    "default, not per loop"
                )
            return None
        if forced == "scan":
            # Scan is a sequential-DO strategy (see _scan_decision); a
            # DOALL met under a forced-scan *default* plans normally, but
            # pinning it per loop is a contradiction.
            if path in self.force_overrides:
                raise PlanError(
                    f"cannot force 'scan' on DOALL {desc.index}: 'scan' "
                    f"applies to sequential DO recurrences"
                )
            return None
        if forced == "fission":
            # Fission is decided before _choose ever runs (_fission_decision
            # in the walk emission, which also raises on an invalid hard
            # per-path pin). Reaching here means the loop was not split —
            # either it has no legal split under a soft default, or it is a
            # replica/inner loop below a split — so it plans normally.
            return None

        def invalid(why: str) -> str | None:
            if self.force_soft:
                return None
            raise PlanError(why)

        if forced == "chunk" and not self._chunk_safe(desc):
            return invalid(
                f"cannot force 'chunk' on DOALL {desc.index}: not chunk-safe"
            )
        if forced == "nest" and not self._fusable(desc):
            return invalid(
                f"cannot force 'nest' on DOALL {desc.index}: not fusable"
            )
        if forced == "collapse" and not self._collapse_safe(desc):
            return invalid(
                f"cannot force 'collapse' on DOALL {desc.index}: "
                f"not a collapse-safe perfect DOALL chain"
            )
        return forced

    def _choose_uncached(self, desc: LoopDescriptor):
        if self._in_stage:
            # Inside a pipeline sequential stage the walk already runs on a
            # pool worker: never chunk/collapse (pool re-entry deadlocks),
            # pick the best in-worker strategy instead.
            best = ("serial", None, self._cost_serial_root(desc),
                    "inside pipeline stage", None)
            if self._fusable(desc):
                c_nest = self._cost_nest_root(desc)
                if c_nest < best[2]:
                    best = ("nest", None, c_nest, "inside pipeline stage", None)
            c_vec = self._cost_vector_root(desc)
            if c_vec < best[2]:
                best = ("vector", None, c_vec, "inside pipeline stage", None)
            return best
        forced = self._forced_for(desc)
        if forced is not None:
            if forced == "chunk":
                parts = min(self.workers, self._trip_est(desc) or 1)
                c = self._cost_chunk_root(desc, parts)
            elif forced == "collapse":
                parts = min(self.workers, self._flat_trips(desc)[0])
                c = self._cost_collapse_root(desc, parts)
            else:
                parts = None
                cost = {
                    "serial": self._cost_serial_root,
                    "nest": self._cost_nest_root,
                    "vector": self._cost_vector_root,
                    "iterate": self._cost_iterate_root,
                }[forced]
                c = cost(desc)
            return (forced, parts, c, "forced", None)

        if self.backend == "serial":
            c_serial = self._cost_serial_root(desc)
            if self._fusable(desc):
                c_nest = self._cost_nest_root(desc)
                if c_nest < c_serial:
                    return ("nest", None, c_nest, "fused nest kernel", None)
            return ("serial", None, c_serial, "", None)

        if self.backend == "vectorized":
            return ("vector", None, self._cost_vector_root(desc), "", None)

        if self.backend in CHUNKED_BACKENDS:
            t = self.trip(desc)
            te = self._trip_est(desc)
            if not self._chunk_safe(desc):
                return (
                    "vector", None, self._cost_vector_root(desc),
                    "not chunk-safe", None,
                )
            if self.workers < 2 or te < 2:
                return (
                    "vector", None, self._cost_vector_root(desc),
                    "nothing to chunk", None,
                )
            # A collapse-safe, fusable chain may flatten: one linearized
            # iteration space chunked over the team, each chunk one fused
            # flat kernel. Priced against the classic alternatives below.
            collapse = None
            if self.use_collapse and self._collapse_safe(desc) and self._fusable(desc):
                flat_est, _ = self._flat_trips(desc)
                cparts = min(self.workers, flat_est)
                collapse = (
                    cparts, self._cost_collapse_root(desc, cparts)
                )
            if t is not None and t < self.workers:
                # Utilization rule, deliberately not a cost comparison: an
                # outer chunk with trip < workers idles (workers - trip)
                # workers for the whole wavefront, and the dispatch
                # constants — calibrated on whatever machine produced the
                # baseline, possibly a 1-core CI box where thread dispatch
                # is pathologically expensive — would veto the inner
                # chunking that real multicore hardware rewards. The
                # INNER_CHUNK_FACTOR guard keeps the extra dispatches
                # amortised over a genuinely wide inner loop. A collapsed
                # flat space serves the same utilization end with one
                # dispatch wave instead of one per outer iteration, so when
                # both apply the cheaper one wins.
                inner = self._inner_chunk_candidate(desc)
                if inner is not None:
                    c_iter = self._cost_iterate_root(desc)
                    if collapse is not None and collapse[1] < c_iter:
                        return (
                            "collapse", collapse[0], collapse[1],
                            f"trip {t} < {self.workers} workers", None,
                        )
                    return (
                        "iterate", None, c_iter,
                        f"trip {t} < {self.workers} workers", inner.index,
                    )
            parts = min(self.workers, te)
            c_chunk = self._cost_chunk_root(desc, parts)
            if collapse is not None and collapse[1] < c_chunk:
                return ("collapse", collapse[0], collapse[1], "", None)
            return ("chunk", parts, c_chunk, "", None)

        raise PlanError(f"unknown execution backend {self.backend!r}")

    # -- pipeline groups ---------------------------------------------------

    def _pipeline_group_at(self, container: tuple[int, ...], offset: int):
        """The partitionable sibling run starting here, when this planning
        pass may consider one at all: the thread backends price groups on
        merit, any backend honours a forced default (the base inline engine
        executes them correctly everywhere), and a single worker has
        nothing to decouple over."""
        if self._in_stage:
            return None
        if (
            self.force_default != "pipeline"
            and self.backend not in PIPELINE_BACKENDS
        ):
            return None
        if self.workers < 2:
            return None
        from repro.schedule.pipeline_stages import group_starting_at

        return group_starting_at(
            self.analyzed, self.flowchart, container, offset, self.use_windows
        )

    def _seq_fusable(self, desc: LoopDescriptor) -> bool:
        return self.use_kernels and nest_fusable(
            desc, self.analyzed, self.flowchart, self.use_windows, "seq"
        )

    # -- scan pricing ------------------------------------------------------

    def _scan_gated(self, info) -> bool:
        """Float ``+``/``*`` scans reassociate rounding; they need the
        explicit ``allow_reassoc`` opt-in. Int ops wrap bit-exactly and
        min/max are exactly associative, so those are always eligible."""
        return (
            info.is_float
            and info.op not in ("min", "max")
            and not self.allow_reassoc
        )

    def _price_scan(self, desc: LoopDescriptor, info) -> dict:
        """Cycles for the three-phase blocked scan of a recognized
        recurrence, plus the comparators: the in-order walk (the strategy
        actually replaced) and the ``"seq"`` fused kernel (what a pipeline
        sequential stage would stream — recorded in provenance)."""
        from repro.machine.cost import expression_cost

        m = self.model
        t = self._trip_est(desc)
        eq = desc.body[0].node.equation
        per_el = m.element_cost(eq, "native")
        parts = max(1, min(self.workers, t // 2 if t >= 4 else 1))
        p = max(1, min(parts, self.parallelism))
        # Coefficient vectors evaluate once, vectorized over the subrange —
        # priced on the coefficient sub-expressions, not the whole equation.
        coeff = (
            m.vector_setup
            + t * expression_cost(info.b_expr, m) * m.vector_element_factor
        )
        if info.a_expr is not None:
            coeff += (
                m.vector_setup
                + t * expression_cost(info.a_expr, m) * m.vector_element_factor
            )
        work = t * per_el
        cycles = (
            m.doall_fork
            + m.doall_barrier
            + 2 * m.scan_phase_barrier
            + 2 * parts * m.chunk_dispatch
            + coeff
            + 2 * m.native_call_overhead
            + work * m.scan_reduce_factor / p
            + parts * m.loop_overhead
            + work * m.scan_fixup_factor / p
        )
        serial = self._cost_serial_root(desc)
        seq: float | None = None
        if self._native_ok(desc, "seq"):
            seq = m.native_call_overhead + sum(
                self._cost(d, "native", t) for d in desc.body
            )
        elif self._seq_fusable(desc):
            seq = m.vector_setup + sum(
                self._cost(d, "nest", t) for d in desc.body
            )
        return {"cycles": cycles, "serial": serial, "seq": seq, "parts": parts}

    def _scan_decision(self, desc: LoopDescriptor, path) -> dict | None:
        """Decide one sequential DO loop met on the walk: a dict for
        :meth:`_emit_scan` when the blocked scan is taken, None to fall
        through to the in-order serial plan. Every *recognized* loop leaves
        a provenance note either way — ``repro plan`` must be able to say
        why scan won or was rejected."""
        from repro.schedule.scan_detect import scan_info

        info = scan_info(self.analyzed, self.flowchart, desc, self.use_windows)
        forced_name = self.force_overrides.get(path, self.force_default)
        forced = forced_name == "scan"
        hard = forced and not self.force_soft
        if info is None:
            if hard and path in self.force_overrides:
                raise PlanError(
                    f"cannot force 'scan' on DO {desc.index}: not a "
                    f"recognized reduction, scan, or linear recurrence"
                )
            return None
        t = self._trip_est(desc)
        note = {
            "index": str(path),
            "label": info.label,
            "kind": info.kind,
            "op": info.op,
            "trip": t,
            "scan_cycles": None,
            "serial_cycles": None,
            "seq_cycles": None,
            "chosen": False,
            "why": "",
        }
        self.scan_notes.append(note)

        def reject(why: str) -> None:
            note["why"] = why
            if hard:
                raise PlanError(
                    f"cannot force 'scan' on DO {desc.index}: {why}"
                )
            return None

        if not self.use_kernels:
            return reject("kernels off")
        if self._scan_gated(info):
            return reject(
                "float reassociation not allowed (pass --allow-reassoc)"
            )
        if self._in_stage:
            return reject("inside pipeline stage")
        priced = self._price_scan(desc, info)
        note["scan_cycles"] = priced["cycles"]
        note["serial_cycles"] = priced["serial"]
        note["seq_cycles"] = priced["seq"]
        if not forced:
            if self.backend not in PIPELINE_BACKENDS:
                return reject(f"no scan engine on backend {self.backend!r}")
            if self.workers < 2 or t < 4:
                return reject("nothing to split")
            if priced["cycles"] >= priced["serial"]:
                return reject("in-order walk is cheaper")
        note["chosen"] = True
        note["why"] = "forced" if forced else "blocked scan is cheaper"
        return {"info": info, "forced": forced, **priced}

    def _emit_scan(self, desc: LoopDescriptor, path, depth, decision) -> float:
        info = decision["info"]
        what = (
            "linear recurrence" if info.kind == "linrec"
            else f"{info.op}-scan"
        )
        lp = LoopPlan(
            path, desc.index, desc.keyword, "scan",
            parts=decision["parts"], trip=self.trip(desc),
            cycles=decision["cycles"],
            reason=("forced " if decision["forced"] else "parallel ") + what,
        )
        self._register(lp, depth)
        eq = desc.body[0].node.equation
        ep = EquationPlan(
            eq.label, path + (0,),
            kernel="native" if self.tier == "native" else "nest",
            reason="scan phases",
        )
        self.equations[eq.label] = ep
        self.entries.append(PlanEntry(depth + 1, equation=ep))
        return decision["cycles"]

    # -- fission -----------------------------------------------------------

    def _fission_decision(self, desc: LoopDescriptor, path) -> dict | None:
        """Decide one multi-unit loop met on the walk: a dict for
        :meth:`_emit_fission` when splitting wins (or is forced), None to
        fall through to the unfissioned plan. Every loop with a legal split
        — and every multi-unit loop whose split was *rejected* — leaves a
        provenance note, so ``repro plan`` can explain both verdicts."""
        if self._in_stage or not self.use_fission:
            return None
        from repro.schedule.fission import fission_reject, fission_split

        forced_name = self.force_overrides.get(path, self.force_default)
        forced = forced_name == "fission"
        hard = forced and not self.force_soft
        split = fission_split(
            self.analyzed, self.flowchart, desc, self.use_windows
        )
        if split is None:
            why = fission_reject(
                self.analyzed, self.flowchart, desc, self.use_windows
            )
            if why is not None:
                self.fission_notes.append({
                    "index": str(path), "keyword": desc.keyword,
                    "loop_index": desc.index, "parts": None,
                    "trip": self._trip_est(desc), "pieces": [],
                    "fission_cycles": None, "unfissioned_cycles": None,
                    "chosen": False, "why": why,
                })
            if hard and path in self.force_overrides:
                raise PlanError(
                    f"cannot force 'fission' on {desc.keyword} {desc.index}: "
                    + (why or "the body is a single dependence unit")
                )
            return None
        note = {
            "index": str(path), "keyword": desc.keyword,
            "loop_index": desc.index, "parts": split.parts,
            "trip": self._trip_est(desc), "pieces": split.describe(),
            "fission_cycles": None, "unfissioned_cycles": None,
            "chosen": False, "why": "",
        }
        self.fission_notes.append(note)
        fissioned = self._price_fission(split, path)
        unfissioned = (
            self._choose(desc)[2] if desc.parallel
            else self._cost_serial_root(desc)
        )
        note["fission_cycles"] = fissioned
        note["unfissioned_cycles"] = unfissioned
        if not forced and fissioned >= unfissioned:
            note["why"] = "unfissioned plan is cheaper"
            return None
        note["chosen"] = True
        note["why"] = "forced" if forced else "split pieces are cheaper"
        return {"split": split, "cycles": fissioned, "forced": forced}

    def _piece_cost(self, piece: LoopDescriptor) -> float:
        """What one replica loop will cost when emitted: parallel pieces
        price through the normal strategy choice, sequential pieces through
        the in-order walk or — under exactly the gates ``_scan_decision``
        applies on merit — the blocked scan."""
        if piece.parallel:
            return self._choose(piece)[2]
        serial = self._cost_serial_root(piece)
        if not self.use_kernels:
            return serial
        from repro.schedule.scan_detect import scan_info

        info = scan_info(
            self.analyzed, self.flowchart, piece, self.use_windows
        )
        if (
            info is None
            or self._scan_gated(info)
            or self.backend not in PIPELINE_BACKENDS
            or self.workers < 2
            or self._trip_est(piece) < 4
        ):
            return serial
        return min(serial, self._price_scan(piece, info)["cycles"])

    def _price_fission(self, split, path) -> float:
        """The cost of the replica run exactly as :meth:`_emit_fission`
        will emit it — including pipeline groups over the replicas (a
        recurrence piece feeding DOALL pieces is the DSWP shape), priced
        here without emitting their provenance notes."""
        container = path + (-1,)
        pieces = list(split.pieces)
        total = 0.0
        i = 0
        while i < len(pieces):
            group = self._pipeline_group_at(container, i)
            if group is not None:
                priced = self._price_pipeline(group)
                if priced is not None and (
                    self.force_default == "pipeline"
                    or priced["cycles"] < priced["serial_cycles"]
                ):
                    total += priced["cycles"]
                    i += group.size
                    continue
            total += self._piece_cost(pieces[i])
            i += 1
        return total

    def _emit_fission(self, desc: LoopDescriptor, path, depth, decision) -> float:
        """Emit one taken split: the original loop's LoopPlan carries the
        ``fission`` strategy and the piece count, the replicas plan as an
        ordinary sibling list at the marker container ``path + (-1,)`` —
        each equation lands in exactly one replica over the full subrange,
        so evaluation counts match the unfissioned walk exactly."""
        split = decision["split"]
        lp = LoopPlan(
            path, desc.index, desc.keyword, "fission",
            parts=split.parts, trip=self.trip(desc),
            reason=(
                "forced dependence split" if decision["forced"]
                else "dependence split"
            ),
        )
        self._register(lp, depth)
        cost = self._emit_siblings(
            list(split.pieces), path + (-1,), depth + 1, "walk", 1.0
        )
        lp.cycles = cost
        return cost

    def slow_notes(self) -> list[dict]:
        """Per-loop why-not provenance for nests left on the slow path: the
        first non-kernelizable equation (with the emitter's reason) and the
        fission verdict for its loop. Outermost loop wins when an equation
        sits under several; replicas defer to their original loop."""
        from repro.schedule.fission import fission_reject

        notes: list[dict] = []
        if not self.use_kernels:
            return notes
        seen: set[str] = set()
        for lp in self.loops.values():
            if -1 in lp.path:
                continue
            try:
                desc = self.flowchart.descriptor_at(lp.path)
            except (LookupError, IndexError):
                continue
            if not isinstance(desc, LoopDescriptor):
                continue
            label = why = None
            for eq in desc.nested_equations():
                r = kernelizable_reason(eq, self.analyzed)
                if r is not None:
                    label, why = eq.label, r
                    break
            if label is None or label in seen:
                continue
            seen.add(label)
            fission = None
            if lp.strategy == "fission":
                fission = "split: the offender runs in its own loop"
            else:
                r = fission_reject(
                    self.analyzed, self.flowchart, desc, self.use_windows
                )
                if r is not None:
                    fission = f"fission rejected: {r}"
            notes.append({
                "index": str(lp.path),
                "keyword": lp.keyword,
                "loop_index": lp.index,
                "label": label,
                "reason": why,
                "fission": fission,
            })
        return notes

    def _stage_scan_cost(self, loop: LoopDescriptor) -> dict | None:
        """The blocked-scan price of a pipeline sequential stage's member
        loop, or None when the stage cannot run as a scan (unrecognized,
        float-gated, or no scan engine on this backend)."""
        if not self.use_kernels or self.backend not in PIPELINE_BACKENDS:
            return None
        if self.workers < 2:
            return None
        from repro.schedule.scan_detect import scan_info

        info = scan_info(self.analyzed, self.flowchart, loop, self.use_windows)
        if info is None or self._scan_gated(info):
            return None
        if self._trip_est(loop) < 4:
            return None
        return self._price_scan(loop, info)

    def _price_pipeline(self, group) -> dict | None:
        """Price the decoupled execution of ``group``. None when the team
        cannot host one *running* task per stage — the engine's
        no-deadlock requirement (every stage must make progress for the
        frontier hand-offs to drain). Otherwise a dict the emitter and the
        provenance notes consume.

        The model: one fork/barrier for the group, one spin-up per stage
        worker, the bottleneck stage's time (sequential stages run their
        whole subrange through block-wise sequential nest kernels; a
        replicated stage divides its span work over its workers), bounded
        below by total work over the machine's effective parallelism, plus
        one link hand-off per block per stage boundary."""
        m = self.model
        stages = group.stages
        n_stages = len(stages)
        if self.workers < n_stages:
            return None
        t = self._trip_est(group.loops[0])
        blocks = max(1, min(t, 4 * self.workers))
        block = ceil(t / blocks)
        blocks = ceil(t / block)

        # Stage kinds and per-stage total work. A sequential stage whose
        # member is a recognized recurrence is promoted to a "scan" stage
        # when the blocked scan beats streaming the recurrence in order;
        # the engine then runs it up front on the whole pool (see
        # exec_pipeline_group) rather than holding a worker for the
        # group's lifetime.
        kinds: list[str] = []
        works: list[float] = []
        scan_parts: dict[int, int] = {}
        for idx, s in enumerate(stages):
            if s.kind == "sequential":
                loop = group.loops[s.members[0]]
                if self._native_ok(loop, "seq"):
                    work = blocks * m.native_call_overhead + sum(
                        self._cost(d, "native", t) for d in loop.body
                    )
                elif self._seq_fusable(loop):
                    work = blocks * m.vector_setup + sum(
                        self._cost(d, "nest", t) for d in loop.body
                    )
                else:
                    work = t * (
                        m.loop_overhead
                        + sum(self._cost(d, "walk", 1) for d in loop.body)
                    )
                kind = "sequential"
                if len(s.members) == 1:
                    sp = self._stage_scan_cost(loop)
                    if sp is not None and sp["cycles"] < work:
                        kind, work = "scan", sp["cycles"]
                        scan_parts[idx] = sp["parts"]
            else:
                kind = s.kind
                work = 0.0
                for mem in s.members:
                    loop = group.loops[mem]
                    if self._native_ok(loop, "span"):
                        neq = len(loop.nested_equations())
                        work += blocks * neq * m.native_call_overhead + sum(
                            self._cost(d, "native", t) for d in loop.body
                        )
                    else:
                        pairs = [
                            self._vector_costs(d, block) for d in loop.body
                        ]
                        work += blocks * (
                            sum(r for r, _ in pairs)
                            + sum(b for _, b in pairs)
                        )
            kinds.append(kind)
            works.append(work)

        # Worker assignment: scan stages run up front on the whole pool and
        # hold no engine worker; each remaining sequential stage pins one;
        # replicated stages split what is left.
        n_seq = sum(1 for k in kinds if k == "sequential")
        n_rep = sum(1 for k in kinds if k == "replicated")
        avail = self.workers - n_seq
        stage_workers: list[int] = []
        rep_seen = 0
        for idx, k in enumerate(kinds):
            if k == "sequential":
                stage_workers.append(1)
            elif k == "scan":
                stage_workers.append(scan_parts[idx])
            else:
                w = avail // n_rep + (1 if rep_seen < avail % n_rep else 0)
                stage_workers.append(max(1, w))
                rep_seen += 1
        workers_used = sum(
            w for k, w in zip(kinds, stage_workers) if k != "scan"
        )

        # Scan stages complete before the engine starts; the streamed
        # stages then bottleneck as before.
        scan_up_front = sum(
            work for k, work in zip(kinds, works) if k == "scan"
        )
        engine_times = [
            work / max(1, w) if k == "replicated" else work
            for k, work, w in zip(kinds, works, stage_workers)
            if k != "scan"
        ]
        engine_work = sum(
            work for k, work in zip(kinds, works) if k != "scan"
        )
        n_engine = len(engine_times)
        if engine_times:
            compute = scan_up_front + max(
                max(engine_times), engine_work / max(1, self.parallelism)
            )
        else:
            compute = scan_up_front
        cycles = (
            m.doall_fork
            + m.doall_barrier
            + workers_used * m.pipeline_stage_spinup
            + compute
            + blocks * max(0, n_engine - 1) * m.pipeline_link_overhead
        )
        undecoupled = sum(
            self._cost(loop, "walk", 1) for loop in group.loops
        )
        stage_plans = [
            StagePlan(k, s.members, s.labels, workers=w)
            for s, k, w in zip(stages, kinds, stage_workers)
        ]
        return {
            "cycles": cycles,
            "serial_cycles": undecoupled,
            "stage_plans": stage_plans,
            "workers_used": max(1, workers_used),
            "block": block,
            "trip": t,
        }

    def _emit_pipeline_maybe(
        self, group, container: tuple[int, ...], depth: int
    ) -> float | None:
        """Decide one pipeline group; emit it and return its cost when
        taken, None to leave the siblings to plan individually. Every
        considered group leaves a provenance note either way — ``repro
        plan`` must be able to say why pipeline won or was rejected."""
        forced = self.force_default == "pipeline"
        priced = self._price_pipeline(group)
        note = {
            "index": str(container + (group.start,)),
            "kinds": group.kinds(),
            "stage_count": len(group.stages),
            "trip": self._trip_est(group.loops[0]),
            "pipeline_cycles": priced["cycles"] if priced else None,
            "serial_cycles": priced["serial_cycles"] if priced else None,
            "chosen": False,
            "why": "",
        }
        self.pipeline_notes.append(note)
        if priced is None:
            note["why"] = (
                f"needs one worker per stage: {len(group.stages)} stages "
                f"> {self.workers} workers"
            )
            return None
        if not forced and priced["cycles"] >= priced["serial_cycles"]:
            note["why"] = "undecoupled plan is cheaper"
            return None
        note["chosen"] = True
        note["why"] = "forced" if forced else "decoupling is cheaper"
        return self._emit_pipeline(group, container, depth, priced, forced)

    def _emit_pipeline(
        self, group, container: tuple[int, ...], depth: int, priced: dict,
        forced: bool,
    ) -> float:
        """Emit the LoopPlans of one taken pipeline group: the head loop
        carries the stage partition, worker assignment, and hand-off block
        size; member loops carry their stage membership. Sequential-stage
        bodies plan as (sequential) fused nests where the nest lowers and
        as a pool-safe in-worker walk otherwise; replicated-stage bodies
        plan exactly like chunk spans."""
        stages = priced["stage_plans"]
        n_stages = len(stages)
        stage_of = {
            mdx: k for k, s in enumerate(stages) for mdx in s.members
        }
        for j, loop in enumerate(group.loops):
            path = container + (group.start + j,)
            k = stage_of[j]
            stage = stages[k]
            head = j == 0
            seq_fuse = stage.kind == "sequential" and self._seq_fusable(loop)
            lp = LoopPlan(
                path, loop.index, loop.keyword, "pipeline",
                parts=priced["workers_used"] if head else None,
                trip=self.trip(loop),
                fuse=seq_fuse,
                stages=stages if head else None,
                group_size=group.size if head else None,
                queue_depth=priced["block"] if head else None,
                cycles=priced["cycles"] if head else None,
                reason=(
                    ("forced" if forced else "decoupled sibling run")
                    if head
                    else f"stage {k + 1}/{n_stages}"
                ),
            )
            self._register(lp, depth)
            te = self._trip_est(loop)
            prev_native = self._native_root
            if stage.kind == "scan":
                eq = loop.body[0].node.equation
                ep = EquationPlan(
                    eq.label, path + (0,),
                    kernel="native" if self.tier == "native" else "nest",
                    reason="scan phases",
                )
                self.equations[eq.label] = ep
                self.entries.append(PlanEntry(depth + 1, equation=ep))
            elif stage.kind == "sequential":
                if seq_fuse:
                    self._native_root = self._native_ok(loop, "seq")
                    try:
                        for i, d in enumerate(loop.body):
                            self._emit(
                                d, path + (i,), depth + 1, "nest", float(te)
                            )
                    finally:
                        self._native_root = prev_native
                else:
                    self._in_stage = True
                    try:
                        for i, d in enumerate(loop.body):
                            self._emit(d, path + (i,), depth + 1, "walk", 1.0)
                    finally:
                        self._in_stage = False
            else:
                self._native_root = self._native_ok(loop, "span")
                try:
                    for i, d in enumerate(loop.body):
                        self._emit(
                            d, path + (i,), depth + 1, "vector",
                            float(priced["block"]),
                        )
                finally:
                    self._native_root = prev_native
        return priced["cycles"]

    # -- emission ----------------------------------------------------------

    def plan_module(self) -> None:
        total = self._emit_siblings(
            self.flowchart.descriptors, (), 0, "walk", 1.0
        )
        if self.backend == "process" and self._chunked_somewhere:
            total += self.model.process_spinup
        self.total = total

    def _emit_siblings(
        self, descs, container: tuple[int, ...], depth, ctx, span
    ) -> float:
        """Emit one sibling list, consuming pipeline groups where they
        start. Groups only exist for the always-sequential containers
        (:func:`repro.schedule.pipeline_stages.pipeline_groups` scans the
        top level and ``DO`` bodies), so other contexts fall straight
        through to the per-descriptor emission."""
        total = 0.0
        i = 0
        n = len(descs)
        while i < n:
            if ctx == "walk":
                group = self._pipeline_group_at(container, i)
                if group is not None:
                    cost = self._emit_pipeline_maybe(group, container, depth)
                    if cost is not None:
                        total += cost
                        i += group.size
                        continue
            total += self._emit(descs[i], container + (i,), depth, ctx, span)
            i += 1
        return total

    def _emit_equation(self, desc: NodeDescriptor, path, depth, ctx, span) -> float:
        if not desc.node.is_equation:
            self.entries.append(PlanEntry(depth, label=desc.node.id))
            return 0.0
        eq = desc.node.equation
        mode = self._eq_mode(eq, ctx)
        if mode in ("nest", "collapse", "vector", "kernel") and self._native_root:
            # The enclosing nest/span lowers to the native C tier — the
            # equation's per-element cost and kernel label follow.
            mode = "native"
        # Inside a collapsed chain the equation runs in the fused (flat)
        # nest kernel — "collapse" is a costing mode, not a kernel variant.
        kernel, reason = ("nest" if mode == "collapse" else mode), ""
        if mode == "evaluator":
            if not self.use_kernels:
                reason = "kernels off"
            elif not kernelizable(eq, self.analyzed):
                reason = "not kernelizable"
        elif mode == "kernel":
            kernel = "scalar"
            if ctx == "vector" and not equation_vector_safe(eq):
                reason = "vector-unsafe: per-element fallback"
        ep = EquationPlan(eq.label, path, kernel=kernel, reason=reason)
        self.equations[eq.label] = ep
        self.entries.append(PlanEntry(depth, equation=ep))
        return self._eq_cost(eq, "native" if mode == "native" else ctx, span)

    def _emit(self, desc, path, depth, ctx, span) -> float:
        if isinstance(desc, NodeDescriptor):
            return self._emit_equation(desc, path, depth, ctx, span)
        assert isinstance(desc, LoopDescriptor)
        t = self.trip(desc)
        te = self._trip_est(desc)

        if ctx in ("nest", "collapse"):
            lp = LoopPlan(
                path, desc.index, desc.keyword, ctx, trip=t, fuse=True,
                reason="fused" if ctx == "nest" else "collapsed",
            )
            self._register(lp, depth)
            cost = sum(
                self._emit(d, path + (i,), depth + 1, ctx, span * te)
                for i, d in enumerate(desc.body)
            )
            lp.cycles = cost
            return cost

        if ctx == "vector":
            span_reason = ""
            if desc.parallel:
                span_reason = (
                    "nested in native span" if self._native_root
                    else "nested in span"
                )
            lp = LoopPlan(
                path, desc.index, desc.keyword,
                "vector" if desc.parallel else "serial",
                trip=t, reason=span_reason,
            )
            self._register(lp, depth)
            if desc.parallel:
                cost = sum(
                    self._emit(d, path + (i,), depth + 1, "vector", span * te)
                    for i, d in enumerate(desc.body)
                )
            else:
                cost = te * (
                    self.model.loop_overhead
                    + sum(
                        self._emit(d, path + (i,), depth + 1, "vector", span)
                        for i, d in enumerate(desc.body)
                    )
                )
            lp.cycles = cost
            return cost

        # ctx == "walk"
        fis = self._fission_decision(desc, path)
        if fis is not None:
            return self._emit_fission(desc, path, depth, fis)
        if not desc.parallel:
            scan = self._scan_decision(desc, path)
            if scan is not None:
                return self._emit_scan(desc, path, depth, scan)
            lp = LoopPlan(path, desc.index, desc.keyword, "serial", trip=t)
            self._register(lp, depth)
            body = self._emit_siblings(desc.body, path, depth + 1, "walk", 1.0)
            lp.cycles = te * (self.model.loop_overhead + body)
            return lp.cycles

        strategy, parts, cost, reason, chunk_index = self._choose(desc)
        collapse_depth = flat_exact = None
        if strategy == "collapse":
            collapse_depth = len(collapse_chain(desc)[0])
            flat_exact = self._flat_trips(desc)[1]
        lp = LoopPlan(
            path, desc.index, desc.keyword, strategy,
            parts=parts, trip=t,
            fuse=strategy == "nest" or (
                strategy == "collapse" and self._fusable(desc)
            ),
            chunk_index=chunk_index if strategy == "iterate" else (
                desc.index if strategy == "chunk" else None
            ),
            collapse_depth=collapse_depth, flat_trip=flat_exact,
            cycles=cost, reason=reason,
        )
        self._register(lp, depth)
        if strategy in ("chunk", "collapse"):
            self._chunked_somewhere = True
        body_ctx = {
            "serial": "walk",
            "iterate": "walk",
            "nest": "nest",
            "vector": "vector",
            "chunk": "vector",
            "collapse": "collapse",
        }[strategy]
        if strategy == "collapse":
            # Chain loops below multiply the span by their own trips (the
            # shared nest emission), so the root contributes its trip
            # divided by the chunk count — equations then see roughly the
            # per-chunk element count.
            body_span = te / max(1, parts or 1)
        else:
            body_span = {
                "serial": 1.0,
                "iterate": 1.0,
                "nest": float(te),
                "vector": float(te),
                "chunk": float(ceil(te / parts)) if parts else float(te),
            }[strategy]
        prev_native = self._native_root
        if strategy == "nest":
            self._native_root = self._native_ok(desc, "full")
        elif strategy == "collapse":
            self._native_root = self._native_ok(desc, "flat")
        elif strategy == "chunk":
            self._native_root = self._native_ok(desc, "span")
        try:
            for i, d in enumerate(desc.body):
                self._emit(d, path + (i,), depth + 1, body_ctx, body_span)
        finally:
            self._native_root = prev_native
        return cost

    def _register(self, lp: LoopPlan, depth: int) -> None:
        self.loops[lp.path] = lp
        self.entries.append(PlanEntry(depth, loop=lp))

    def finish(self, module: str, requested: str, pinned: bool) -> ExecutionPlan:
        plan = ExecutionPlan(
            module=module,
            backend=self.backend,
            requested=requested,
            workers=self.workers,
            use_windows=self.use_windows,
            use_kernels=self.use_kernels,
            pinned=pinned,
            kernel_tier=self.tier if self.tier in ("native", "numpy") else "numpy",
            entries=self.entries,
            loops=self.loops,
            equations=self.equations,
            cycles=self.total,
        )
        return plan.bind(self.flowchart)
