"""The ExecutionPlan IR.

An :class:`ExecutionPlan` is a per-module execution recipe produced once by
the planner (:mod:`repro.plan.planner`) and consumed by every execution
backend. It mirrors the flowchart's loop tree: one :class:`LoopPlan` per
loop descriptor (addressed by the descriptor's child-index path, the same
picklable handle the process backend already uses) plus one
:class:`EquationPlan` per equation. The plan is inspectable —
``repro plan module.ps`` pretty-prints it — and *forcible*: tests and
benchmarks build hand-forced plans to pin a strategy per loop, and any
forced plan must stay bit-exact against the serial reference evaluator.

Loop strategies
---------------

``serial``
    Scalar iterations in subrange order (the reference semantics); body
    equations run on per-equation scalar kernels or the evaluator.
``nest``
    The whole DOALL nest runs as one fused compiled kernel — the
    per-element Python call of the serial path is amortised into compiled
    ``for`` loops.
``vector``
    The subrange executes as one NumPy span (nested DOALLs broadcast).
``chunk``
    The subrange splits into ``parts`` contiguous chunks dispatched to
    workers; each chunk runs as a vector span.
``iterate``
    This loop's iterations run one at a time *so that an inner loop's plan
    gets the workers* — the planner emits it for a DOALL whose trip count
    is below the worker count but whose inner DOALL chunks well.
``collapse``
    A perfectly nested DOALL chain is flattened into one linearized
    iteration space, split into ``parts`` contiguous *flat* chunks; each
    chunk runs through one fused, chunk-parameterized nest kernel that
    delinearizes the flat offset back to the loop indices in its prologue
    (per-equation scalar walk when the kernel is unavailable). Collapsing
    load-balances nests whose outer trip count is small or uneven — the
    whole flat space divides over the workers regardless of shape.
``pipeline``
    DSWP-style decoupling of a *run of sibling loops* over one iteration
    space (see :mod:`repro.schedule.pipeline_stages`): sequential (``DO``)
    stages advance block by block on one worker each — through compiled
    sequential nest kernels where the nest lowers — while replicated
    (``DOALL``) stages chase the upstream frontier with chunked span
    kernels on the remaining workers. The run's *first* loop carries the
    strategy plus the :class:`StagePlan` list and the group size; the
    other member loops carry ``pipeline`` with a ``stage k/n`` reason and
    are executed by the group engine, never dispatched individually.
``scan``
    A recognized sequential recurrence (associative ``+ * min max``
    reduction/prefix scan, or a first-order linear recurrence — see
    :mod:`repro.schedule.scan_detect`) runs as a three-phase Blelloch
    blocked scan: ``parts`` per-block partial sweeps in parallel, a
    serial exclusive scan of the block carries, and a parallel per-block
    fix-up sweep. Int and min/max scans are bit-exact; float ``+``/``*``
    requires ``allow_reassoc``. Backends without a scan engine fall back
    to the in-order walk.
``fission``
    A multi-unit loop body splits along its dependence structure into
    ``parts`` replica loops over the same subrange, one per minimal
    dependence group (see :mod:`repro.schedule.fission`), each planned
    independently: pieces that come out all-DOALL regain
    ``nest``/``chunk``/``collapse``, lone recurrences regain ``scan``,
    and the replica run itself may plan as a ``pipeline`` group. Replica
    LoopPlans live at marker paths ``loop_path + (-1, k)``; the original
    loop carries the ``fission`` strategy and is executed by planning its
    replicas in order, each equation exactly once over the full subrange.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

#: valid LoopPlan.strategy values
STRATEGIES = (
    "serial", "nest", "vector", "chunk", "iterate", "collapse", "pipeline",
    "scan", "fission",
)

#: valid EquationPlan.kernel values — "native" marks an equation whose
#: enclosing nest lowers to the cffi-compiled C tier (degrading to the
#: NumPy "nest" kernel at runtime when no C compiler exists)
KERNEL_VARIANTS = ("scalar", "vector", "nest", "native", "evaluator")


class PlanError(ReproError):
    """An invalid or inapplicable execution plan."""


@dataclass
class EquationPlan:
    """How one equation executes under the chosen enclosing strategy."""

    label: str
    #: descriptor path of the equation's NodeDescriptor
    path: tuple[int, ...]
    #: kernel variant the equation runs on under the planned strategy
    kernel: str = "scalar"
    #: why the equation cannot leave the evaluator (when kernel=evaluator)
    reason: str = ""

    def annotation(self) -> str:
        note = f"kernel={self.kernel}"
        if self.reason:
            note += f" ({self.reason})"
        return note


@dataclass
class StagePlan:
    """One stage of a pipeline group (attached to the group head's
    :class:`LoopPlan`)."""

    #: "sequential" | "replicated" | "scan" (a sequential stage whose
    #: single member loop runs as a parallel blocked scan before the
    #: decoupled engine starts)
    kind: str
    #: offsets of the member loops within the group's sibling run
    members: tuple[int, ...]
    #: equation labels the stage evaluates (for display)
    labels: tuple[str, ...]
    #: workers assigned to the stage (1 for sequential stages)
    workers: int = 1

    def annotation(self) -> str:
        if self.kind == "sequential":
            tag = "seq"
        elif self.kind == "scan":
            tag = f"scan x{self.workers}"
        else:
            tag = f"par x{self.workers}"
        return f"{tag}({', '.join(self.labels)})"


@dataclass
class LoopPlan:
    """The planner's decision for one loop descriptor."""

    #: descriptor path in the flowchart tree (picklable handle)
    path: tuple[int, ...]
    index: str
    keyword: str  # "DO" | "DOALL"
    strategy: str
    #: chunk count when strategy == "chunk"
    parts: int | None = None
    #: trip count the planner saw (None: bounds not statically evaluable)
    trip: int | None = None
    #: whether this nest is fused into one compiled kernel
    fuse: bool = False
    #: index of the loop that actually receives the workers (for pretty
    #: output on "iterate" loops this names the chunked inner loop)
    chunk_index: str | None = None
    #: how many perfectly nested DOALLs are flattened (strategy "collapse"
    #: on the chain root; inner chain loops carry strategy "collapse" with
    #: depth None — their iteration space is owned by the root)
    collapse_depth: int | None = None
    #: the flattened trip count (product of the chain's trips; None when
    #: any chain bound is not statically evaluable)
    flat_trip: int | None = None
    #: predicted cycles for the chosen strategy (calibrated model)
    cycles: float | None = None
    #: one-line rationale for the choice
    reason: str = ""
    #: the stage partition, set on the *head* loop of a pipeline group
    #: (member loops carry strategy "pipeline" with stages=None)
    stages: list[StagePlan] | None = None
    #: how many consecutive sibling loops the group spans (head loop only)
    group_size: int | None = None
    #: per-stage hand-off block size, in iterations (head loop only)
    queue_depth: int | None = None

    def annotation(self) -> str:
        bits = [self.strategy]
        if self.strategy in ("chunk", "collapse", "scan", "fission") and self.parts:
            bits[-1] += f" x{self.parts}"
        if self.strategy == "pipeline" and self.stages:
            if self.parts:
                bits[-1] += f" x{self.parts}"
            bits.append(
                f"stages {len(self.stages)} "
                f"[{' | '.join(s.annotation() for s in self.stages)}]"
            )
            if self.queue_depth:
                bits.append(f"block {self.queue_depth}")
        if self.strategy == "iterate" and self.chunk_index:
            bits.append(f"inner-chunk {self.chunk_index}")
        if self.strategy == "collapse" and self.collapse_depth:
            depth = f"depth {self.collapse_depth}"
            if self.flat_trip is not None:
                depth += f" flat {self.flat_trip}"
            bits.append(depth)
        if self.trip is not None:
            bits.append(f"trip {self.trip}")
        if self.reason:
            bits.append(self.reason)
        return "; ".join(bits)


@dataclass
class PlanEntry:
    """One pre-order row of the plan tree (for pretty-printing)."""

    depth: int
    loop: LoopPlan | None = None
    equation: EquationPlan | None = None
    #: non-equation data node label (declarations pass through untouched)
    label: str | None = None


@dataclass
class ExecutionPlan:
    """The full per-module execution recipe."""

    module: str
    #: the concrete backend registry key execution will instantiate
    backend: str
    #: what the user asked for ("auto" or an explicit backend)
    requested: str
    workers: int
    use_windows: bool
    use_kernels: bool
    #: True when an explicit --backend pinned the plan
    pinned: bool
    #: highest kernel tier the plan budgets for ("native" | "numpy")
    kernel_tier: str = "native"
    entries: list[PlanEntry] = field(default_factory=list)
    #: loop plans keyed by descriptor path
    loops: dict[tuple[int, ...], LoopPlan] = field(default_factory=dict)
    #: equation plans keyed by label
    equations: dict[str, EquationPlan] = field(default_factory=dict)
    #: total predicted cycles for the planned execution (calibrated model)
    cycles: float | None = None
    #: how the backend decision was made (``auto`` only fills this fully):
    #: candidate backends priced, their predicted cycles and
    #: calibration-adjusted costs, which had measured records, and why the
    #: winner won — rendered by :meth:`explain` for ``repro plan``
    provenance: dict | None = field(default=None, repr=False, compare=False)
    #: id(descriptor) -> LoopPlan for O(1) lookup during execution; rebuilt
    #: by bind() — valid only against the flowchart the plan was built from
    _by_id: dict[int, LoopPlan] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: id() of the flowchart the index above was built against
    _bound_to: int | None = field(default=None, repr=False, compare=False)

    # -- lookup ------------------------------------------------------------

    def bind(self, flowchart) -> ExecutionPlan:
        """Index the plan against ``flowchart``'s descriptor identities so
        backends can look up plans without recomputing paths. A no-op when
        already bound to this flowchart; otherwise the new index is built
        aside and swapped in atomically (plans are shared across runs — a
        concurrent reader must never observe a half-built index)."""
        from repro.schedule.flowchart import LoopDescriptor

        if self._bound_to == id(flowchart) and self._by_id:
            return self
        by_id: dict[int, LoopPlan] = {}
        stack = [((i,), d) for i, d in enumerate(flowchart.descriptors)]
        while stack:
            path, desc = stack.pop()
            if isinstance(desc, LoopDescriptor):
                plan = self.loops.get(path)
                if plan is not None:
                    by_id[id(desc)] = plan
                stack.extend(
                    (path + (i,), d) for i, d in enumerate(desc.body)
                )
        # Fission replica plans live at marker paths (a -1 component) that
        # the main-tree walk above never visits: resolve them through the
        # flowchart's split memo. Replica *bodies* are the original shared
        # descriptors, already indexed by their main-tree paths.
        for path, plan in self.loops.items():
            if -1 not in path:
                continue
            try:
                desc = flowchart.descriptor_at(path)
            except (LookupError, IndexError):
                continue
            if isinstance(desc, LoopDescriptor):
                by_id[id(desc)] = plan
        self._by_id = by_id
        self._bound_to = id(flowchart)
        return self

    def loop_for(self, desc) -> LoopPlan | None:
        """The plan for a loop descriptor of the bound flowchart."""
        return self._by_id.get(id(desc))

    def equation_for(self, label: str) -> EquationPlan | None:
        return self.equations.get(label)

    # -- summaries ---------------------------------------------------------

    def strategies(self) -> list[tuple[str, str]]:
        """(index, strategy) per loop, pre-order — a quick fingerprint."""
        return [
            (e.loop.index, e.loop.strategy)
            for e in self.entries
            if e.loop is not None
        ]

    def pretty(self, cycles: bool = False) -> str:
        """Human-readable plan. ``cycles=True`` appends the calibrated
        cycle predictions (omitted by default: golden tests pin the text
        and the calibration constants may be retuned)."""
        mode = "pinned" if self.pinned else "auto"
        kernels = self.kernel_tier if self.use_kernels else "off"
        head = (
            f"plan {self.module}: backend={self.backend} "
            f"workers={self.workers} "
            f"kernels={kernels} "
            f"windows={'on' if self.use_windows else 'off'} [{mode}]"
        )
        lines = [head]
        for e in self.entries:
            pad = "    " * e.depth
            if e.loop is not None:
                lp = e.loop
                note = lp.annotation()
                if cycles and lp.cycles is not None:
                    note += f"; ~{lp.cycles:.0f} cycles"
                lines.append(f"{pad}{lp.keyword} {lp.index} -> {note}")
            elif e.equation is not None:
                lines.append(f"{pad}{e.equation.label} [{e.equation.annotation()}]")
            else:
                lines.append(f"{pad}{e.label}")
        if cycles and self.cycles is not None:
            lines.append(f"predicted total: ~{self.cycles:.0f} cycles")
        return "\n".join(lines)

    def explain(self) -> str:
        """Render the backend-decision provenance: every candidate priced,
        whether calibration had a measurement for it (hit) or the ranking
        fell back to predicted cycles (miss), and why the winner won.
        Separate from :meth:`pretty` so golden tests pinning the plan text
        stay untouched by provenance additions."""
        if not self.provenance:
            return (
                f"provenance {self.module}: none recorded "
                f"(prebuilt or forced plan)"
            )
        p = self.provenance
        lines = [f"provenance {self.module}: {p['mode']} -> {self.backend}"]
        for row in p.get("candidates", []):
            mark = "*" if row.get("winner") else " "
            bits = [f"predicted ~{row['predicted_cycles']:.0f} cycles"]
            if row.get("measured_seconds") is not None:
                bits.append(
                    f"measured {row['measured_seconds']:.6f} s "
                    f"[calibration hit]"
                )
            elif p.get("calibrated"):
                bits.append(
                    f"anchored ~{row['adjusted_cost']:.6f} s "
                    f"[calibration miss]"
                )
            else:
                bits.append("[calibration miss]")
            lines.append(f"  {mark} {row['backend']}: " + "; ".join(bits))
        for backend, why in p.get("excluded", []):
            lines.append(f"    {backend}: excluded ({why})")
        if p.get("reason"):
            lines.append(f"winner: {self.backend} — {p['reason']}")
        for note in p.get("pipeline_groups", []):
            verdict = "chosen" if note.get("chosen") else "rejected"
            row = (
                f"  pipeline group @{note['index']}: {note['kinds']} "
                f"({note['stage_count']} stages, trip {note['trip']}) — "
                f"{verdict}"
            )
            if note.get("pipeline_cycles") is not None:
                row += (
                    f": predicted ~{note['pipeline_cycles']:.0f} vs "
                    f"~{note['serial_cycles']:.0f} cycles undecoupled"
                )
            if note.get("why"):
                row += f" ({note['why']})"
            lines.append(row)
        for note in p.get("scan_loops", []):
            verdict = "chosen" if note.get("chosen") else "rejected"
            what = note["kind"] + (f" {note['op']}" if note.get("op") else "")
            row = (
                f"  scan loop @{note['index']} ({note['label']}): {what}, "
                f"trip {note['trip']} — {verdict}"
            )
            if note.get("scan_cycles") is not None:
                row += (
                    f": predicted ~{note['scan_cycles']:.0f} vs "
                    f"~{note['serial_cycles']:.0f} cycles in-order"
                )
            if note.get("why"):
                row += f" ({note['why']})"
            lines.append(row)
        for note in p.get("fission_loops", []):
            verdict = "chosen" if note.get("chosen") else "rejected"
            if note.get("parts"):
                shape = (
                    f"{note['parts']} pieces "
                    f"[{' | '.join(note.get('pieces', []))}]"
                )
            else:
                shape = "no legal split"
            row = (
                f"  fission @{note['index']} ({note['keyword']} "
                f"{note['loop_index']}): {shape}, trip {note['trip']} — "
                f"{verdict}"
            )
            if note.get("fission_cycles") is not None:
                row += (
                    f": predicted ~{note['fission_cycles']:.0f} vs "
                    f"~{note['unfissioned_cycles']:.0f} cycles unfissioned"
                )
            if note.get("why"):
                row += f" ({note['why']})"
            lines.append(row)
        for note in p.get("slow_loops", []):
            row = (
                f"  slow loop @{note['index']} ({note['keyword']} "
                f"{note['loop_index']}): {note['label']} not kernelizable "
                f"— {note['reason']}"
            )
            if note.get("fission"):
                row += f"; {note['fission']}"
            lines.append(row)
        return "\n".join(lines)
