"""Online plan recalibration: measured wall clock fed back into planning.

The calibrated :class:`~repro.machine.cost.MachineModel` is tuned against
one benchmark artifact on one machine — good enough to rank strategies most
of the time, but the planner's ``auto`` can mispredict on hardware whose
dispatch/NumPy cost ratios differ. :class:`PlanCalibration` closes the
loop: :func:`repro.machine.report.compare_plans` records the measured
seconds of every (module, sizes, backend) it times, and
:func:`repro.plan.planner.build_plan` consults the store on the next
``auto`` decision — a backend with a measurement is ranked by its stopwatch
number; backends without one have their predicted cycles converted to
seconds through the anchor ratio the measured rows imply. The second run of
a mispredicted configuration therefore picks the measured-best backend.

Records are keyed per (module name, integer sizes, worker count): a
calibration taken on a 4x4096 grid at 2 workers says nothing about a
64x64 one at 16. ``version`` increments on every record so plan caches
(``CompileResult._plan_cache``) can key entries by it and replan when new
evidence arrives.

The store is **durable**: :func:`PlanCalibration.load` reads the JSON file
:func:`store_path` names inside the native artifact cache directory
(``$REPRO_NATIVE_CACHE`` or ``~/.cache/repro/native``), and every
:meth:`PlanCalibration.record` re-saves it atomically — so every process,
and the serve daemon, learns from every measured run. The file name carries
the machine fingerprint (cpu_count snapshot) and :data:`COST_MODEL_VERSION`:
a record taken on different hardware, or under retuned cost-model
semantics, is simply a different file and never pollutes this machine's
rankings. Loading never raises — a missing, corrupt, or foreign-version
file yields an empty in-memory store.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

#: bumped when the meaning of predicted cycles changes (cost-model retune,
#: new pricing modes) — on-disk stores from other versions are ignored
COST_MODEL_VERSION = 2


def store_path(cpu_count: int | None = None) -> Path:
    """Where this machine's calibration store lives: inside the native
    artifact cache (so tests that redirect ``$REPRO_NATIVE_CACHE`` isolate
    both caches with one knob), fingerprinted by core count and cost-model
    version."""
    from repro.runtime.kernels.native import cache_dir

    n = cpu_count if cpu_count is not None else os.cpu_count() or 1
    return cache_dir() / f"calibration-cpu{n}-v{COST_MODEL_VERSION}.json"


def sizes_key(scalar_env: dict[str, int] | None) -> tuple:
    """The canonical per-sizes key: sorted integer bindings."""
    return tuple(sorted((scalar_env or {}).items()))


def workers_key(workers: int | None, cpu_count: int | None = None) -> int:
    """The canonical worker count: resolved the way the planner and the
    backends resolve it (None means the machine's core count).

    ``cpu_count`` supplies a *pinned* core count. Callers that key records
    must pass one resolved exactly once (see
    :attr:`PlanCalibration.cpu_count`): resolving ``os.cpu_count()`` at
    every call meant a record written under one affinity setting was
    silently unreachable under another."""
    if workers is not None:
        return max(1, workers)
    return max(1, cpu_count if cpu_count is not None else os.cpu_count() or 1)


@dataclass
class CalibrationRecord:
    """One measured execution of a (module, sizes, backend) configuration."""

    seconds: float
    predicted_cycles: float | None = None


@dataclass
class PlanCalibration:
    """A store of measured wall clock per (module, sizes, workers, backend)."""

    records: dict[tuple[str, tuple, int, str], CalibrationRecord] = field(
        default_factory=dict
    )
    #: bumped on every record — plan caches key entries by it
    version: int = 0
    #: the machine's core count, snapshotted once when the store is built:
    #: every record and lookup resolves a ``workers=None`` through this one
    #: number, so records stay reachable even when CPU affinity changes
    #: between the write and the read
    cpu_count: int = field(default_factory=lambda: os.cpu_count() or 1)
    #: where this store persists (None: in-memory only — the default for
    #: directly constructed stores, so tests and ad-hoc planning never
    #: write to disk unless they opted in via :meth:`load`)
    path: Path | None = field(default=None, repr=False, compare=False)

    @classmethod
    def load(cls, path: Path | None = None) -> PlanCalibration:
        """The durable store for this machine: read from ``path`` (default
        :func:`store_path`), attached so later :meth:`record` calls re-save
        it. Never raises — any unreadable or mismatched file yields an
        empty store that will overwrite it on the next record."""
        cpu_count = os.cpu_count() or 1
        if path is None:
            try:
                path = store_path(cpu_count)
            except OSError:
                return cls()
        store = cls(cpu_count=cpu_count, path=path)
        try:
            payload = json.loads(path.read_text())
            if (
                payload.get("cost_model_version") != COST_MODEL_VERSION
                or payload.get("cpu_count") != cpu_count
            ):
                return store
            for row in payload.get("records", []):
                key = (
                    row["module"],
                    tuple((k, int(v)) for k, v in row["sizes"]),
                    int(row["workers"]),
                    row["backend"],
                )
                store.records[key] = CalibrationRecord(
                    float(row["seconds"]),
                    (
                        float(row["predicted_cycles"])
                        if row.get("predicted_cycles") is not None
                        else None
                    ),
                )
            store.version = int(payload.get("version", len(store.records)))
        except (OSError, ValueError, KeyError, TypeError):
            return cls(cpu_count=cpu_count, path=path)
        return store

    def _save(self) -> None:
        """Atomic best-effort persist (tuple keys flattened to row dicts);
        a read-only cache directory silently leaves the store in-memory."""
        if self.path is None:
            return
        rows = [
            {
                "module": module,
                "sizes": [[k, v] for k, v in sizes],
                "workers": workers,
                "backend": backend,
                "seconds": rec.seconds,
                "predicted_cycles": rec.predicted_cycles,
            }
            for (module, sizes, workers, backend), rec in sorted(
                self.records.items()
            )
        ]
        payload = {
            "cost_model_version": COST_MODEL_VERSION,
            "cpu_count": self.cpu_count,
            "version": self.version,
            "records": rows,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), suffix=".json.tmp"
            )
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(payload, f, indent=1)
                os.replace(tmp, self.path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            pass

    def _key(
        self,
        module: str,
        scalar_env: dict[str, int] | None,
        backend: str,
        workers: int | None,
    ) -> tuple[str, tuple, int, str]:
        return (
            module,
            sizes_key(scalar_env),
            workers_key(workers, self.cpu_count),
            backend,
        )

    def record(
        self,
        module: str,
        scalar_env: dict[str, int] | None,
        backend: str,
        seconds: float,
        predicted_cycles: float | None = None,
        workers: int | None = None,
    ) -> None:
        key = self._key(module, scalar_env, backend, workers)
        self.records[key] = CalibrationRecord(seconds, predicted_cycles)
        self.version += 1
        self._save()

    def measured(
        self,
        module: str,
        scalar_env: dict[str, int] | None,
        backend: str,
        workers: int | None = None,
    ) -> CalibrationRecord | None:
        return self.records.get(self._key(module, scalar_env, backend, workers))

    def adjusted_costs(
        self,
        module: str,
        scalar_env: dict[str, int] | None,
        candidates: list[tuple[str, float]],
        workers: int | None = None,
    ) -> list[float]:
        """Effective comparable costs for ``candidates`` (backend,
        predicted-cycles pairs), in seconds-equivalent units when any
        measurement exists for this (module, sizes).

        A measured backend costs its measured seconds. An unmeasured one
        costs ``predicted_cycles * anchor``, where the anchor
        (seconds per predicted cycle) is the median ratio over the measured
        candidates — so mixed comparisons stay in one unit and the
        calibration only ever *re-ranks*, never invents numbers. With no
        measurements the predicted cycles come back unchanged."""
        rows = [
            (
                backend, cycles,
                self.measured(module, scalar_env, backend, workers),
            )
            for backend, cycles in candidates
        ]
        ratios = sorted(
            rec.seconds / cycles
            for _, cycles, rec in rows
            if rec is not None and cycles
        )
        if not ratios:
            return [cycles for _, cycles, _ in rows]
        anchor = ratios[len(ratios) // 2]
        return [
            rec.seconds if rec is not None else cycles * anchor
            for _, cycles, rec in rows
        ]
