"""repro — reproduction of Gokhale (1987), "Exploiting Loop Level
Parallelism in Nonprocedural Dataflow Programs" (ICASE 87-23).

The package implements the PS nonprocedural dataflow language, the
dependency-graph scheduler that emits iterative (DO) and concurrent (DOALL)
loops, the virtual-dimension (memory window) analysis, and the hyperplane
restructuring transformation of section 4 — plus the execution substrates
needed to evaluate them: a flowchart interpreter, a vectorised NumPy backend,
a C code generator, and a simulated MIMD machine.

Quickstart::

    import repro
    result = repro.compile_source(repro.RELAXATION_JACOBI_SOURCE)
    print(result.flowchart.pretty())
    print(result.c_source)

Compile-once/run-many serving (the paper's premise — all parallelization
work at compile time, amortized over many executions)::

    with repro.Session() as session:
        session.load(source)
        session.warm("Relaxation", {"M": 64, "maxK": 8})
        out = session.run("Relaxation", {...})   # nothing compiles here

The blessed public surface is ``__all__``: the ``repro.*`` names listed
there (plus the lazy re-exports below) are stable across minor versions;
anything else is internal and may move without notice.
"""

from repro.errors import (
    ClientError,
    CodegenError,
    CoverageError,
    ExecutionError,
    InconsistentPositionError,
    InfeasibleScheduleError,
    LexError,
    ParseError,
    ReproError,
    ScheduleError,
    SemanticError,
    SessionError,
    SourceError,
    TransformError,
)

#: single source of truth for the package version — pyproject.toml reads
#: it via ``[tool.setuptools.dynamic]``, so the two can never drift
__version__ = "1.4.0"

__all__ = [
    "ClientError",
    "CodegenError",
    "CoverageError",
    "ExecutionError",
    "ExecutionOptions",
    "InconsistentPositionError",
    "InfeasibleScheduleError",
    "LexError",
    "ParseError",
    "ReproClient",
    "ReproDaemon",
    "ReproError",
    "ScheduleError",
    "SemanticError",
    "Session",
    "SessionError",
    "SourceError",
    "TransformError",
    "compile_source",
    "execute_module",
    "__version__",
]


def __getattr__(name):
    """Lazy re-exports of the main API, avoiding import cycles during
    package construction."""
    from importlib import import_module

    lazy = {
        "parse_module": "repro.ps.parser",
        "parse_program": "repro.ps.parser",
        "analyze_module": "repro.ps.semantics",
        "analyze_program": "repro.ps.semantics",
        "format_module": "repro.ps.printer",
        "ModuleBuilder": "repro.ps.builder",
        "build_dependency_graph": "repro.graph.build",
        "schedule_module": "repro.schedule.scheduler",
        "Flowchart": "repro.schedule.flowchart",
        "hyperplane_transform": "repro.hyperplane.pipeline",
        "compile_source": "repro.core.pipeline",
        "compile_module": "repro.core.pipeline",
        "CompilerOptions": "repro.core.pipeline",
        "RELAXATION_JACOBI_SOURCE": "repro.core.paper",
        "RELAXATION_GAUSS_SEIDEL_SOURCE": "repro.core.paper",
        "execute_module": "repro.runtime.executor",
        "ExecutionOptions": "repro.runtime.executor",
        "available_backends": "repro.runtime.backends",
        "create_backend": "repro.runtime.backends",
        "MachineModel": "repro.machine.cost",
        "simulate_flowchart": "repro.machine.simulator",
        "predicted_speedup": "repro.machine.simulator",
        "measure_backend_speedups": "repro.machine.report",
        "compare_plans": "repro.machine.report",
        "ExecutionPlan": "repro.plan.ir",
        "LoopPlan": "repro.plan.ir",
        "build_plan": "repro.plan.planner",
        "forced_plan": "repro.plan.planner",
        "Session": "repro.serve",
        "SessionStats": "repro.serve",
        "ReproDaemon": "repro.serve",
        "DaemonThread": "repro.serve",
        "ReproClient": "repro.serve",
    }
    if name in lazy:
        return getattr(import_module(lazy[name]), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
