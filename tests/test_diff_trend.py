"""diff_trend fails readably when the bench schema drifts.

A baseline artifact without gated values (or with broken JSON) used to
slip through silently or surface as a bare KeyError; now it is a clear,
actionable error naming the file.
"""

import json
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import diff_trend  # noqa: E402


def _write(path: pathlib.Path, payload) -> None:
    path.write_text(json.dumps(payload))


class TestGateSchemaErrors:
    def test_baseline_without_gates_fails_with_message(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        current = tmp_path / "out"
        baseline.mkdir()
        current.mkdir()
        _write(baseline / "BENCH_x.json", {"rows": [{"seconds": 1.0}]})
        _write(current / "BENCH_x.json", {"gates": {"g": {"speedup": 2.0}}})
        rc = diff_trend.main(
            ["--baseline", str(baseline), "--current", str(current)]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "BENCH_x.json" in err
        assert "no gated numeric values" in err
        assert "KeyError" not in err

    def test_invalid_json_fails_with_message(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        current = tmp_path / "out"
        baseline.mkdir()
        current.mkdir()
        (baseline / "BENCH_bad.json").write_text("{not json")
        _write(current / "BENCH_bad.json", {"gates": {"g": {"speedup": 2.0}}})
        rc = diff_trend.main(
            ["--baseline", str(baseline), "--current", str(current)]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "BENCH_bad.json" in err
        assert "not valid JSON" in err

    def test_collect_require_gates_raises(self, tmp_path):
        _write(tmp_path / "BENCH_y.json", {"notes": "hello"})
        with pytest.raises(diff_trend.GateSchemaError, match="BENCH_y.json"):
            diff_trend.collect(tmp_path, require_gates=True)

    def test_current_without_gates_is_tolerated(self, tmp_path):
        """Current-run artifacts may legitimately carry non-gated payloads;
        only the committed baseline is held to the schema."""
        _write(tmp_path / "BENCH_y.json", {"notes": "hello"})
        assert diff_trend.collect(tmp_path) == {}


class TestHappyPath:
    def test_matching_gates_report(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        current = tmp_path / "out"
        baseline.mkdir()
        current.mkdir()
        payload = {"gates": {"g": {"speedup": 2.0, "passed": True}}}
        _write(baseline / "BENCH_x.json", payload)
        _write(current / "BENCH_x.json", {"gates": {"g": {"speedup": 2.2, "passed": True}}})
        rc = diff_trend.main(
            ["--baseline", str(baseline), "--current", str(current)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "BENCH_x.json/gates/g/speedup" in out

    def test_regression_gate_fires(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        current = tmp_path / "out"
        baseline.mkdir()
        current.mkdir()
        _write(baseline / "BENCH_x.json", {"gates": {"g": {"speedup": 4.0}}})
        _write(current / "BENCH_x.json", {"gates": {"g": {"speedup": 1.0}}})
        rc = diff_trend.main(
            [
                "--baseline", str(baseline), "--current", str(current),
                "--max-regress", "0.5",
            ]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
