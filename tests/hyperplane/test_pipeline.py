"""End-to-end hyperplane transformation tests (paper section 4)."""

import numpy as np
import pytest

from repro.core.paper import gauss_seidel_analyzed, jacobi_analyzed
from repro.errors import TransformError
from repro.hyperplane.pipeline import hyperplane_transform
from repro.ps.parser import parse_module
from repro.ps.printer import format_module
from repro.ps.semantics import analyze_module
from repro.runtime.executor import ExecutionOptions, execute_module


@pytest.fixture(scope="module")
def result():
    return hyperplane_transform(gauss_seidel_analyzed())


class TestDerivation:
    def test_time_equation(self, result):
        assert result.pi == (2, 1, 1)
        assert result.time_equation == "t(A[K, I, J]) = 2K + I + J"

    def test_inequalities(self, result):
        assert set(result.inequalities) == {"a > 0", "b > 0", "c > 0", "a > b", "a > c"}

    def test_transformation_matrix(self, result):
        assert result.T == [[2, 1, 1], [1, 0, 0], [0, 1, 0]]
        assert result.Tinv == [[0, 1, 0], [0, 0, 1], [1, -2, -1]]

    def test_transformed_offsets_match_paper(self, result):
        """The rewritten recurrence references A'[K'-1,I',J'],
        A'[K'-1,I',J'-1], A'[K'-1,I'-1,J'], A'[K'-1,I'-1,J'+1] (interior)
        and A'[K'-2,I'-1,J'] (boundary)."""
        mapping = dict(result.transformed_offsets())
        assert mapping[(-1, 0, 0)] == (-2, -1, 0)  # boundary carry-over
        assert mapping[(0, 0, -1)] == (-1, 0, 0)
        assert mapping[(0, -1, 0)] == (-1, 0, -1)
        assert mapping[(-1, 0, 1)] == (-1, -1, 0)
        assert mapping[(-1, 1, 0)] == (-1, -1, 1)

    def test_recurrence_window_three(self, result):
        """'The window size is three' — references only K'-1 and K'-2."""
        assert result.recurrence_window == 3


class TestTransformedSchedule:
    def test_original_schedule_fully_iterative(self, result):
        kinds = result.original_flowchart.loop_kinds()
        assert ("DO", "K") in kinds and ("DO", "I") in kinds and ("DO", "J") in kinds

    def test_transformed_schedule_figure6_shape(self, result):
        """'the schedule is identical to that of Figure 6': an outer
        iterative loop with two inner parallel loops."""
        flow = result.transformed_flowchart
        shapes = flow.shape()
        # Find the transformed recurrence nest.
        nests = [s for s in shapes if isinstance(s, tuple) and s[0] == "DO"]
        assert len(nests) == 1
        kw, idx, body = nests[0]
        assert idx == result.new_names[0]
        (inner1,) = body
        assert inner1[0] == "DOALL"
        (inner2,) = inner1[2]
        assert inner2[0] == "DOALL"

    def test_no_iterative_spatial_loops_remain(self, result):
        kinds = result.transformed_flowchart.loop_kinds()
        do_loops = [idx for kw, idx in kinds if kw == "DO"]
        assert do_loops == [result.new_names[0]]


class TestTransformedModuleSource:
    def test_round_trips_through_parser(self, result):
        text = format_module(result.transformed_module)
        reparsed = parse_module(text)
        analyze_module(reparsed)  # must stay semantically valid

    def test_new_declarations_present(self, result):
        text = format_module(result.transformed_module)
        assert "Kp" in text and "Ip" in text and "Jp" in text
        assert "Ap" in text

    def test_rotate_out_reference(self, result):
        """newA = A[maxK] becomes a reference to Ap[2*maxK + I + J, maxK, I]."""
        text = format_module(result.transformed_module)
        assert "Ap[2 * maxK + I + J, maxK, I]" in text


class TestNumericEquivalence:
    @pytest.mark.parametrize("m,maxk", [(4, 3), (5, 5), (3, 7)])
    def test_transformed_equals_original(self, result, m, maxk):
        rng = np.random.default_rng(m * 10 + maxk)
        initial = rng.random((m + 2, m + 2))
        args = {"InitialA": initial, "M": m, "maxK": maxk}
        orig = execute_module(result.original, args)
        trans = execute_module(result.transformed, args)
        np.testing.assert_allclose(trans["newA"], orig["newA"], rtol=1e-12)

    def test_transformed_scalar_and_vector_agree(self, result):
        rng = np.random.default_rng(0)
        m, maxk = 4, 4
        initial = rng.random((m + 2, m + 2))
        args = {"InitialA": initial, "M": m, "maxK": maxk}
        fast = execute_module(
            result.transformed, args, options=ExecutionOptions(vectorize=True)
        )
        slow = execute_module(
            result.transformed, args, options=ExecutionOptions(vectorize=False)
        )
        np.testing.assert_allclose(fast["newA"], slow["newA"])


class TestStorageComparison:
    def test_storage_numbers(self, result):
        """Transformed window: 3 x maxK x (M+2); untransformed: 2 x (M+2)^2;
        full: maxK x (M+2)^2."""
        comp = result.storage_comparison({"M": 8, "maxK": 20})
        mp = 10  # M + 2
        assert comp["full"] == 20 * mp * mp
        assert comp["untransformed_window"] == 2 * mp * mp
        assert comp["transformed_window"] == 3 * 20 * mp


class TestOtherRecurrences:
    def test_wavefront_recurrence_transform(self):
        analyzed = analyze_module(
            parse_module(
                "T: module (n: int; X: array[0 .. n] of real): [y: real];\n"
                "type I = 1 .. n; J = 1 .. n;\n"
                "var W: array [0 .. n, 0 .. n] of real;\n"
                "define W[0] = X;\n"
                "W[I, 0] = X[I];\n"
                "W[I, J] = W[I-1, J] + W[I, J-1];\n"
                "y = W[n, n];\nend T;"
            )
        )
        res = hyperplane_transform(analyzed)
        assert res.pi == (1, 1)
        # Numeric equivalence.
        x = np.linspace(1.0, 2.0, 7)
        orig = execute_module(analyzed, {"n": 6, "X": x})
        trans = execute_module(res.transformed, {"n": 6, "X": x})
        assert trans["y"] == pytest.approx(orig["y"])

    def test_jacobi_transform_degenerates_to_iteration(self):
        # Jacobi's dependences already satisfy t = K; the transform exists
        # and keeps a parallel interior.
        res = hyperplane_transform(jacobi_analyzed())
        assert res.pi == (1, 0, 0)
        assert res.recurrence_window == 2

    def test_no_recursive_component(self):
        analyzed = analyze_module(
            parse_module("T: module (x: int): [y: int];\ndefine y = x + 1;\nend T;")
        )
        with pytest.raises(TransformError, match="no recursive"):
            hyperplane_transform(analyzed)

    def test_named_array_not_recursive(self):
        with pytest.raises(TransformError, match="not part"):
            hyperplane_transform(gauss_seidel_analyzed(), array="InitialA")
